"""Unit and property tests for the priority queues."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import AddressableHeap, LazyHeap


class TestAddressableHeap:
    def test_basic_order(self):
        q = AddressableHeap()
        for item, p in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            q.enqueue(item, p)
        assert q.dequeue_min() == ("b", 1.0)
        assert q.dequeue_min() == ("c", 2.0)
        assert q.dequeue_min() == ("a", 3.0)
        assert not q

    def test_decrease_key_moves_item_up(self):
        q = AddressableHeap()
        q.enqueue("a", 10.0)
        q.enqueue("b", 5.0)
        q.decrease_key("a", 1.0)
        assert q.peek() == ("a", 1.0)

    def test_decrease_key_rejects_increase(self):
        q = AddressableHeap()
        q.enqueue("a", 1.0)
        with pytest.raises(ValueError):
            q.decrease_key("a", 2.0)

    def test_duplicate_enqueue_rejected(self):
        q = AddressableHeap()
        q.enqueue("a", 1.0)
        with pytest.raises(KeyError):
            q.enqueue("a", 2.0)

    def test_membership_and_priority(self):
        q = AddressableHeap()
        q.enqueue(7, 4.0)
        assert 7 in q
        assert q.priority(7) == 4.0
        q.dequeue_min()
        assert 7 not in q

    def test_enqueue_or_decrease(self):
        q = AddressableHeap()
        q.enqueue_or_decrease("x", 5.0)
        q.enqueue_or_decrease("x", 2.0)
        q.enqueue_or_decrease("x", 9.0)  # higher: ignored
        assert q.dequeue_min() == ("x", 2.0)

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100, allow_nan=False)), max_size=80))
    def test_dequeues_in_sorted_order(self, ops):
        q = AddressableHeap()
        best: dict[int, float] = {}
        for item, priority in ops:
            q.enqueue_or_decrease(item, priority)
            if item not in best or priority < best[item]:
                best[item] = priority
        out = []
        while q:
            out.append(q.dequeue_min())
        assert [p for _, p in out] == sorted(p for _, p in out)
        assert dict((i, p) for i, p in out) == best


class TestLazyHeap:
    def test_basic_order(self):
        q = LazyHeap()
        for item, p in [(1, 3.0), (2, 1.0), (3, 2.0)]:
            q.enqueue(item, p)
        assert q.dequeue_min() == (2, 1.0)
        assert q.dequeue_min() == (3, 2.0)
        assert q.dequeue_min() == (1, 3.0)
        assert q.dequeue_min() is None

    def test_stale_entries_skipped(self):
        q = LazyHeap()
        q.enqueue("a", 9.0)
        q.enqueue_or_decrease("a", 2.0)
        assert q.dequeue_min() == ("a", 2.0)
        assert q.dequeue_min() is None

    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100, allow_nan=False)), max_size=80))
    def test_equivalent_to_addressable(self, ops):
        lazy, addr = LazyHeap(), AddressableHeap()
        for item, priority in ops:
            lazy.enqueue_or_decrease(item, priority)
            addr.enqueue_or_decrease(item, priority)
        lazy_out = []
        while True:
            got = lazy.dequeue_min()
            if got is None:
                break
            lazy_out.append(got)
        addr_out = []
        while addr:
            addr_out.append(addr.dequeue_min())
        assert sorted(lazy_out) == sorted(addr_out)
