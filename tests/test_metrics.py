"""Tests for index quality metrics."""

from conftest import cycle_graph, grid_graph, path_graph
from repro.core import build_hcl
from repro.core.metrics import (
    coverage_histogram,
    landmark_coverage_counts,
    quality_report,
    uncovered_vertices,
)


class TestCoverage:
    def test_histogram_on_path(self):
        index = build_hcl(path_graph(5), [2])
        # every non-landmark vertex is covered by exactly one landmark
        assert coverage_histogram(index) == {1: 4}

    def test_histogram_counts_overlap(self):
        index = build_hcl(cycle_graph(6), [0, 3])
        # vertices 1, 2, 4, 5 are each covered by both landmarks
        assert coverage_histogram(index) == {2: 4}

    def test_landmark_counts(self):
        index = build_hcl(path_graph(5), [1, 3])
        counts = landmark_coverage_counts(index)
        assert counts[1] == 2  # vertices 0 and 2
        assert counts[3] == 2  # vertices 2 and 4

    def test_uncovered(self):
        g = path_graph(3)
        g.add_vertex()
        index = build_hcl(g, [1])
        assert uncovered_vertices(index) == [3]


class TestQualityReport:
    def test_fields(self):
        index = build_hcl(grid_graph(4, 4), [0, 15])
        report = quality_report(index)
        assert report.landmarks == 2
        assert report.label_entries == index.labeling.total_entries()
        assert report.uncovered == 0
        assert report.max_label_size >= report.average_label_size
        assert report.bytes_estimate > 0
        assert 0 <= report.coverage_balance <= 1

    def test_balance_degenerate(self):
        index = build_hcl(path_graph(2), [])
        report = quality_report(index)
        assert report.coverage_balance == 1.0
        assert report.min_landmark_coverage == 0
