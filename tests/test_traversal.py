"""Tests for the shortest-path search kernels, with networkx as oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import path_graph, random_graph
from repro.graphs import (
    INF,
    bfs_distances,
    bounded_bidirectional_distance,
    dijkstra_distances,
    distance_between,
    flagged_single_source,
    reconstruct_path,
    single_source_distances,
    single_source_with_parents,
)


def to_networkx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


def nx_distances(g, source):
    lengths = nx.single_source_dijkstra_path_length(to_networkx(g), source)
    return [lengths.get(v, INF) for v in range(g.n)]


class TestSingleSource:
    def test_path_graph_distances(self, small_path):
        assert bfs_distances(small_path, 0) == [0, 1, 2, 3, 4]

    def test_weighted_diamond(self, weighted_diamond):
        assert dijkstra_distances(weighted_diamond, 0) == [0, 1, 3, 2]

    def test_disconnected_vertices_are_inf(self):
        g = path_graph(3)
        g.add_vertex()
        assert single_source_distances(g, 0)[3] == INF

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = random_graph(seed)
        src = seed % g.n
        assert single_source_distances(g, src) == nx_distances(g, src)

    def test_dispatch_uses_bfs_for_unweighted(self, small_path):
        assert single_source_distances(small_path, 2) == bfs_distances(small_path, 2)


class TestParents:
    def test_parent_array_reconstructs_shortest_path(self, weighted_diamond):
        dist, parent = single_source_with_parents(weighted_diamond, 0)
        path = reconstruct_path(parent, 3)
        assert path == [0, 1, 3]
        assert dist[3] == 2.0

    def test_root_has_no_parent(self, small_path):
        _, parent = single_source_with_parents(small_path, 2)
        assert parent[2] == -1


class TestFlagged:
    def test_source_always_clear(self, small_path):
        _, clear = flagged_single_source(small_path, 2, {0, 4})
        assert clear[2]

    def test_blocked_internal_vertex_clears_flag(self):
        g = path_graph(5)
        dist, clear = flagged_single_source(g, 0, {2})
        # 2 is blocked: vertices beyond it have no avoiding shortest path.
        assert clear[1]
        assert clear[2]  # endpoint itself is allowed
        assert not clear[3]
        assert not clear[4]
        assert dist == [0, 1, 2, 3, 4]  # distances are unaffected by flags

    def test_tie_join_sets_flag(self):
        # Two shortest 0->3 paths: through 1 (blocked) and through 2 (free).
        g = path_graph(4)  # not used; build explicitly
        from repro.graphs import Graph

        g = Graph(4, unweighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 1.0)
        _, clear = flagged_single_source(g, 0, {1})
        assert clear[3]
        _, clear = flagged_single_source(g, 0, {1, 2})
        assert not clear[3]

    @pytest.mark.parametrize("seed", range(6))
    def test_flag_semantics_bruteforce(self, seed):
        """clear[v] <=> some shortest path avoids blocked internally."""
        g = random_graph(seed, n_lo=5, n_hi=12)
        nxg = to_networkx(g)
        blocked = {v for v in range(g.n) if v % 3 == 0}
        src = 1
        dist, clear = flagged_single_source(g, src, blocked)
        for v in range(g.n):
            if dist[v] == INF:
                assert not clear[v] or v == src
                continue
            avoiding = False
            for path in nx.all_shortest_paths(nxg, src, v, weight="weight"):
                if all(x not in blocked for x in path[1:-1]):
                    avoiding = True
                    break
            assert clear[v] == avoiding, (v, dist[v], clear[v], avoiding)


class TestBoundedBidirectional:
    def test_refines_upper_bound(self, weighted_diamond):
        got = bounded_bidirectional_distance(weighted_diamond, 0, 3, 100.0, ())
        assert got == 2.0

    def test_returns_bound_when_no_better_path(self):
        g = path_graph(4)
        got = bounded_bidirectional_distance(g, 0, 3, 2.5, ())
        assert got == 2.5

    def test_excluded_vertices_not_crossed(self):
        g = path_graph(5)
        got = bounded_bidirectional_distance(g, 0, 4, 10.0, {2})
        assert got == 10.0  # path must cross 2, so only the bound remains

    def test_excluded_endpoint_returns_bound(self):
        g = path_graph(3)
        assert bounded_bidirectional_distance(g, 0, 2, 9.0, {0}) == 9.0

    def test_same_vertex(self):
        g = path_graph(3)
        assert bounded_bidirectional_distance(g, 1, 1, 7.0, ()) == 0.0

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_dijkstra_with_loose_bound(self, seed):
        g = random_graph(seed)
        dist = single_source_distances(g, 0)
        for t in range(1, g.n):
            if dist[t] == INF:
                continue
            got = bounded_bidirectional_distance(g, 0, t, dist[t] * 2 + 1, ())
            assert got == dist[t]


class TestDistanceBetween:
    def test_early_exit_matches_full(self, weighted_diamond):
        assert distance_between(weighted_diamond, 0, 3) == 2.0
        assert distance_between(weighted_diamond, 3, 3) == 0.0

    def test_disconnected_is_inf(self):
        g = path_graph(2)
        g.add_vertex()
        assert distance_between(g, 0, 2) == INF


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_property_single_source_matches_networkx(seed):
    g = random_graph(seed, n_lo=4, n_hi=20)
    src = seed % g.n
    assert single_source_distances(g, src) == nx_distances(g, src)
