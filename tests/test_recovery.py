"""End-to-end crash-recovery tests: checkpoint + WAL replay."""

import pytest

from conftest import grid_graph, random_graph
from repro.core import build_hcl
from repro.core.wal import WriteAheadLog, scan_wal
from repro.errors import CheckpointError, RecoveryError, VertexError
from repro.service import (
    AddLandmarkRequest,
    HCLService,
    RemoveLandmarkRequest,
)
from repro.testing import corrupt_byte, truncate_tail


@pytest.fixture
def crashed_deployment(tmp_path):
    """A service that checkpointed, committed more mutations, then died.

    Returns ``(graph, ckpt_path, wal_path, final_landmarks)`` where
    ``final_landmarks`` is the landmark set after every committed
    mutation.
    """
    g = grid_graph(4, 5)
    ckpt, wal = tmp_path / "index.ckpt", tmp_path / "index.wal"
    svc = HCLService.build(g, [0, 19], wal=wal)
    svc.submit(AddLandmarkRequest(7))
    svc.checkpoint(ckpt)  # checkpoint includes seq 1
    svc.submit(AddLandmarkRequest(12))
    svc.submit(RemoveLandmarkRequest(7))
    svc.submit(AddLandmarkRequest(3))
    svc.wal.close()  # the "crash"
    return g, ckpt, wal, {0, 3, 12, 19}


class TestRecover:
    def test_full_replay(self, crashed_deployment):
        g, ckpt, wal, final = crashed_deployment
        report = HCLService.recover(g, ckpt, wal)
        assert report.checkpoint_wal_seq == 1
        assert report.wal_records_seen == 4
        assert report.wal_records_applied == 3  # seq 2..4
        assert not report.wal_tail_truncated
        assert report.probe_ok and report.probe_error is None
        assert set(report.landmarks) == final
        # recovered state is byte-identical to a from-scratch build
        recovered = report.service._dyn.index
        assert recovered.structurally_equal(build_hcl(g, sorted(final)))

    def test_empty_committed_suffix_is_clean_noop(self, tmp_path):
        """Checkpoint current + only a torn record after it => no replay.

        The WAL's committed suffix past the checkpoint is empty: the one
        record appended after ``checkpoint()`` is torn mid-write by the
        crash.  Recovery must come back clean — truncate the torn tail,
        apply nothing, probe fine — and reproduce exactly the
        checkpointed landmark set.
        """
        g = grid_graph(4, 5)
        ckpt, wal = tmp_path / "index.ckpt", tmp_path / "index.wal"
        svc = HCLService.build(g, [0, 19], wal=wal)
        svc.submit(AddLandmarkRequest(7))
        svc.submit(AddLandmarkRequest(12))
        svc.checkpoint(ckpt)  # checkpoint is current: includes seq 2
        svc.submit(AddLandmarkRequest(3))  # seq 3, about to be torn
        svc.wal.close()  # the "crash"
        truncate_tail(wal, 5)  # tear the only post-checkpoint record

        report = HCLService.recover(g, ckpt, wal)
        assert report.checkpoint_wal_seq == 2
        assert report.wal_tail_truncated
        assert report.wal_records_seen == 2  # the pre-checkpoint prefix
        assert report.wal_records_applied == 0  # nothing to replay
        assert report.probe_ok and report.probe_error is None
        assert set(report.landmarks) == {0, 7, 12, 19}
        assert report.service._dyn.index.structurally_equal(
            build_hcl(g, [0, 7, 12, 19])
        )

    def test_truncated_tail_replays_committed_prefix(self, crashed_deployment):
        g, ckpt, wal, _ = crashed_deployment
        truncate_tail(wal, 5)  # tear the last record (add 3)
        report = HCLService.recover(g, ckpt, wal)
        assert report.wal_tail_truncated
        assert report.wal_records_seen == 3
        assert report.wal_records_applied == 2
        assert set(report.landmarks) == {0, 12, 19}
        assert report.service._dyn.index.structurally_equal(
            build_hcl(g, [0, 12, 19])
        )

    def test_corrupt_wal_record_stops_replay_there(self, crashed_deployment):
        g, ckpt, wal, _ = crashed_deployment
        # corrupt the third record's body: replay stops after seq 2
        corrupt_byte(wal, 5 + 2 * 17 + 3)
        report = HCLService.recover(g, ckpt, wal)
        assert report.wal_tail_truncated
        assert report.wal_records_applied == 1  # only seq 2
        assert set(report.landmarks) == {0, 7, 12, 19}

    def test_corrupt_checkpoint_raises_typed_error(self, crashed_deployment):
        g, ckpt, wal, _ = crashed_deployment
        corrupt_byte(ckpt, 30)
        with pytest.raises(CheckpointError):
            HCLService.recover(g, ckpt, wal)

    def test_wrong_graph_raises(self, crashed_deployment):
        _, ckpt, wal, _ = crashed_deployment
        with pytest.raises(VertexError):
            HCLService.recover(grid_graph(5, 5), ckpt, wal)

    def test_missing_wal_recovers_checkpoint_only(self, crashed_deployment):
        g, ckpt, wal, _ = crashed_deployment
        wal.unlink()
        report = HCLService.recover(g, ckpt, wal)
        assert report.wal_records_seen == 0
        assert set(report.landmarks) == {0, 7, 19}

    def test_no_wal_argument(self, crashed_deployment):
        g, ckpt, _, _ = crashed_deployment
        report = HCLService.recover(g, ckpt)
        assert report.wal_records_applied == 0
        assert set(report.landmarks) == {0, 7, 19}

    def test_inapplicable_record_raises_recovery_error(self, tmp_path):
        g = grid_graph(3, 4)
        ckpt, wal_path = tmp_path / "c.ckpt", tmp_path / "w.wal"
        svc = HCLService.build(g, [0], wal=wal_path)
        svc.checkpoint(ckpt)
        # Forge a committed record that contradicts the checkpoint:
        # removing a vertex that is not a landmark cannot replay.
        svc.wal.append("remove", 5)
        svc.wal.close()
        with pytest.raises(RecoveryError, match="seq=1"):
            HCLService.recover(g, ckpt, wal_path)

    def test_recovered_service_keeps_logging(self, crashed_deployment, tmp_path):
        g, ckpt, wal, _ = crashed_deployment
        report = HCLService.recover(g, ckpt, wal)
        svc = report.service
        assert svc.wal is not None
        svc.submit(RemoveLandmarkRequest(12))
        svc.wal.close()
        scan = scan_wal(wal)
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]
        assert (scan.records[-1].kind, scan.records[-1].vertex) == ("remove", 12)

    def test_recover_after_checkpoint_with_reset(self, tmp_path):
        g = grid_graph(4, 4)
        ckpt, wal_path = tmp_path / "c.ckpt", tmp_path / "w.wal"
        svc = HCLService.build(g, [0], wal=wal_path)
        svc.submit(AddLandmarkRequest(5))
        svc.checkpoint(ckpt, reset_wal=True)
        svc.submit(AddLandmarkRequest(10))
        svc.wal.close()
        report = HCLService.recover(g, ckpt, wal_path)
        assert report.checkpoint_wal_seq == 1
        assert report.wal_records_seen == 1  # reset dropped seq 1
        assert report.wal_records_applied == 1  # seq 2 replays
        assert set(report.landmarks) == {0, 5, 10}

    def test_probe_detects_sabotage(self, tmp_path):
        g = random_graph(23, n_lo=15, n_hi=25)
        ckpt = tmp_path / "c.ckpt"
        svc = HCLService.build(g, [0, g.n - 1])
        svc.checkpoint(ckpt)
        report = HCLService.recover(g, ckpt)
        # sabotage the recovered labeling, then re-probe via a fresh recover
        idx = report.service._dyn.index
        victim = next(
            v for v in range(g.n) if not idx.is_landmark(v)
            and idx.labeling.label(v)
        )
        idx.labeling.clear_vertex(victim)
        svc2 = HCLService(report.service._dyn)
        svc2.checkpoint(ckpt)
        damaged = HCLService.recover(g, ckpt, probe_pairs=500, probe_seed=3)
        assert not damaged.probe_ok
        assert damaged.probe_error is not None
