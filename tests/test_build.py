"""Tests for BUILDHCL: canonical index semantics."""

import math

import pytest

from conftest import cycle_graph, grid_graph, path_graph, random_graph
from repro.core import build_hcl, check_cover_property, check_highway_exact
from repro.errors import LandmarkError, VertexError
from repro.graphs import Graph


class TestHandExamples:
    def test_single_landmark_on_path(self):
        g = path_graph(5)
        index = build_hcl(g, [2])
        # every vertex is covered by the sole landmark
        assert index.labeling.label(0) == {2: 2.0}
        assert index.labeling.label(4) == {2: 2.0}
        assert index.labeling.label(2) == {2: 0.0}
        assert index.highway.distance(2, 2) == 0.0

    def test_landmark_blocks_coverage(self):
        g = path_graph(5)
        index = build_hcl(g, [1, 2])
        # vertex 0: shortest path to 2 passes landmark 1 -> not covered by 2
        assert index.labeling.label(0) == {1: 1.0}
        # vertex 3 and 4 behind 2: not covered by 1
        assert index.labeling.label(3) == {2: 1.0}
        assert index.highway.distance(1, 2) == 1.0

    def test_tie_keeps_entry(self):
        # Two equal shortest paths 0 -> 3, one through landmark 1 only.
        g = Graph(4, unweighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 1.0)
        index = build_hcl(g, [1, 3])
        # 3 covers 0 via 0-2-3 which avoids landmark 1.
        assert index.labeling.label(0) == {1: 1.0, 3: 2.0}

    def test_cycle_symmetry(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0, 3])
        assert index.highway.distance(0, 3) == 3.0
        # vertices 1, 2 covered by both (paths on opposite arcs)
        assert index.labeling.label(1) == {0: 1.0, 3: 2.0}
        assert index.labeling.label(2) == {0: 2.0, 3: 1.0}

    def test_landmark_labels_are_self_only(self):
        g = grid_graph(3, 3)
        index = build_hcl(g, [0, 4, 8])
        for r in (0, 4, 8):
            assert index.labeling.label(r) == {r: 0.0}


class TestEdgeCases:
    def test_empty_landmark_set(self):
        g = path_graph(3)
        index = build_hcl(g, [])
        assert index.landmarks == set()
        assert index.labeling.total_entries() == 0
        assert index.query(0, 2) == math.inf

    def test_all_vertices_landmarks(self):
        g = cycle_graph(4)
        index = build_hcl(g, [0, 1, 2, 3])
        for v in range(4):
            assert index.labeling.label(v) == {v: 0.0}
        assert index.highway.distance(0, 2) == 2.0

    def test_disconnected_graph(self):
        g = path_graph(3)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(3, 4, 1.0)
        index = build_hcl(g, [1, 4])
        assert index.highway.distance(1, 4) == math.inf
        assert index.labeling.label(0) == {1: 1.0}
        assert index.labeling.label(3) == {4: 1.0}

    def test_duplicate_landmarks_rejected(self):
        with pytest.raises(LandmarkError):
            build_hcl(path_graph(3), [1, 1])

    def test_out_of_range_landmark_rejected(self):
        with pytest.raises(VertexError):
            build_hcl(path_graph(3), [7])


class TestInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_highway_exact_on_random_graphs(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        index = build_hcl(g, landmarks)
        check_highway_exact(index)

    @pytest.mark.parametrize("seed", range(6))
    def test_cover_property_on_random_graphs(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 4 == 1]
        index = build_hcl(g, landmarks)
        check_cover_property(index, sample=30, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_order_invariance(self, seed):
        """Landmark processing order cannot change the result."""
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 3 == 0]
        a = build_hcl(g, landmarks)
        b = build_hcl(g, list(reversed(landmarks)))
        assert a.structurally_equal(b)
