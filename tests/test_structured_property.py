"""Canonicity fuzzing on structured (non-ER) topologies.

Trees, clique-stars and tie-rich chains exercise shortest-path DAG shapes
the uniform random graphs rarely produce; the invariants must hold there
too.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    assert_canonical,
    build_hcl,
    downgrade_landmark,
    upgrade_landmark,
)
from repro.graphs import single_source_distances
from strategies import graph_with_landmarks, structured_graphs


@settings(max_examples=30, deadline=None)
@given(data=graph_with_landmarks(), seed=st.integers(0, 2**20))
def test_structured_updates_stay_canonical(data, seed):
    g, landmarks = data
    rng = random.Random(seed)
    current = set(landmarks)
    index = build_hcl(g, sorted(current))
    for _ in range(4):
        addable = [v for v in range(g.n) if v not in current]
        if current and (not addable or rng.random() < 0.5):
            v = rng.choice(sorted(current))
            downgrade_landmark(index, v)
            current.discard(v)
        elif addable:
            v = rng.choice(addable)
            upgrade_landmark(index, v)
            current.add(v)
        assert_canonical(index)


@settings(max_examples=25, deadline=None)
@given(data=graph_with_landmarks(), seed=st.integers(0, 2**20))
def test_structured_distances_stay_exact(data, seed):
    g, landmarks = data
    rng = random.Random(seed)
    index = build_hcl(g, landmarks)
    v = rng.choice([x for x in range(g.n) if not index.is_landmark(x)] or landmarks)
    if not index.is_landmark(v):
        upgrade_landmark(index, v)
    s = rng.randrange(g.n)
    truth = single_source_distances(g, s)
    for t in range(g.n):
        assert index.distance(s, t) == truth[t]


@settings(max_examples=20, deadline=None)
@given(g=structured_graphs)
def test_structured_build_is_order_invariant(g):
    landmarks = [v for v in range(g.n) if v % 3 == 0]
    a = build_hcl(g, landmarks)
    b = build_hcl(g, list(reversed(landmarks)))
    assert a.structurally_equal(b)
