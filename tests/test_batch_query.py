"""Differential tests for batched query serving.

``query_batch`` must agree *exactly* — infinities included — with a
per-pair ``index.query`` / ``index.distance`` loop on seeded random
workloads from :mod:`repro.workloads`, through every execution path:
the plain double loop, the shared landmark rows, the deduplicated fan-out,
the multiprocessing pool, and the service/cache layers on top.
"""

from __future__ import annotations

import math

import pytest

from conftest import path_graph, random_graph
from repro.core import DynamicHCL, build_hcl, query_batch
from repro.core.cache import CachedQueryEngine
from repro.core.highway import Highway
from repro.core.index import HCLIndex
from repro.core.labeling import Labeling
from repro.errors import VertexError
from repro.graphs import Graph
from repro.service import BatchQueryRequest, HCLService
from repro.workloads import random_query_pairs, zipf_query_pairs

INF = math.inf


def indexed_instance(seed: int, k: int | None = None):
    import random

    g = random_graph(seed, n_lo=12, n_hi=30)
    rng = random.Random(seed + 1000)
    if k is None:
        k = rng.randint(1, max(1, g.n // 3))
    landmarks = sorted(rng.sample(range(g.n), k))
    return g, build_hcl(g, landmarks)


def split_instance():
    """Two components with landmarks only in the first: ∞ answers abound."""
    g = Graph(10, unweighted=True)
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]:
        g.add_edge(u, v, 1.0)
    for u, v in [(5, 6), (6, 7), (7, 8), (8, 9)]:
        g.add_edge(u, v, 1.0)
    return g, build_hcl(g, [1, 3])


class TestQueryBatchDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_uniform_workload(self, seed):
        g, index = indexed_instance(seed)
        pairs = random_query_pairs(g.n, 120, seed=seed)
        assert query_batch(index, pairs) == [index.query(s, t) for s, t in pairs]

    @pytest.mark.parametrize("seed", range(5))
    def test_zipf_workload_hits_row_path(self, seed):
        g, index = indexed_instance(seed)
        # Heavy skew on a small vertex pool forces endpoint multiplicities
        # past the row threshold, covering the shared-row fast path.
        pairs = zipf_query_pairs(g.n, 300, alpha=1.4, seed=seed)
        assert query_batch(index, pairs) == [index.query(s, t) for s, t in pairs]

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_distances(self, seed):
        g, index = indexed_instance(seed)
        pairs = random_query_pairs(g.n, 80, seed=seed) + [(2, 2), (5, 5)]
        assert query_batch(index, pairs, exact=True) == [
            index.distance(s, t) for s, t in pairs
        ]

    def test_unreachable_pairs_stay_infinite(self):
        g, index = split_instance()
        pairs = [(0, 7), (5, 9), (2, 6), (5, 9), (9, 5), (1, 4)]
        got = query_batch(index, pairs)
        want = [index.query(s, t) for s, t in pairs]
        assert got == want
        assert got[0] == INF and got[1] == INF  # ∞ survives batching
        exact = query_batch(index, pairs, exact=True)
        assert exact == [index.distance(s, t) for s, t in pairs]
        assert exact[0] == INF  # cross-component: unreachable even exactly
        assert exact[1] == 4.0  # within the landmark-free component

    def test_landmark_endpoints(self):
        g, index = indexed_instance(2, k=3)
        lmks = sorted(index.landmarks)
        pairs = [(lmks[0], lmks[1]), (lmks[0], 0), (0, lmks[2]), (lmks[1], lmks[1])]
        assert query_batch(index, pairs) == [index.query(s, t) for s, t in pairs]
        assert query_batch(index, pairs, exact=True) == [
            index.distance(s, t) for s, t in pairs
        ]

    def test_empty_and_invalid_input(self):
        g, index = indexed_instance(0)
        assert query_batch(index, []) == []
        with pytest.raises(VertexError):
            query_batch(index, [(0, g.n)])

    def test_no_landmarks_all_infinite(self):
        g = path_graph(4)
        index = build_hcl(g, [])
        assert query_batch(index, [(0, 3), (1, 2)]) == [INF, INF]

    @pytest.mark.parametrize("workers", [2, 4])
    def test_multiprocessing_path(self, workers):
        g, index = indexed_instance(3)
        pairs = random_query_pairs(g.n, 150, seed=7)
        got = query_batch(index, pairs, workers=workers, min_parallel=1)
        assert got == [index.query(s, t) for s, t in pairs]

    @pytest.mark.slow
    def test_multiprocessing_exact_path(self):
        g, index = indexed_instance(4)
        pairs = random_query_pairs(g.n, 200, seed=8)
        got = query_batch(index, pairs, workers=2, exact=True, min_parallel=1)
        assert got == [index.distance(s, t) for s, t in pairs]


def adversarial_index(labels: dict[int, dict[int, float]]) -> HCLIndex:
    """A 4-vertex index with landmarks {0, 1}, δ_H(0, 1) = 1, and the given
    endpoint labels — distances chosen by hand, not derived from the graph,
    so float-association drift is deterministic rather than seed-dependent.
    """
    g = Graph(4)
    g.add_edge(0, 1, 1.0)
    highway = Highway()
    highway.add_landmark(0)
    highway.add_landmark(1)
    highway.set_distance(0, 1, 1.0)
    labeling = Labeling(4)
    labeling.add_entry(0, 0, 0.0)
    labeling.add_entry(1, 1, 0.0)
    for v, entries in labels.items():
        for r, d in entries.items():
            labeling.add_entry(v, r, d)
    return HCLIndex(g, highway, labeling)


class TestFloatAssociationRegressions:
    """The bitwise guarantee under adversarial float labels.

    ``1e16 + small`` absorbs the small addend while ``small + small +
    1e16`` does not, so any deviation from the serial loop's
    ``(d_i + δ) + d_j`` association (``d_i`` from the smaller label) is a
    visible 1-ulp drift, not a rounding coincidence.
    """

    def test_hot_endpoint_with_larger_label_keeps_serial_association(self):
        # Vertex 2 is hot (recurs past the row threshold) but holds the
        # *larger* label; the memoized row must nevertheless collapse the
        # smaller label L(3), exactly as HCLIndex.query's swap does.
        index = adversarial_index({2: {0: 3.0, 1: 1.0}, 3: {0: 1e16}})
        pairs = [(2, 3), (3, 2)] * 4
        want = [index.query(s, t) for s, t in pairs]
        assert query_batch(index, pairs, row_threshold=2) == want
        assert want[0] == (1e16 + 1.0) + 1.0  # == 1e16: small terms absorbed

    def test_reversed_pairs_with_tied_labels_keep_their_orientation(self):
        # Tied label sizes: QUERY's outer loop follows argument order, so
        # query(2, 3) and query(3, 2) legitimately differ by one ulp and
        # the batch must not collapse one orientation onto the other.
        index = adversarial_index({2: {0: 1e16}, 3: {1: 1.0}})
        assert index.query(2, 3) != index.query(3, 2)  # 1-ulp apart
        pairs = [(2, 3), (3, 2), (2, 3)]
        got = query_batch(index, pairs)
        assert got == [index.query(s, t) for s, t in pairs]

    def test_incomplete_highway_row_matches_serial_inf(self):
        # The serial path reads δ_H defensively (missing cell -> inf); the
        # memoized row must do the same instead of raising KeyError.
        index = adversarial_index({2: {0: 2.0, 1: 5.0}, 3: {0: 7.0}})
        del index.highway._dist[0][1]  # make row(0) incomplete
        pairs = [(3, 2)] * 3
        want = [index.query(s, t) for s, t in pairs]
        assert query_batch(index, pairs, row_threshold=2) == want

    def test_constrained_batch_never_snapshots_the_graph(self, monkeypatch):
        g, index = indexed_instance(1)

        def boom(graph):
            raise AssertionError("CSR snapshot built for a constrained batch")

        monkeypatch.setattr("repro.core.batchquery.CSRGraph", boom)
        pairs = random_query_pairs(g.n, 30, seed=3)
        assert query_batch(index, pairs) == [index.query(s, t) for s, t in pairs]


class TestServiceBatch:
    def make_service(self, seed: int = 1):
        import random

        g = random_graph(seed, n_lo=12, n_hi=24)
        rng = random.Random(seed)
        landmarks = sorted(rng.sample(range(g.n), 3))
        return g, HCLService.build(g, landmarks)

    def test_matches_per_pair_submissions(self):
        g, svc = self.make_service()
        pairs = random_query_pairs(g.n, 60, seed=2)
        batched = svc.query_batch(pairs)
        reference = HCLService.build(g, sorted(svc.landmarks))
        from repro.service import ConstrainedDistanceRequest

        assert batched == [
            reference.submit(ConstrainedDistanceRequest(s, t)) for s, t in pairs
        ]
        assert svc.stats.queries == len(pairs)
        assert isinstance(svc.audit[-1].request, BatchQueryRequest)

    def test_batch_populates_the_query_cache(self):
        g, svc = self.make_service(3)
        pairs = random_query_pairs(g.n, 40, seed=4)
        svc.query_batch(pairs)
        misses_after_batch = svc.metrics()["counters"]["cache.misses"]
        # Replaying the same batch is pure cache hits …
        svc.query_batch(pairs)
        metrics = svc.metrics()["counters"]
        assert metrics["cache.misses"] == misses_after_batch
        assert metrics["cache.hits"] >= len(pairs)
        # … and a per-pair submit also hits.
        from repro.service import ConstrainedDistanceRequest

        s, t = pairs[0]
        svc.submit(ConstrainedDistanceRequest(s, t))
        assert svc.metrics()["counters"]["cache.misses"] == misses_after_batch

    def test_mutation_invalidates_batch_answers(self):
        g, svc = self.make_service(5)
        pairs = random_query_pairs(g.n, 30, seed=6)
        before = svc.query_batch(pairs)
        from repro.service import AddLandmarkRequest

        new_lmk = next(v for v in range(g.n) if v not in svc.landmarks)
        svc.submit(AddLandmarkRequest(new_lmk))
        after = svc.query_batch(pairs)
        fresh = DynamicHCL.build(g, sorted(svc.landmarks))
        assert after == [fresh.query(s, t) for s, t in pairs]
        # adding a landmark can only improve constrained distances
        assert all(a <= b for a, b in zip(after, before))

    def test_exact_batch_through_service(self):
        g, svc = self.make_service(7)
        pairs = random_query_pairs(g.n, 30, seed=8)
        engine = CachedQueryEngine(DynamicHCL.build(g, sorted(svc.landmarks)))
        assert svc.query_batch(pairs, exact=True) == [
            engine.distance(s, t) for s, t in pairs
        ]
