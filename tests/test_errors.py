"""Tests for the exception hierarchy and public API surface."""

import pytest

import repro
from repro.errors import (
    CoverPropertyError,
    DatasetError,
    EdgeError,
    GraphError,
    IndexStateError,
    LandmarkError,
    ParseError,
    ReproError,
    VertexError,
    WeightError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            VertexError,
            EdgeError,
            WeightError,
            IndexStateError,
            LandmarkError,
            CoverPropertyError,
            DatasetError,
            ParseError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_graph_errors_grouped(self):
        for exc in (VertexError, EdgeError, WeightError):
            assert issubclass(exc, GraphError)

    def test_landmark_error_is_index_state(self):
        assert issubclass(LandmarkError, IndexStateError)

    def test_single_except_clause_catches_all(self):
        from repro.graphs import Graph

        with pytest.raises(ReproError):
            Graph(2).add_edge(0, 9)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_main_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_docstring_example(self):
        g = repro.Graph(5)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]:
            g.add_edge(u, v, 1.0)
        dyn = repro.DynamicHCL.build(g, [0])
        dyn.add_landmark(2)
        assert dyn.query(1, 3) == 2.0
        assert dyn.distance(1, 3) == 2.0
