"""Differential harness for the process-parallel ``BUILDHCL``.

Parallel merge order is the classic source of silent canonicality bugs, so
the parallel builder is locked to the serial one three ways:

* structural equality (``assert_canonical`` level) between ``build_hcl``
  and ``build_hcl_parallel`` over seeded random graphs — weighted and
  unweighted — for workers in {1, 2, 4};
* the same over degenerate inputs: 0-2 landmarks, disconnected graphs,
  single-vertex and empty graphs;
* byte-identical ``serialization`` output across worker counts, which pins
  down the merge ordering exactly (see ``test_serialization_determinism``).

The exhaustive sweeps are marked ``slow`` (run them with ``pytest -m
slow``); a representative subset stays in the default tier-1 lane.
"""

from __future__ import annotations

import io
import random

import pytest
from hypothesis import HealthCheck, given, settings

from conftest import path_graph, random_graph
from strategies import graph_with_landmarks
from repro.core import assert_canonical, build_hcl, build_hcl_parallel
from repro.core.serialization import save_index_binary, save_index_json
from repro.errors import LandmarkError, VertexError
from repro.graphs import Graph, erdos_renyi


def seeded_landmarks(graph: Graph, seed: int, k: int | None = None) -> list[int]:
    """A deterministic landmark sample for a differential run."""
    rng = random.Random(seed)
    if k is None:
        k = rng.randint(0, max(1, graph.n // 3))
    k = min(k, graph.n)
    return sorted(rng.sample(range(graph.n), k))


def binary_bytes(index) -> bytes:
    buf = io.BytesIO()
    save_index_binary(index, buf)
    return buf.getvalue()


def disconnected_graph(weighted: bool) -> Graph:
    """Two components, so highway cells and labels must carry ``inf``."""
    g = Graph(9, unweighted=not weighted)
    w = 2.0 if weighted else 1.0
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        g.add_edge(u, v, w)
    for u, v in [(4, 5), (5, 6), (6, 7), (7, 8)]:
        g.add_edge(u, v, 1.0)
    return g


class TestDifferential:
    """``build_hcl_parallel`` == ``build_hcl``, canonically."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_two_workers(self, seed):
        g = random_graph(seed)
        landmarks = seeded_landmarks(g, seed + 100)
        serial = build_hcl(g, landmarks)
        parallel = build_hcl_parallel(g, landmarks, workers=2)
        assert parallel.structurally_equal(serial)
        assert_canonical(parallel)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("weighted", [False, True], ids=["bfs", "dijkstra"])
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_sweep(self, seed, weighted, workers):
        g = random_graph(seed, weighted=weighted)
        landmarks = seeded_landmarks(g, seed + 200)
        serial = build_hcl(g, landmarks)
        parallel = build_hcl_parallel(g, landmarks, workers=workers)
        assert parallel.structurally_equal(serial)
        assert_canonical(parallel)

    @pytest.mark.slow
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(case=graph_with_landmarks())
    def test_structured_graphs(self, case):
        g, landmarks = case
        serial = build_hcl(g, landmarks)
        parallel = build_hcl_parallel(g, landmarks, workers=2)
        assert parallel.structurally_equal(serial)


class TestDegenerateInputs:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_no_landmarks(self, workers):
        g = path_graph(5)
        parallel = build_hcl_parallel(g, [], workers=workers)
        assert parallel.structurally_equal(build_hcl(g, []))
        assert parallel.labeling.total_entries() == 0

    @pytest.mark.parametrize("k", [1, 2])
    def test_tiny_landmark_sets(self, k):
        g = path_graph(6, weights=[1.0, 4.0, 2.0, 1.0, 3.0])
        landmarks = seeded_landmarks(g, 17, k=k)
        parallel = build_hcl_parallel(g, landmarks, workers=2)
        assert parallel.structurally_equal(build_hcl(g, landmarks))

    @pytest.mark.parametrize("weighted", [False, True])
    def test_disconnected_graph(self, weighted):
        g = disconnected_graph(weighted)
        landmarks = [0, 2, 5]  # landmarks straddle the two components
        serial = build_hcl(g, landmarks)
        parallel = build_hcl_parallel(g, landmarks, workers=2)
        assert parallel.structurally_equal(serial)
        assert parallel.highway.distance(0, 5) == float("inf")

    def test_single_vertex_graph(self):
        g = Graph(1)
        for landmarks in ([], [0]):
            parallel = build_hcl_parallel(g, landmarks, workers=2)
            assert parallel.structurally_equal(build_hcl(g, landmarks))

    def test_empty_graph(self):
        g = Graph(0)
        parallel = build_hcl_parallel(g, [], workers=4)
        assert parallel.structurally_equal(build_hcl(g, []))

    def test_validation_errors_raised_before_forking(self):
        g = path_graph(4)
        with pytest.raises(VertexError):
            build_hcl_parallel(g, [7], workers=2)
        with pytest.raises(LandmarkError):
            build_hcl_parallel(g, [1, 1], workers=2)


class TestDeterminism:
    """Satellite: byte-identical serialization across worker counts."""

    def test_serialization_determinism(self):
        g = random_graph(11, weighted=True)
        landmarks = seeded_landmarks(g, 42, k=max(2, g.n // 4))
        blobs = {
            workers: binary_bytes(build_hcl_parallel(g, landmarks, workers))
            for workers in (1, 2, 4)
        }
        assert blobs[1] == blobs[2] == blobs[4]
        assert blobs[1] == binary_bytes(build_hcl(g, landmarks))

    def test_json_determinism(self):
        g = random_graph(12, weighted=False)
        landmarks = seeded_landmarks(g, 43, k=3)
        texts = []
        for workers in (1, 4):
            buf = io.StringIO()
            save_index_json(build_hcl_parallel(g, landmarks, workers), buf)
            texts.append(buf.getvalue())
        assert texts[0] == texts[1]

    @pytest.mark.slow
    def test_repeated_runs_are_stable(self):
        g = erdos_renyi(60, 3.0, seed=9)
        landmarks = seeded_landmarks(g, 44, k=10)
        first = binary_bytes(build_hcl_parallel(g, landmarks, workers=4))
        second = binary_bytes(build_hcl_parallel(g, landmarks, workers=4))
        assert first == second


class TestMergePrimitives:
    """The labeling merge layer the parallel build relies on."""

    def test_merge_entries_conflict_detection(self):
        from repro.core import Labeling

        lab = Labeling(4)
        assert lab.merge_entries(1, [(0, 2.0), (2, 1.0)]) == 2
        # identical re-merge is idempotent …
        lab.merge_entries(1, [(0, 2.0)])
        # … but a different distance for the same (v, r) is a merge bug
        with pytest.raises(LandmarkError):
            lab.merge_entries(1, [(0, 3.0)])
        with pytest.raises(VertexError):
            lab.merge_entries(1, [(9, 1.0)])

    def test_merge_whole_labelings(self):
        from repro.core import Labeling

        a, b = Labeling(3), Labeling(3)
        a.add_entry(0, 1, 2.0)
        b.add_entry(2, 0, 1.5)
        b.add_entry(0, 2, 4.0)
        assert a.merge(b) == 2
        assert a.label(0) == {1: 2.0, 2: 4.0}
        assert a.label(2) == {0: 1.5}
        with pytest.raises(VertexError):
            a.merge(Labeling(5))
