"""Snapshot isolation of epoch-based MVCC plan serving.

Three layers of evidence that the :mod:`repro.core.epoch` registry gives
readers a consistent, bitwise-stable view while landmark mutations
commit, roll back and recompile around them:

* **Property suite** — randomized sequences of queries, landmark
  mutations and rollbacks; every pinned epoch's answers are compared
  bitwise against a serial dict-path oracle captured at that epoch's
  version.
* **Deterministic interleavings** — the hard reader/writer windows
  scripted exactly with :class:`repro.testing.interleave.StepScheduler`:
  a reader pinned to epoch N finishing after N+1 published, retirement
  deferred to the last release, rollback racing an in-flight recompile.
* **Soaks** — a 1k-query pin/release storm bounding live-epoch growth,
  and a ``stress``-marked genuinely-threaded reader/writer soak.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_graph
from repro.core import DynamicHCL, IndexTransaction, build_hcl, query_batch
from repro.core import epoch as epoch_mod
from repro.core.upgrade import upgrade_landmark
from repro.errors import TransactionError
from repro.testing import InjectedFault, StepScheduler, fail_at_label_write
from strategies import graph_with_landmarks


def all_pairs(n):
    return [(s, t) for s in range(n) for t in range(n)]


def oracle_answers(index, pairs, exact=False):
    """Serial dict-path answers from a frozen copy of ``index``."""
    frozen = index.copy()
    frozen.plan_mode = "off"
    fn = frozen.distance if exact else frozen.query
    return [fn(s, t) for s, t in pairs]


def epoch_answers(epoch, pairs, exact=False):
    fn = epoch.plan.distance if exact else epoch.plan.query
    return [fn(s, t) for s, t in pairs]


def make_dyn(seed=3, recompile="sync"):
    g = random_graph(seed, n_lo=8, n_hi=16)
    lmks = sorted({1, g.n // 2, g.n - 2})
    dyn = DynamicHCL.build(g, lmks)
    registry = dyn.enable_plan_epochs(recompile=recompile)
    return dyn, registry


# ----------------------------------------------------------------------
# Basics: pinning, serving, retirement
# ----------------------------------------------------------------------
def test_epoch_mode_serves_bitwise_identical_answers():
    dyn, registry = make_dyn()
    pairs = all_pairs(dyn.index.graph.n)
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )
    assert [dyn.distance(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs, exact=True
    )
    assert registry.epoch_id == 1


def test_commit_publishes_next_epoch_and_retires_unpinned_head():
    dyn, registry = make_dyn()
    dyn.query(0, 1)  # compile epoch 1
    head1 = registry.head
    dyn.add_landmark(0)
    assert registry.epoch_id == 2
    assert head1.retired
    assert registry.live_epochs == 1  # nobody pinned epoch 1
    pairs = all_pairs(dyn.index.graph.n)
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )


def test_pinned_epoch_survives_commit_and_retires_on_release():
    dyn, registry = make_dyn()
    pairs = all_pairs(dyn.index.graph.n)
    before = oracle_answers(dyn.index, pairs)
    epoch1 = registry.acquire()
    dyn.add_landmark(0)
    after = oracle_answers(dyn.index, pairs)
    assert registry.epoch_id == 2
    assert epoch1.retired and epoch1.readers == 1
    assert registry.live_epochs == 2  # old epoch alive while pinned
    # The pinned epoch still answers at its own version, bitwise.
    assert epoch_answers(epoch1, pairs) == before
    assert epoch_answers(registry.acquire(), pairs) == after
    registry.head.release()
    epoch1.release()
    assert registry.live_epochs == 1  # drained on last release


def test_double_release_raises():
    dyn, registry = make_dyn()
    epoch = registry.acquire()
    epoch.release()
    with pytest.raises(RuntimeError, match="released more times"):
        epoch.release()


def test_rollback_leaves_head_epoch_untouched():
    dyn, registry = make_dyn()
    pairs = all_pairs(dyn.index.graph.n)
    before = oracle_answers(dyn.index, pairs)
    dyn.query(0, 1)
    head = registry.head
    with pytest.raises(TransactionError):
        with IndexTransaction(dyn.index):
            upgrade_landmark(dyn.index, 0)
            raise RuntimeError("abort")
    assert registry.head is head  # no publish from the aborted txn
    assert [dyn.query(s, t) for s, t in pairs] == before


def test_plan_off_still_pins_dict_path():
    dyn, registry = make_dyn()
    dyn.index.plan_mode = "off"
    assert dyn.index._serving_plan() is None
    # and flipping back re-serves from the (still current) head epoch
    dyn.index.plan_mode = "epoch"
    assert dyn.index._serving_plan() is registry.head.plan


def test_batch_epoch_plan_matches_oracle():
    dyn, registry = make_dyn()
    pairs = all_pairs(dyn.index.graph.n)
    dyn.add_landmark(0)
    assert query_batch(dyn.index, pairs, plan="epoch") == oracle_answers(
        dyn.index, pairs
    )
    assert query_batch(
        dyn.index, pairs, exact=True, plan="epoch"
    ) == oracle_answers(dyn.index, pairs, exact=True)
    assert registry.live_epochs == 1  # batch pins were released


# ----------------------------------------------------------------------
# Incremental recompilation
# ----------------------------------------------------------------------
def test_incremental_recompile_shares_unaffected_rows():
    dyn, registry = make_dyn(seed=11)
    n = dyn.index.graph.n
    dyn.query(0, 1)
    plan1 = registry.head.plan
    stats = dyn.add_landmark(0)
    assert registry.incremental_publishes == 1
    plan2 = registry.head.plan
    shared = sum(
        1 for v in range(n) if plan2._rows[v] is plan1._rows[v]
    )
    # Every row the upgrade did not touch is the *same tuple object*.
    assert shared >= n - stats.settled - 1
    pairs = all_pairs(n)
    assert [plan2.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )


def test_incremental_plan_pickles_to_canonical_form():
    import pickle

    dyn, registry = make_dyn(seed=12)
    dyn.query(0, 1)
    dyn.add_landmark(0)
    dyn.add_landmark(2)
    plan = registry.head.plan
    assert plan.label_offsets is None  # arrays stayed lazy
    clone = pickle.loads(pickle.dumps(plan))
    assert list(clone.landmark_ids) == sorted(dyn.landmarks)
    pairs = all_pairs(dyn.index.graph.n)
    assert [clone.query(s, t) for s, t in pairs] == [
        plan.query(s, t) for s, t in pairs
    ]
    assert clone.total_entries == plan.total_entries


def test_removal_falls_back_to_full_compile_but_stays_exact():
    dyn, registry = make_dyn(seed=13)
    dyn.query(0, 1)
    dyn.add_landmark(0)
    dyn.remove_landmark(0)
    pairs = all_pairs(dyn.index.graph.n)
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )
    assert [dyn.distance(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs, exact=True
    )


# ----------------------------------------------------------------------
# Property suite: random op sequences vs serial oracle per epoch
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    gl=graph_with_landmarks(),
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove", "rollback"]), st.integers(0, 10**6)),
        min_size=1,
        max_size=6,
    ),
)
def test_snapshot_isolation_property(gl, ops):
    """Every pinned epoch answers bitwise at its own version, forever.

    After each mutation/rollback the previously pinned epochs must keep
    returning the answers of the index state they were pinned at, and
    the new head must match a fresh serial oracle.
    """
    g, landmarks = gl
    index = build_hcl(g, landmarks)
    dyn = DynamicHCL(index)
    registry = dyn.enable_plan_epochs()
    pairs = [(s, t) for s in range(g.n) for t in range(g.n)][: 12 * 12]
    pinned = [(registry.acquire(), oracle_answers(index, pairs))]
    for kind, raw in ops:
        v = raw % g.n
        try:
            if kind == "add":
                if v not in dyn.landmarks:
                    dyn.add_landmark(v)
            elif kind == "remove":
                if v in dyn.landmarks and len(dyn.landmarks) > 1:
                    dyn.remove_landmark(v)
            else:
                with pytest.raises((TransactionError, InjectedFault)):
                    with IndexTransaction(index):
                        target = v if v not in dyn.landmarks else (v + 1) % g.n
                        if target not in dyn.landmarks:
                            upgrade_landmark(index, target)
                        raise InjectedFault("abort")
        except TransactionError:
            pass
        pinned.append((registry.acquire(), oracle_answers(index, pairs)))
    for epoch, expected in pinned:
        assert epoch_answers(epoch, pairs) == expected
        epoch.release()
    assert registry.live_epochs == 1  # everything else drained


# ----------------------------------------------------------------------
# Deterministic interleavings
# ----------------------------------------------------------------------
def test_interleaved_reader_finishes_on_its_pinned_epoch():
    """Reader pins N → writer commits N+1 → reader finishes on N."""
    dyn, registry = make_dyn(seed=21)
    pairs = all_pairs(dyn.index.graph.n)
    before = oracle_answers(dyn.index, pairs)

    def reader(sched):
        with registry.acquire() as epoch:
            epoch_id = epoch.epoch_id
            first = epoch_answers(epoch, pairs[: len(pairs) // 2])
            sched.step("mid-read")  # writer commits here
            rest = epoch_answers(epoch, pairs[len(pairs) // 2 :])
            return epoch_id, first + rest

    def writer(sched):
        sched.step("before-commit")
        dyn.add_landmark(0)
        return registry.epoch_id

    with StepScheduler() as sched:
        sched.spawn("reader", reader, sched)
        sched.spawn("writer", writer, sched)
        sched.run(["reader", "writer", "writer", "reader"])

    epoch_id, answers = sched.result("reader")
    assert epoch_id == 1
    assert answers == before  # no torn read: all answers from epoch 1
    assert sched.result("writer") == 2
    after = oracle_answers(dyn.index, pairs)
    assert [dyn.query(s, t) for s, t in pairs] == after
    assert registry.live_epochs == 1  # epoch 1 retired once reader left


def test_interleaved_retirement_waits_for_last_reader():
    dyn, registry = make_dyn(seed=22)
    pairs = all_pairs(dyn.index.graph.n)

    def reader(name, sched):
        with registry.acquire() as epoch:
            sched.step(f"{name}-pinned")
            return epoch.epoch_id

    def writer(sched):
        sched.step("staged")
        dyn.add_landmark(0)

    with StepScheduler() as sched:
        sched.spawn("r1", reader, "r1", sched)
        sched.spawn("r2", reader, "r2", sched)
        sched.spawn("writer", writer, sched)
        sched.grant("r1")     # r1 pins epoch 1
        sched.grant("r2")     # r2 pins epoch 1
        sched.grant("writer")
        sched.grant("writer")  # commit: epoch 2 published, epoch 1 pinned twice
        assert registry.epoch_id == 2
        assert registry.live_epochs == 2
        sched.grant("r1")      # first release: epoch 1 must stay live
        assert registry.live_epochs == 2
        sched.grant("r2")      # last release drains epoch 1
        assert registry.live_epochs == 1
        sched.finish()
    assert sched.result("r1") == 1 and sched.result("r2") == 1


def test_interleaved_rollback_mid_recompile_keeps_epoch_n():
    """Writer commits, recompile stalls pre-publish, rollback cancels it."""
    dyn, registry = make_dyn(seed=23, recompile="thread")
    pairs = all_pairs(dyn.index.graph.n)
    dyn.query(0, 1)  # epoch 1
    before = oracle_answers(dyn.index, pairs)
    release_publish = threading.Event()
    entered_publish = threading.Event()

    def publish_hook(reg, task):
        entered_publish.set()
        release_publish.wait(timeout=10.0)

    epoch_mod._PUBLISH_HOOK = publish_hook
    try:
        dyn.add_landmark(0)  # background recompile blocks at the hook
        assert entered_publish.wait(timeout=10.0)
        assert registry.epoch_id == 1  # not yet published
        # Roll the mutation back while its recompile is in flight.
        with pytest.raises(TransactionError):
            with IndexTransaction(dyn.index):
                dyn.index.labeling.add_entry(1, 0, 0.5)  # touch something
                raise RuntimeError("abort")
        release_publish.set()
        thread = registry._pending_thread
        if thread is not None:
            thread.join(timeout=10.0)
    finally:
        epoch_mod._PUBLISH_HOOK = None
        release_publish.set()
    # The cancelled recompile never published; registry stays on epoch 1.
    assert registry.epoch_id == 1
    assert registry.cancelled_recompiles >= 1
    # Note: the index now *contains* landmark 0 (only the second txn was
    # rolled back); refresh() resynchronizes the head on demand.
    registry.refresh()
    assert registry.epoch_id == 2
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )


# ----------------------------------------------------------------------
# Rollback cancels pending recompiles (fault injection)
# ----------------------------------------------------------------------
def test_rollback_cancels_deferred_recompile():
    dyn, registry = make_dyn(seed=31, recompile="deferred")
    pairs = all_pairs(dyn.index.graph.n)
    dyn.query(0, 1)  # epoch 1
    dyn.add_landmark(0)  # deferred: pending recompile, not yet published
    assert registry.pending
    assert registry.epoch_id == 1
    before = oracle_answers(dyn.index, pairs)
    with pytest.raises(TransactionError):
        with IndexTransaction(dyn.index):
            dyn.index.labeling.add_entry(1, 0, 0.25)
            raise RuntimeError("abort")
    # The rollback invalidated the pending task...
    assert not registry.pending
    assert registry.cancelled_recompiles == 1
    assert registry.pump() is False  # nothing left to publish
    assert registry.epoch_id == 1
    # ...and refresh() recovers a head consistent with the live dicts.
    registry.refresh()
    assert [dyn.query(s, t) for s, t in pairs] == before


def test_faulted_transaction_never_publishes_an_epoch():
    dyn, registry = make_dyn(seed=32)
    pairs = all_pairs(dyn.index.graph.n)
    dyn.query(0, 1)
    before = oracle_answers(dyn.index, pairs)
    publishes = registry.publishes
    candidates = [v for v in range(dyn.index.graph.n) if v not in dyn.landmarks]
    faulted = succeeded = 0
    for nth in (1, 2, 5):
        with fail_at_label_write(nth):
            try:
                dyn.add_landmark(candidates[0])
            except TransactionError:
                faulted += 1
            else:
                # Fault fell past the update's writes: undo and go on.
                succeeded += 1
                dyn.remove_landmark(candidates[0])
    assert faulted > 0  # UPGRADE-LMK always writes at least L(r) itself
    # Faulted transactions published nothing; only clean commits did.
    assert registry.publishes == publishes + 2 * succeeded
    assert [dyn.query(s, t) for s, t in pairs] == before


def test_threaded_recompile_publishes_after_hook_release():
    dyn, registry = make_dyn(seed=33, recompile="thread")
    pairs = all_pairs(dyn.index.graph.n)
    dyn.query(0, 1)
    gate = threading.Event()
    epoch_mod._PUBLISH_HOOK = lambda reg, task: gate.wait(timeout=10.0)
    try:
        dyn.add_landmark(0)
        assert registry.epoch_id == 1  # recompile parked at the hook
        # Queries keep serving the pinned-able old head, never blocking.
        assert [dyn.query(s, t) for s, t in pairs] == epoch_answers(
            registry.head, pairs
        )
        gate.set()
        registry._pending_thread.join(timeout=10.0)
    finally:
        epoch_mod._PUBLISH_HOOK = None
        gate.set()
    assert registry.epoch_id == 2
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )


# ----------------------------------------------------------------------
# Soaks
# ----------------------------------------------------------------------
def test_soak_1k_queries_bounded_epochs():
    """Epochs provably retire: a pin/release storm cannot grow the chain."""
    dyn, registry = make_dyn(seed=41)
    n = dyn.index.graph.n
    max_live = 0
    for i in range(1000):
        s, t = (i * 7) % n, (i * 13) % n
        with registry.acquire() as epoch:
            epoch.plan.query(s, t)
        if i % 100 == 50:
            v = (i // 100) % n
            if v not in dyn.landmarks:
                dyn.add_landmark(v)
            elif len(dyn.landmarks) > 1:
                dyn.remove_landmark(v)
        max_live = max(max_live, registry.live_epochs)
    assert max_live <= 2  # head + at most one briefly-pinned predecessor
    assert registry.live_epochs == 1
    pairs = all_pairs(n)
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )


@pytest.mark.stress
def test_stress_threaded_readers_vs_writer():
    """Genuinely concurrent soak: readers never block, never tear.

    Readers continuously pin the head and verify every answer against
    the oracle snapshot recorded for that epoch id at publish time; the
    writer churns landmarks through transactional commits.
    """
    dyn, registry = make_dyn(seed=42)
    n = dyn.index.graph.n
    pairs = all_pairs(n)[:64]
    oracle_by_epoch = {}
    oracle_lock = threading.Lock()

    def snapshot_oracle():
        with oracle_lock:
            oracle_by_epoch[registry.epoch_id] = oracle_answers(
                dyn.index, pairs
            )

    dyn.query(0, 1)  # epoch 1
    snapshot_oracle()
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            with registry.acquire() as epoch:
                got = epoch_answers(epoch, pairs)
                with oracle_lock:
                    expected = oracle_by_epoch.get(epoch.epoch_id)
                if expected is not None and got != expected:
                    failures.append(
                        f"epoch {epoch.epoch_id}: torn read"
                    )
                    return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for i in range(60):
            v = i % n
            if v in dyn.landmarks:
                if len(dyn.landmarks) > 1:
                    dyn.remove_landmark(v)
            else:
                dyn.add_landmark(v)
            snapshot_oracle()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
    assert not failures, failures[:3]
    assert registry.live_epochs <= 2
    assert [dyn.query(s, t) for s, t in pairs] == oracle_answers(
        dyn.index, pairs
    )
