"""Regression coverage for the (closed) float-weight minimality gap.

On float-weighted graphs, summed path weights that are mathematically
equal can differ in the last bit depending on summation order.  The
dynamic algorithms' pruning used to compare with a strict ``<``, so
``UPGRADE-LMK`` occasionally *kept* a label entry that a from-scratch
``BUILDHCL`` pruned.  The pruning and tie tests are now tolerance-aware
(:mod:`repro.tolerance`), so upgrade and rebuild make identical
keep/prune decisions — the seeds below, found by exhaustive search as the
historical diverging cases, now agree entry-for-entry and satisfy
``structurally_equal`` under its default tolerance.  (Individual highway
cells may still differ by 1 ulp — composition vs. edge accumulation round
differently — which is exactly what the tolerant default absorbs.)
"""

import random

import pytest

from repro.core import build_hcl, upgrade_landmark
from repro.graphs import Graph, erdos_renyi

# (seed, expected_n) pairs where upgrade-vs-rebuild historically diverged
# under strict-< pruning.  Kept as pinned regression scenarios.
DIVERGING_SEEDS = [(5, 31), (7, 22), (8, 19), (9, 26), (10, 30)]


def float_graph(seed: int, n_lo: int = 12, n_hi: int = 40) -> Graph:
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    base = erdos_renyi(n, rng.uniform(2.0, 5.0), seed=seed)
    g = Graph(base.n, unweighted=False)
    for u, v, _ in base.edges():
        g.add_edge(u, v, rng.uniform(0.1, 10.0))
    return g


def upgrade_scenario(seed: int):
    """Build the (upgraded, rebuilt) index pair for one seed."""
    g = float_graph(seed)
    rng = random.Random(seed + 10**6)
    verts = list(range(g.n))
    rng.shuffle(verts)
    k = rng.randint(2, max(2, g.n // 4))
    initial, new = verts[:k], verts[k]
    upgraded = build_hcl(g, sorted(initial))
    upgrade_landmark(upgraded, new)
    rebuilt = build_hcl(g, sorted(initial + [new]))
    return g, upgraded, rebuilt


@pytest.mark.parametrize("seed,n", DIVERGING_SEEDS)
class TestFloatUpgrade:
    def test_matches_rebuild_within_tolerance(self, seed, n):
        g, upgraded, rebuilt = upgrade_scenario(seed)
        assert g.n == n  # the scenario is the one the search found
        assert upgraded.structurally_equal(rebuilt, rel_tol=1e-9)
        assert rebuilt.structurally_equal(upgraded, rel_tol=1e-9)

    def test_matches_rebuild_exactly(self, seed, n):
        # Formerly a strict xfail: strict-< pruning kept entries a fresh
        # BUILDHCL pruned.  With tolerance-aware pruning the keep/prune
        # decisions coincide, so the default comparison passes and every
        # vertex is covered by the same landmark set on both sides.
        _, upgraded, rebuilt = upgrade_scenario(seed)
        assert upgraded.structurally_equal(rebuilt)
        for v in range(upgraded.graph.n):
            assert set(upgraded.labeling.label(v)) == set(
                rebuilt.labeling.label(v)
            )

    def test_queries_stay_exact_despite_extra_entries(self, seed, n):
        # The surplus entries are true distances: every landmark-constrained
        # answer of the upgraded index equals the rebuilt index's.
        g, upgraded, rebuilt = upgrade_scenario(seed)
        rng = random.Random(seed)
        for _ in range(50):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            assert upgraded.query(s, t) == pytest.approx(
                rebuilt.query(s, t), rel=1e-9
            )


class TestToleranceModeIsNotALoophole:
    def test_wrong_distance_still_fails(self):
        g, upgraded, rebuilt = upgrade_scenario(5)
        v = next(
            v for v in range(g.n)
            if not rebuilt.is_landmark(v) and rebuilt.labeling.label(v)
        )
        r, d = next(iter(rebuilt.labeling.label(v).items()))
        rebuilt.labeling.add_entry(v, r, d * 1.5)  # genuinely wrong entry
        assert not upgraded.structurally_equal(rebuilt, rel_tol=1e-9)

    def test_different_landmark_sets_fail(self):
        g = float_graph(5)
        a = build_hcl(g, [0, 1])
        b = build_hcl(g, [0, 2])
        assert not a.structurally_equal(b, rel_tol=1e-9)

    def test_exact_mode_unchanged_for_identical_indexes(self):
        g = float_graph(7)
        a = build_hcl(g, [0, 1, 2])
        b = build_hcl(g, [2, 1, 0])
        assert a.structurally_equal(b, rel_tol=0.0)  # bitwise opt-in
        assert a.structurally_equal(b)
        assert a.structurally_equal(b, rel_tol=1e-9)
