"""Tests for weight-assignment helpers."""

import pytest

from repro.graphs import assign_uniform_integer_weights, erdos_renyi, unit_weights


class TestAssignWeights:
    def test_weights_in_range(self):
        base = erdos_renyi(40, 3.0, seed=0)
        g = assign_uniform_integer_weights(base, 2, 5, seed=1)
        assert not g.unweighted
        for _, _, w in g.edges():
            assert 2 <= w <= 5
            assert w == int(w)

    def test_topology_preserved(self):
        base = erdos_renyi(40, 3.0, seed=0)
        g = assign_uniform_integer_weights(base, 1, 9, seed=1)
        assert {(u, v) for u, v, _ in g.edges()} == {
            (u, v) for u, v, _ in base.edges()
        }

    def test_deterministic(self):
        base = erdos_renyi(20, 2.0, seed=0)
        a = assign_uniform_integer_weights(base, 1, 9, seed=7)
        b = assign_uniform_integer_weights(base, 1, 9, seed=7)
        assert a == b

    def test_invalid_range(self):
        base = erdos_renyi(10, 2.0, seed=0)
        with pytest.raises(ValueError):
            assign_uniform_integer_weights(base, 0, 5)
        with pytest.raises(ValueError):
            assign_uniform_integer_weights(base, 5, 2)


class TestUnitWeights:
    def test_flattens_to_unweighted(self):
        base = erdos_renyi(20, 2.0, seed=0)
        w = assign_uniform_integer_weights(base, 1, 9, seed=1)
        u = unit_weights(w)
        assert u.unweighted
        assert all(weight == 1.0 for _, _, weight in u.edges())
        assert u.m == w.m
