"""Tests for multi-category landmark sets (future-work iv)."""

import itertools
import math
import random

import pytest

from conftest import path_graph, random_graph
from repro.core import assert_canonical
from repro.core.multicategory import MultiCategoryHCL
from repro.errors import DatasetError, LandmarkError
from repro.graphs import single_source_distances


def brute_force_ordered(g, s, t, stages):
    """min over member tuples of d(s,r1)+d(r1,r2)+...+d(rk,t)."""
    dist = {}

    def d(a, b):
        if a not in dist:
            dist[a] = single_source_distances(g, a)
        return dist[a][b]

    best = math.inf
    for combo in itertools.product(*stages):
        total = d(s, combo[0])
        for a, b in zip(combo, combo[1:]):
            total += d(a, b)
        total += d(combo[-1], t)
        best = min(best, total)
    return best


class TestOrderedQueries:
    def test_docstring_example(self):
        from repro.graphs import Graph

        g = Graph(6)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
            g.add_edge(u, v, 1.0)
        mc = MultiCategoryHCL(g, {"fuel": [2], "inspection": [4]})
        assert mc.ordered_category_distance(0, 5, ["fuel", "inspection"]) == 5.0
        assert mc.ordered_category_distance(0, 5, ["inspection", "fuel"]) == 9.0

    def test_empty_order_is_plain_distance(self):
        g = path_graph(4)
        mc = MultiCategoryHCL(g, {"a": [1]})
        assert mc.ordered_category_distance(0, 3, []) == 3.0

    def test_empty_category_is_inf(self):
        g = path_graph(4)
        mc = MultiCategoryHCL(g, {"a": [1]})
        mc.add_category("b")
        assert mc.ordered_category_distance(0, 3, ["b"]) == math.inf

    def test_single_category_equals_beer_distance(self):
        g = random_graph(17, n_lo=10, n_hi=20)
        rng = random.Random(1)
        members = sorted(rng.sample(range(g.n), 3))
        mc = MultiCategoryHCL(g, {"bar": members})
        for _ in range(10):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            want = brute_force_ordered(g, s, t, [members])
            assert mc.any_category_distance(s, t, "bar") == want

    @pytest.mark.parametrize("seed", range(5))
    def test_two_ordered_categories_vs_bruteforce(self, seed):
        g = random_graph(seed, n_lo=10, n_hi=18)
        rng = random.Random(seed)
        pool = list(range(g.n))
        rng.shuffle(pool)
        cat_a = sorted(pool[:3])
        cat_b = sorted(pool[3:6])
        mc = MultiCategoryHCL(g, {"A": cat_a, "B": cat_b})
        for _ in range(8):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            want = brute_force_ordered(g, s, t, [cat_a, cat_b])
            assert mc.ordered_category_distance(s, t, ["A", "B"]) == want

    def test_three_stage_chain(self):
        g = path_graph(9)
        mc = MultiCategoryHCL(g, {"x": [2], "y": [4], "z": [6]})
        assert mc.ordered_category_distance(0, 8, ["x", "y", "z"]) == 8.0
        assert mc.ordered_category_distance(0, 8, ["z", "x", "y"]) == 16.0

    def test_shared_member_can_serve_consecutive_categories(self):
        g = path_graph(5)
        mc = MultiCategoryHCL(g, {"a": [2], "b": [2]})
        assert mc.ordered_category_distance(0, 4, ["a", "b"]) == 4.0


class TestMembershipDynamics:
    def test_union_landmarks(self):
        g = path_graph(6)
        mc = MultiCategoryHCL(g, {"a": [1, 2], "b": [2, 4]})
        assert mc.landmarks == {1, 2, 4}

    def test_add_member_promotes(self):
        g = path_graph(6)
        mc = MultiCategoryHCL(g, {"a": [1]})
        mc.add_member("a", 4)
        assert mc.landmarks == {1, 4}
        assert_canonical(mc._dyn.index)

    def test_remove_member_demotes_only_when_last(self):
        g = path_graph(6)
        mc = MultiCategoryHCL(g, {"a": [2], "b": [2]})
        mc.remove_member("a", 2)
        assert mc.landmarks == {2}  # still in category b
        mc.remove_member("b", 2)
        assert mc.landmarks == set()
        assert_canonical(mc._dyn.index)

    def test_membership_errors(self):
        g = path_graph(4)
        mc = MultiCategoryHCL(g, {"a": [1]})
        with pytest.raises(LandmarkError):
            mc.add_member("a", 1)
        with pytest.raises(LandmarkError):
            mc.remove_member("a", 0)
        with pytest.raises(DatasetError):
            mc.add_member("nope", 0)
        with pytest.raises(DatasetError):
            mc.add_category("a")
        with pytest.raises(LandmarkError):
            MultiCategoryHCL(g, {"a": [99]})

    def test_queries_track_membership_churn(self):
        g = path_graph(9)
        mc = MultiCategoryHCL(g, {"stop": [7]})
        assert mc.ordered_category_distance(0, 8, ["stop"]) == 8.0
        mc.add_member("stop", 1)
        assert mc.ordered_category_distance(0, 8, ["stop"]) == 8.0
        mc.remove_member("stop", 7)
        # only member is now 1: 0 -> 1 -> 8
        assert mc.ordered_category_distance(0, 8, ["stop"]) == 8.0
        mc.remove_member("stop", 1)
        assert mc.ordered_category_distance(0, 8, ["stop"]) == math.inf

    def test_categories_snapshot_is_copy(self):
        g = path_graph(4)
        mc = MultiCategoryHCL(g, {"a": [1]})
        snap = mc.categories
        snap["a"].add(3)
        assert mc.categories == {"a": {1}}
