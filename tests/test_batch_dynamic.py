"""Differential tests for batch-dynamic maintenance (``apply_batch``).

The batch engine must be *merge-invariant*: whatever mix of landmark swaps
and edge-weight updates one batch carries, the committed index must equal —
bitwise, on integer-weighted graphs — both the sequential replay through
the seed single-update algorithms (``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` /
``topology.set_edge_weight``) and a from-scratch rebuild over the final
``(G, R)``.  The service-level tests pin the PR's durability contract:
exactly one WAL ``BATCH`` record and exactly one epoch publish per batch,
whole-batch rollback (including edge weights) on any mid-batch failure,
and epoch-pinned readers that keep their snapshot across the commit.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import grid_graph, path_graph, random_graph
from repro import obs
from repro.budget import Budget
from repro.core import DynamicHCL, build_hcl
from repro.core import batch as batch_mod
from repro.core.batch import EdgeUpdate, apply_batch, batch_reconfigure
from repro.core.topology import FullyDynamicHCL
from repro.errors import DeadlineExceeded, TransactionError
from repro.service import HCLService
from repro.shard import ShardedService
from strategies import graph_with_landmarks


def _plan_batch(g, landmarks, seed, with_edges=True):
    """A reproducible mixed batch against ``(g, landmarks)``.

    Picks adds from the non-landmarks, removes from the landmarks (always
    leaving at least one), and — on weighted graphs — integer reweights of
    existing edges, so dynamic-vs-rebuild comparisons stay bitwise.
    """
    rng = random.Random(seed)
    pool = sorted(set(range(g.n)) - set(landmarks))
    adds = rng.sample(pool, min(len(pool), rng.randint(0, 3)))
    removable = sorted(landmarks)
    n_rm = rng.randint(0, min(len(removable) - 1, 3))
    removes = rng.sample(removable, n_rm)
    edges = []
    if with_edges and not g.unweighted:
        seen = set()
        for u, v, w in g.edges():
            if rng.random() < 0.25 and (u, v) not in seen:
                seen.add((u, v))
                new = float(rng.randint(1, 9))
                if new != w:
                    edges.append((u, v, new))
            if len(edges) == 3:
                break
    return adds, removes, edges


def _sequential_replay(g, landmarks, adds, removes, edges):
    """The seed path: one single-operation update per batch element."""
    dyn = FullyDynamicHCL(build_hcl(g.copy(), sorted(landmarks)))
    for v in adds:
        dyn.add_landmark(v)
    for v in removes:
        dyn.remove_landmark(v)
    for u, v, w in edges:
        dyn.set_edge_weight(u, v, w)
    return dyn.index


class TestDifferential:
    """apply_batch == sequential replay == full rebuild, bitwise."""

    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_batch_matches_sequential_and_rebuild(self, seed):
        g = random_graph(seed * 101 + 7, n_lo=12, n_hi=34)
        rng = random.Random(seed)
        landmarks = sorted(rng.sample(range(g.n), max(2, g.n // 5)))
        adds, removes, edges = _plan_batch(g, landmarks, seed=seed + 1)
        sequential = _sequential_replay(g, landmarks, adds, removes, edges)

        index = build_hcl(g, landmarks)
        result = apply_batch(
            index, adds=adds, removes=removes, edge_updates=edges
        )
        assert result.applied_adds == len(adds)
        assert result.applied_removes == len(removes)
        assert result.applied_edges == len(edges)
        assert index.structurally_equal(sequential, rel_tol=0.0)
        rebuilt = build_hcl(g, sorted(index.landmarks))
        assert index.structurally_equal(rebuilt, rel_tol=0.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_edge_only_batch(self, seed):
        g = random_graph(seed * 13 + 5, n_lo=10, n_hi=28, weighted=True)
        rng = random.Random(seed)
        landmarks = sorted(rng.sample(range(g.n), 3))
        _, _, edges = _plan_batch(g, landmarks, seed=seed + 2)
        if not edges:
            edges = [next(iter(g.edges()))[:2] + (9.0,)]
        sequential = _sequential_replay(g, landmarks, [], [], edges)
        index = build_hcl(g, landmarks)
        apply_batch(index, edge_updates=edges)
        assert index.structurally_equal(sequential, rel_tol=0.0)

    @settings(max_examples=40, deadline=None)
    @given(gl=graph_with_landmarks(), seed=st.integers(0, 2**20))
    def test_hypothesis_mixes_are_order_invariant(self, gl, seed):
        g, landmarks = gl
        adds, removes, edges = _plan_batch(g, landmarks, seed=seed)
        sequential = _sequential_replay(g, landmarks, adds, removes, edges)
        index = build_hcl(g, landmarks)
        apply_batch(index, adds=adds, removes=removes, edge_updates=edges)
        assert index.structurally_equal(sequential, rel_tol=0.0)
        assert index.structurally_equal(
            build_hcl(g, sorted(index.landmarks)), rel_tol=0.0
        )

    def test_rebuild_strategy_adopts_in_place(self):
        g = random_graph(91, n_lo=14, n_hi=24)
        index = build_hcl(g, [0, 1])
        highway, labeling = index.highway, index.labeling
        adds = [v for v in range(2, g.n) if v % 3 == 0][:5]
        result = apply_batch(
            index, adds=adds, removes=[0], rebuild_factor=0.0
        )
        assert result.strategy == "rebuild"
        assert index.highway is highway and index.labeling is labeling
        assert index.structurally_equal(
            build_hcl(g, sorted(index.landmarks)), rel_tol=0.0
        )


class TestRollback:
    """One transaction: any mid-batch failure restores everything."""

    @staticmethod
    def _weights(g):
        return {(u, v): w for u, v, w in g.edges()}

    def test_phase_hook_failure_rolls_back_whole_batch(self):
        g = random_graph(17, n_lo=12, n_hi=20, weighted=True)
        index = build_hcl(g, [0, 1, 2])
        pristine = build_hcl(g.copy(), [0, 1, 2])
        before = self._weights(g)
        u, v, w = next(iter(g.edges()))

        def boom(phase):
            if phase == "edges":
                raise RuntimeError("mid-batch crash")

        batch_mod._PHASE_HOOK = boom
        try:
            with pytest.raises(TransactionError):
                apply_batch(
                    index,
                    adds=[g.n - 1],
                    removes=[0],
                    edge_updates=[(u, v, w + 3.0)],
                )
        finally:
            batch_mod._PHASE_HOOK = None
        assert index.landmarks == {0, 1, 2}
        assert index.structurally_equal(pristine, rel_tol=0.0)
        assert self._weights(g) == before

    def test_budget_expiry_cancels_and_restores_edge_weights(self):
        g = random_graph(23, n_lo=14, n_hi=22, weighted=True)
        index = build_hcl(g, [0, 1])
        pristine = build_hcl(g.copy(), [0, 1])
        before = self._weights(g)
        u, v, w = next(iter(g.edges()))
        with pytest.raises(DeadlineExceeded):
            apply_batch(
                index,
                adds=[g.n - 1, g.n - 2],
                removes=[0],
                edge_updates=[(u, v, w + 2.0)],
                budget=Budget(max_settled=1),
            )
        assert index.structurally_equal(pristine, rel_tol=0.0)
        assert self._weights(g) == before

    def test_budget_expiry_appends_no_wal_record(self, tmp_path):
        g = grid_graph(4, 5)
        svc = HCLService.build(g, [0, 19], wal=tmp_path / "b.wal")
        with pytest.raises(DeadlineExceeded):
            svc.submit_batch_reconfigure(
                adds=[7, 12], removes=[0], budget=Budget(max_settled=1)
            )
        assert len(svc.wal.scan().records) == 0
        assert svc.landmarks == {0, 19}


class TestServiceDurability:
    """One WAL record, one epoch publish, full recovery — per batch."""

    def test_exactly_one_wal_record_and_one_publish(self, tmp_path):
        g = random_graph(31, n_lo=16, n_hi=26, weighted=True)
        svc = HCLService.build(g, [0, 1, 2], wal=tmp_path / "one.wal")
        registry = svc.enable_plan_epochs()
        svc.query_batch([(0, g.n - 1)])  # materialize the first epoch
        publishes = registry.summary()["publishes"]
        u, v, w = next(iter(g.edges()))
        result = svc.submit_batch_reconfigure(
            adds=[g.n - 1], removes=[0], edge_updates=[(u, v, w + 1.0)]
        )
        assert result.ops == 3
        records = svc.wal.scan().records
        assert len(records) == 1
        assert records[0].kind == "batch"
        assert records[0].batch.adds == (g.n - 1,)
        assert records[0].batch.removes == (0,)
        assert records[0].batch.edge_updates == ((u, v, w + 1.0),)
        assert registry.summary()["publishes"] == publishes + 1
        assert svc.health()["batches"] == 1

    def test_batch_recovery_replays_atomically(self, tmp_path):
        g = random_graph(37, n_lo=16, n_hi=26, weighted=True)
        ckpt, wal = tmp_path / "c.ckpt", tmp_path / "c.wal"
        svc = HCLService.build(g, [0, 1, 2], wal=wal)
        svc.checkpoint(ckpt)
        g_ckpt = g.copy()  # recover() needs the checkpoint-time graph
        u, v, w = next(iter(g.edges()))
        svc.submit_batch_reconfigure(
            adds=[g.n - 1], removes=[1], edge_updates=[(u, v, w + 2.0)]
        )
        report = HCLService.recover(g_ckpt, ckpt, wal)
        recovered = report.service._dyn.index
        assert recovered.landmarks == svc.landmarks
        assert recovered.structurally_equal(
            build_hcl(g_ckpt, sorted(svc.landmarks)), rel_tol=0.0
        )

    def test_fleet_gets_single_broadcast_per_batch(self):
        g = grid_graph(5, 6)
        dyn = DynamicHCL.build(g, [0, 29])
        registry = dyn.enable_plan_epochs()
        with ShardedService.from_registry(registry, nshards=2) as fleet:
            assert fleet.health()["fleet.publishes"] == 1
            dyn.apply_batch(adds=[7, 14], removes=[0])  # σ=3, one publish
            assert fleet._stale
            assert fleet.refresh()
            health = fleet.health()
            assert health["fleet.publishes"] == 2
            assert health["version"] == 2
            s, t = 3, 27
            assert fleet.query(s, t) == dyn.query(s, t)


class TestEpochPinnedReaders:
    def test_pinned_reader_survives_batch_commit(self):
        g = random_graph(43, n_lo=16, n_hi=26, weighted=True)
        dyn = DynamicHCL.build(g, [0, 1])
        registry = dyn.enable_plan_epochs()
        dyn.query(0, g.n - 1)  # materialize the first epoch
        pairs = [(0, g.n - 1), (1, g.n - 2), (2, 5)]
        epoch = registry.acquire()
        try:
            pinned_before = [epoch.plan.query(s, t) for s, t in pairs]
            u, v, w = next(iter(g.edges()))
            dyn.apply_batch(
                adds=[g.n - 1], removes=[0], edge_updates=[(u, v, w + 4.0)]
            )
            assert epoch.retired
            assert registry.live_epochs == 2
            pinned_after = [epoch.plan.query(s, t) for s, t in pairs]
            assert pinned_after == pinned_before  # bitwise-stable snapshot
            head = registry.head_plan()
            assert [head.query(s, t) for s, t in pairs] == [
                dyn.query(s, t) for s, t in pairs
            ]
        finally:
            epoch.release()
        assert registry.live_epochs == 1  # drained once the pin dropped


class TestCountersAndDeprecation:
    def test_batch_work_counters_aggregate_in_update_log(self):
        g = random_graph(53, n_lo=14, n_hi=24)
        dyn = DynamicHCL.build(g, [0, 1, 2])
        result = dyn.apply_batch(adds=[g.n - 1], removes=[0])
        assert result.settled > 0 and result.swept > 0
        assert result.mean_work > 0.0
        log = dyn.log
        assert log.count == 1
        assert log.settled == result.settled
        assert log.swept == result.swept
        assert log.pruned == result.pruned

    def test_obs_counts_one_batch(self):
        g = path_graph(10)
        index = build_hcl(g, [0, 9])
        with obs.observed() as reg:
            apply_batch(index, adds=[4], removes=[9])
        counters = reg.snapshot()["counters"]
        assert counters["batch.applies"] == 1
        assert counters["batch.ops"] == 2

    def test_batch_reconfigure_is_deprecated_but_delegates(self):
        index = build_hcl(path_graph(8), [0, 7])
        with pytest.warns(DeprecationWarning, match="apply_batch"):
            result = batch_reconfigure(index, add=[3], remove=[7])
        assert result.applied_adds == 1 and result.applied_removes == 1
        assert index.landmarks == {0, 3}
        assert index.structurally_equal(
            build_hcl(index.graph, [0, 3]), rel_tol=0.0
        )


@pytest.mark.chaos
class TestTornWalChaos:
    """Nightly lane: torn BATCH tails must never partially replay."""

    @pytest.mark.parametrize("cut", [1, 5, 9, 13, 16, 20, -1])
    def test_torn_batch_tail_replays_committed_prefix_only(
        self, tmp_path, cut
    ):
        g = random_graph(61, n_lo=16, n_hi=26, weighted=True)
        ckpt, wal = tmp_path / "t.ckpt", tmp_path / "t.wal"
        svc = HCLService.build(g, [0, 1, 2], wal=wal)
        svc.checkpoint(ckpt)
        g_ckpt = g.copy()
        u, v, w = next(iter(g.edges()))
        svc.submit_batch_reconfigure(adds=[g.n - 1], removes=[2])
        after_first = sorted(svc.landmarks)
        size_one = wal.stat().st_size
        svc.submit_batch_reconfigure(
            adds=[g.n - 2], edge_updates=[(u, v, w + 3.0)]
        )

        # Tear the second BATCH record: `cut` bytes into it (header,
        # crc or payload), or one byte short of complete (-1).
        blob = wal.read_bytes()
        keep = size_one + cut if cut >= 0 else len(blob) - 1
        wal.write_bytes(blob[:keep])

        report = HCLService.recover(g_ckpt, ckpt, wal)
        recovered = report.service._dyn.index
        assert sorted(recovered.landmarks) == after_first
        assert recovered.structurally_equal(
            build_hcl(g_ckpt, after_first), rel_tol=0.0
        )
