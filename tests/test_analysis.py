"""Tests for graph analysis utilities."""

from conftest import cycle_graph, grid_graph, path_graph
from repro.graphs import Graph, barabasi_albert
from repro.graphs.analysis import (
    connected_components,
    degree_histogram,
    double_sweep_diameter,
    is_connected,
    largest_component,
    profile_graph,
)


class TestComponents:
    def test_connected_graph_is_one_component(self):
        assert len(connected_components(cycle_graph(6))) == 1
        assert is_connected(cycle_graph(6))

    def test_components_sorted_by_size(self):
        g = Graph(7, unweighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 4, 1.0)
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1, 1]
        assert sorted(largest_component(g)) == [0, 1, 2]
        assert not is_connected(g)

    def test_empty_graph(self):
        assert connected_components(Graph(0)) == []
        assert is_connected(Graph(0))
        assert largest_component(Graph(0)) == []


class TestDegreeHistogram:
    def test_path(self):
        assert degree_histogram(path_graph(4)) == {1: 2, 2: 2}

    def test_cycle(self):
        assert degree_histogram(cycle_graph(5)) == {2: 5}


class TestDiameter:
    def test_path_diameter_is_exact(self):
        assert double_sweep_diameter(path_graph(9)) == 8.0

    def test_cycle_lower_bound(self):
        # exact diameter of C_10 is 5; double sweep finds it
        assert double_sweep_diameter(cycle_graph(10)) == 5.0

    def test_grid(self):
        assert double_sweep_diameter(grid_graph(4, 5)) == 7.0

    def test_weighted(self):
        g = path_graph(3, weights=[2.0, 5.0])
        assert double_sweep_diameter(g) == 7.0

    def test_empty(self):
        assert double_sweep_diameter(Graph(0)) == 0.0


class TestProfile:
    def test_profile_fields(self):
        g = barabasi_albert(80, 2, seed=1)
        profile = profile_graph(g)
        assert profile.n == 80
        assert profile.m == g.m
        assert profile.components == 1
        assert profile.max_degree >= profile.average_degree
        assert profile.diameter_lower_bound > 0
        assert not profile.weighted

    def test_profile_weighted_flag(self):
        g = path_graph(3, weights=[1.0, 2.0])
        assert profile_graph(g).weighted
