"""FleetSupervisor: heartbeats, hang detection, backoff-damped repair.

Everything in this file is FakeClock-driven — no real sleeps, no real
background thread (the thread path gets one smoke test).  The stub fleet
scripts replica behavior per tick; the real-fleet tests at the bottom
prove the same arcs against live worker processes.
"""

from __future__ import annotations

import pytest

from conftest import random_graph
from repro.core import build_hcl, select_landmarks
from repro.obs import MetricsRegistry
from repro.retry import BackoffPolicy
from repro.shard import FleetSupervisor, ShardedService
from repro.shard.replication import (
    ReplicaCallError,
    ReplicaDown,
    ReplicaTimeout,
)
from repro.testing import FakeClock, HeartbeatFault, drop_heartbeats


# ----------------------------------------------------------------------
# Scriptable stand-ins for the fleet surface the supervisor consumes
# ----------------------------------------------------------------------
class StubReplica:
    """Heartbeat behavior scripted per tick: "ok" | "timeout" | "error"."""

    def __init__(self, shard_id, replica_id):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.alive = True
        self.behavior = "ok"
        self.pings = 0

    def call(self, op, payload, timeout):
        assert op == "ping"
        self.pings += 1
        if not self.alive:
            raise ReplicaDown(f"stub {self.shard_id}.{self.replica_id} down")
        if self.behavior == "timeout":
            raise ReplicaTimeout("stub heartbeat timeout")
        if self.behavior == "error":
            raise ReplicaCallError("stub error reply")
        return "pong"

    def mark_dead(self):
        self.alive = False


class StubSet:
    def __init__(self, shard_id, nreplicas):
        self.shard_id = shard_id
        self.replicas = [StubReplica(shard_id, r) for r in range(nreplicas)]

    def alive_count(self):
        return sum(1 for r in self.replicas if r.alive)


class StubFleet:
    """Minimal ShardedService facade: replica_sets + restart_replica."""

    def __init__(self, nshards=2, rf=2, restart_ok=True):
        self.rpc_timeout = 0.25
        self.registry = MetricsRegistry()
        self.replica_sets = tuple(StubSet(s, rf) for s in range(nshards))
        self.restart_ok = restart_ok
        self.restarted = []  # (shard, replica) in restart order
        self.supervisor = None

    def attach_supervisor(self, supervisor):
        self.supervisor = supervisor

    def restart_replica(self, rset, replica=None):
        target = replica
        if target is None:
            target = next(
                (r for r in rset.replicas if not r.alive), None
            )
        if target is None or self.restart_ok is False:
            return False
        self.restarted.append((rset.shard_id, target.replica_id))
        target.alive = True
        target.behavior = "ok"
        return True


def supervised(fleet, clock=None, **kwargs):
    kwargs.setdefault("period", 1.0)
    kwargs.setdefault("hang_ticks", 3)
    kwargs.setdefault("hysteresis_ticks", 2)
    kwargs.setdefault(
        "restart_backoff",
        BackoffPolicy(base_delay=4.0, max_delay=32.0, jitter=0.0),
    )
    return FleetSupervisor(
        fleet, clock=clock if clock is not None else FakeClock(), **kwargs
    )


def count(sup, name):
    return sup.registry.counter(f"supervisor.{name}").value


# ----------------------------------------------------------------------
# Heartbeats and hang detection (stub fleet, zero real time)
# ----------------------------------------------------------------------
class TestHeartbeats:
    def test_healthy_fleet_converges_after_hysteresis(self):
        fleet = StubFleet()
        sup = supervised(fleet)
        assert sup.status == "recovering"  # no verdict before any tick
        sup.run(1)
        assert sup.status == "recovering"  # 1 clean tick < hysteresis 2
        sup.run(1)
        assert sup.status == "ok" and sup.converged
        assert count(sup, "pings") == 8  # 4 replicas x 2 ticks
        assert count(sup, "ping_timeouts") == 0
        assert fleet.restarted == []

    def test_hung_worker_declared_after_hang_ticks_then_restarted(self):
        fleet = StubFleet()
        victim = fleet.replica_sets[0].replicas[1]
        victim.behavior = "timeout"
        sup = supervised(fleet)
        sup.run(2)
        # Two misses: still just slow, not hung — no restart yet.
        assert victim.alive and fleet.restarted == []
        assert count(sup, "ping_timeouts") == 2
        state = sup.run(1)  # third consecutive miss: hung
        assert count(sup, "hangs_detected") == 1
        # Same tick's repair pass restarted it (epoch re-broadcast in
        # the real fleet) and the stub heals the behavior.
        assert fleet.restarted == [(0, 1)]
        assert count(sup, "restarts") == 1
        assert victim.alive
        assert state["status"] == "recovering"  # hysteresis holds it
        sup.run(2)
        assert sup.status == "ok"

    def test_recovery_before_deadline_is_not_restarted(self):
        """A worker that answers again before ``hang_ticks`` consecutive
        misses keeps its process — the hang deadline forgives blips."""
        fleet = StubFleet()
        fault = HeartbeatFault(shard=0, replica=0, ticks=(0, 1))
        sup = supervised(fleet)  # hang_ticks=3 > the 2-tick drop window
        with drop_heartbeats(fault):
            sup.run(4)
        assert count(sup, "ping_timeouts") == 2
        assert count(sup, "hangs_detected") == 0
        assert count(sup, "restarts") == 0
        assert fleet.restarted == []
        assert fleet.replica_sets[0].replicas[0].alive
        assert sup.status == "ok"

    def test_miss_counter_resets_on_success(self):
        """Misses must be *consecutive*: ok-pings between timeouts reset
        the hang countdown, so intermittent slowness never kills."""
        fleet = StubFleet(nshards=1, rf=1)
        fault = HeartbeatFault(shard=0, ticks=(0, 2, 4, 6, 8))  # every other
        sup = supervised(fleet)
        with drop_heartbeats(fault):
            sup.run(10)
        assert count(sup, "ping_timeouts") == 5
        assert count(sup, "hangs_detected") == 0
        assert fleet.restarted == []

    def test_error_reply_counts_as_responsive(self):
        fleet = StubFleet(nshards=1, rf=1)
        fleet.replica_sets[0].replicas[0].behavior = "error"
        sup = supervised(fleet)
        sup.run(3)
        assert count(sup, "ping_errors") == 3
        assert count(sup, "ping_timeouts") == 0
        assert count(sup, "hangs_detected") == 0
        assert sup.status == "ok"

    def test_dead_replica_detected_out_of_band_and_repaired(self):
        """A replica that dies *between queries* is found by the
        watchdog, not by the next unlucky request."""
        fleet = StubFleet()
        fleet.replica_sets[1].replicas[0].alive = False
        sup = supervised(fleet)
        sup.run(1)
        assert fleet.restarted == [(1, 0)]
        assert count(sup, "restarts") == 1
        assert fleet.replica_sets[1].alive_count() == 2


# ----------------------------------------------------------------------
# Restart damping, forgiveness, hysteresis
# ----------------------------------------------------------------------
class TestRepairDamping:
    def test_backoff_defers_restart_storms(self):
        """A replica whose restarts keep failing is retried on the
        backoff ladder, not hammered every tick."""
        fleet = StubFleet(nshards=1, rf=2, restart_ok=False)
        fleet.replica_sets[0].replicas[0].alive = False
        clock = FakeClock()
        sup = supervised(fleet, clock=clock)  # backoff 4, 8, 16, 32
        sup.run(1)  # t=1: attempt 0 fails; next allowed at t=5
        assert count(sup, "restart_failures") == 1
        sup.run(3)  # t=2..4: inside the backoff window
        assert count(sup, "restart_failures") == 1
        assert count(sup, "restarts_deferred") == 3
        sup.run(1)  # t=5: attempt 1 fires (and fails; next at t=13)
        assert count(sup, "restart_failures") == 2
        # Now let restarts succeed: the next ladder slot heals it.
        fleet.restart_ok = True
        sup.run(7)  # t=6..12: still deferred
        assert count(sup, "restart_failures") == 2
        assert fleet.replica_sets[0].replicas[0].alive is False
        sup.run(1)  # t=13: attempt 2
        assert count(sup, "restarts") == 1
        assert fleet.replica_sets[0].replicas[0].alive
        assert sup.status == "recovering"

    def test_stable_ticks_forgive_backoff_debt(self):
        fleet = StubFleet(nshards=1, rf=1)
        replica = fleet.replica_sets[0].replicas[0]
        replica.alive = False
        sup = supervised(fleet, stable_ticks=3)
        sup.run(1)  # restart succeeds: attempts=1
        assert sup.state()["watches"]["0.0"]["restart_attempts"] == 1
        sup.run(2)  # healthy streak 2 (the restart tick pinged a corpse)
        sup.run(1)  # streak 3 == stable_ticks: debt forgiven
        watch = sup.state()["watches"]["0.0"]
        assert watch["restart_attempts"] == 0
        assert watch["healthy_streak"] >= 3

    def test_status_ranks_whole_shard_outage_unavailable(self):
        fleet = StubFleet(nshards=2, rf=2, restart_ok=False)
        for r in fleet.replica_sets[0].replicas:
            r.alive = False
        sup = supervised(fleet)
        sup.run(1)
        assert sup.status == "unavailable"
        fleet.replica_sets[0].replicas[0].alive = True
        sup.run(1)
        assert sup.status == "degraded"  # below RF but serving

    def test_state_snapshot_shape(self):
        fleet = StubFleet()
        sup = supervised(fleet)
        sup.run(2)
        state = sup.state()
        assert state["status"] == "ok"
        assert state["ticks"] == 2
        assert state["ok_streak"] == 2
        assert state["running"] is False
        assert set(state["watches"]) == {"0.0", "0.1", "1.0", "1.1"}
        for watch in state["watches"].values():
            assert watch["misses"] == 0
            assert watch["healthy_streak"] == 2

    def test_integrity_check_cadence_and_failure_counter(self):
        calls = []

        def check():
            calls.append(len(calls))
            return len(calls) != 2  # second check reports corruption

        fleet = StubFleet(nshards=1, rf=1)
        sup = supervised(fleet, integrity_check=check, integrity_every=3)
        sup.run(7)  # ticks 0..6: checks on 0, 3, 6
        assert calls == [0, 1, 2]
        assert count(sup, "integrity_checks") == 3
        assert count(sup, "integrity_failures") == 1

    def test_constructor_validation(self):
        fleet = StubFleet()
        with pytest.raises(ValueError):
            FleetSupervisor(fleet, period=0.0)
        with pytest.raises(ValueError):
            FleetSupervisor(fleet, hang_ticks=0)
        with pytest.raises(ValueError):
            FleetSupervisor(fleet, hysteresis_ticks=0)
        with pytest.raises(ValueError):
            FleetSupervisor(fleet, integrity_every=0)

    def test_run_until_ok_bounds_convergence(self):
        fleet = StubFleet()
        fleet.replica_sets[0].replicas[0].alive = False
        sup = supervised(fleet)
        spent = sup.run_until_ok(max_ticks=10)
        assert 0 < spent <= 10
        assert sup.converged
        # And the bound is a real bound: an unrepairable fleet raises.
        broken = StubFleet(nshards=1, rf=1, restart_ok=False)
        broken.replica_sets[0].replicas[0].alive = False
        sup2 = supervised(broken)
        with pytest.raises(RuntimeError, match="did not converge"):
            sup2.run_until_ok(max_ticks=3)


# ----------------------------------------------------------------------
# Against a real fleet: live workers, real restarts, health roll-in
# ----------------------------------------------------------------------
def make_plan(seed=11, n_lo=30, n_hi=60, k=4):
    g = random_graph(seed, n_lo=n_lo, n_hi=n_hi)
    lmks = select_landmarks(g, min(k, g.n), policy="degree")
    return g, build_hcl(g, lmks).compile_plan()


def sample_pairs(n, count, seed=5):
    import random as _random

    rng = _random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


class TestRealFleet:
    def test_timeout_restart_rebroadcast_healthy_arc(self):
        """The full arc against live processes: terminate a worker, let
        the watchdog (not a query) find and heal it, then prove the
        revived worker serves the re-broadcast epoch bitwise."""
        _, plan = make_plan(seed=61)
        pairs = sample_pairs(plan.n, 40, seed=13)
        oracle = [plan.query(s, t) for s, t in pairs]
        with ShardedService(
            plan, nshards=2, replication_factor=2, rpc_timeout=5.0
        ) as svc:
            with FleetSupervisor(svc, ping_timeout=5.0) as sup:
                svc._sets[0].replicas[0].terminate()
                assert svc.health()["status"] in ("recovering", "degraded")
                spent = sup.run_until_ok(max_ticks=8)
                assert spent <= 8
                health = svc.health()
                assert health["status"] == "ok"
                assert health["raw_status"] == "ok"
                assert health["supervisor"]["status"] == "ok"
                assert health["replicas_alive"] == 4
                assert sup.registry.counter("supervisor.restarts").value >= 1
                # The revived worker answers bitwise from the
                # re-broadcast plan version.
                assert svc.query_batch(pairs) == oracle

    def test_health_rollup_is_pessimistic_max(self):
        """After repair the raw verdict flips to ok instantly, but the
        rolled-up status stays at the supervisor's hysteresis-filtered
        verdict until the streak clears."""
        _, plan = make_plan(seed=67)
        with ShardedService(
            plan, nshards=2, replication_factor=2, rpc_timeout=5.0
        ) as svc:
            with FleetSupervisor(
                svc, ping_timeout=5.0, hysteresis_ticks=3
            ) as sup:
                svc._sets[1].replicas[1].terminate()
                sup.run(1)  # repair tick: replica restarted
                health = svc.health()
                assert health["raw_status"] == "ok"  # all alive again
                assert health["status"] == "recovering"  # hysteresis
                sup.run(3)
                assert svc.health()["status"] == "ok"

    def test_background_thread_smoke(self):
        """start()/stop() lifecycle — the one test allowed real time."""
        _, plan = make_plan(seed=71)
        with ShardedService(plan, nshards=1, rpc_timeout=5.0) as svc:
            sup = FleetSupervisor(svc, period=0.05, ping_timeout=5.0)
            sup.start()
            sup.start()  # idempotent
            try:
                deadline = 200
                while sup.ticks == 0 and deadline:
                    import time

                    time.sleep(0.01)
                    deadline -= 1
                assert sup.ticks > 0
                assert sup.state()["running"] is True
            finally:
                sup.stop()
                sup.stop()  # idempotent
            assert sup.state()["running"] is False

    def test_close_stops_attached_supervisor(self):
        _, plan = make_plan(seed=73)
        svc = ShardedService(plan, nshards=1, rpc_timeout=5.0)
        sup = FleetSupervisor(svc, period=0.05, ping_timeout=5.0)
        sup.start()
        svc.close()
        assert sup._thread is None  # close() stopped the watchdog
