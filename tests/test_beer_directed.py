"""Tests for the directed beer-distance oracle."""

import math
import random

import pytest

from repro.beer.directed import (
    DirectedBeerDistanceIndex,
    directed_beer_distance_baseline,
)
from repro.errors import LandmarkError, VertexError
from repro.graphs import DiGraph


def directed_cycle(n: int) -> DiGraph:
    g = DiGraph(n, unweighted=True)
    for i in range(n):
        g.add_arc(i, (i + 1) % n, 1.0)
    return g


def random_digraph(seed: int, n_lo=6, n_hi=18) -> DiGraph:
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = DiGraph(n, unweighted=(rng.random() < 0.5))
    for _ in range(rng.randint(2 * n, 4 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not any(x == v for x, _ in g.out_neighbors(u)):
            g.add_arc(u, v, 1.0 if g.unweighted else float(rng.randint(1, 5)))
    return g


class TestBasics:
    def test_doctest_scenario(self):
        oracle = DirectedBeerDistanceIndex(directed_cycle(4), beer_vertices=[2])
        assert oracle.beer_distance(0, 3) == 3.0
        assert oracle.beer_distance(3, 1) == 6.0

    def test_asymmetry(self):
        oracle = DirectedBeerDistanceIndex(directed_cycle(6), beer_vertices=[3])
        assert oracle.beer_distance(1, 4) != oracle.beer_distance(4, 1)

    def test_beer_endpoint_is_plain_distance(self):
        g = directed_cycle(5)
        oracle = DirectedBeerDistanceIndex(g, beer_vertices=[0])
        assert oracle.beer_distance(0, 3) == 3.0
        assert oracle.distance(0, 3) == 3.0

    def test_no_beer_is_inf(self):
        oracle = DirectedBeerDistanceIndex(directed_cycle(4))
        assert oracle.beer_distance(0, 2) == math.inf

    def test_validation(self):
        g = directed_cycle(4)
        with pytest.raises(VertexError):
            DirectedBeerDistanceIndex(g, beer_vertices=[9])
        with pytest.raises(LandmarkError):
            DirectedBeerDistanceIndex(g, beer_vertices=[1, 1])
        oracle = DirectedBeerDistanceIndex(g, beer_vertices=[1])
        with pytest.raises(LandmarkError):
            oracle.open_beer_vertex(1)
        with pytest.raises(LandmarkError):
            oracle.close_beer_vertex(0)
        with pytest.raises(VertexError):
            oracle.open_beer_vertex(44)


class TestDynamics:
    def test_open_close_tracks_baseline(self):
        g = directed_cycle(8)
        oracle = DirectedBeerDistanceIndex(g, beer_vertices=[0])
        baseline = directed_beer_distance_baseline(g, [0], 3, 5)
        assert oracle.beer_distance(3, 5) == baseline
        oracle.open_beer_vertex(4)
        assert oracle.beer_distance(3, 5) == 2.0
        oracle.close_beer_vertex(4)
        assert oracle.beer_distance(3, 5) == baseline
        assert oracle.beer_vertices == {0}

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_baseline_under_churn(self, seed):
        g = random_digraph(seed)
        rng = random.Random(seed)
        beer = set(rng.sample(range(g.n), max(1, g.n // 4)))
        oracle = DirectedBeerDistanceIndex(g, beer_vertices=sorted(beer))
        for _ in range(4):
            closed = [v for v in range(g.n) if v not in beer]
            if beer and (not closed or rng.random() < 0.5):
                v = rng.choice(sorted(beer))
                oracle.close_beer_vertex(v)
                beer.discard(v)
            elif closed:
                v = rng.choice(closed)
                oracle.open_beer_vertex(v)
                beer.add(v)
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            if s in beer or t in beer:
                continue
            want = directed_beer_distance_baseline(g, beer, s, t)
            assert oracle.beer_distance(s, t) == want, (s, t, sorted(beer))
