"""Direct semantic validation of label entries against networkx.

The canonical characterization says: ``(r, d) ∈ L(v)`` iff ``d = d(r, v)``
and some shortest ``r -> v`` path has no *internal* landmark.  These
property tests check that predicate entry-by-entry with networkx
enumerating all shortest paths — independent of our own search kernels, so
a systematic bias in ``flagged_single_source`` could not hide.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_graph
from repro.core import build_hcl


def to_networkx(g):
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_every_entry_is_canonical(seed):
    g = random_graph(seed, n_lo=4, n_hi=14)
    landmarks = [v for v in range(g.n) if v % 3 == 0]
    index = build_hcl(g, landmarks)
    nxg = to_networkx(g)
    lmk_set = set(landmarks)

    lengths = {
        r: nx.single_source_dijkstra_path_length(nxg, r, weight="weight")
        for r in landmarks
    }

    for v in range(g.n):
        label = index.labeling.label(v)
        if v in lmk_set:
            assert label == {v: 0.0}
            continue
        for r in landmarks:
            true_dist = lengths[r].get(v)
            if true_dist is None:
                assert r not in label
                continue
            avoiding = any(
                all(x not in lmk_set for x in path[1:-1])
                for path in nx.all_shortest_paths(nxg, r, v, weight="weight")
            )
            if avoiding:
                assert label.get(r) == true_dist, (v, r)
            else:
                assert r not in label, (v, r)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_entries_survive_update_roundtrip(seed):
    """Semantic check repeated after an upgrade+downgrade round trip."""
    import random

    from repro.core import downgrade_landmark, upgrade_landmark

    g = random_graph(seed, n_lo=4, n_hi=12)
    rng = random.Random(seed)
    landmarks = [v for v in range(g.n) if v % 3 == 1]
    if not landmarks:
        return
    index = build_hcl(g, landmarks)
    outside = [v for v in range(g.n) if v not in set(landmarks)]
    if not outside:
        return
    v = rng.choice(outside)
    upgrade_landmark(index, v)
    downgrade_landmark(index, v)

    nxg = to_networkx(g)
    lmk_set = set(landmarks)
    for u in range(g.n):
        if u in lmk_set:
            continue
        for r in landmarks:
            if not nx.has_path(nxg, r, u):
                assert r not in index.labeling.label(u)
                continue
            avoiding = any(
                all(x not in lmk_set for x in path[1:-1])
                for path in nx.all_shortest_paths(nxg, r, u, weight="weight")
            )
            assert (r in index.labeling.label(u)) == avoiding
