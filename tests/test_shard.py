"""Tier-1 tests for the sharded serving tier: partitioning, the worker
combine kernel, and :class:`~repro.shard.ShardedService` scatter-gather
(bitwise equality, epoch cutover, admission, health, lifecycle).

Fault-schedule chaos coverage (kills mid-batch, hang/slow workers) lives
in ``test_sharded_chaos.py`` under the ``chaos`` marker.
"""

import random
from bisect import bisect_right

import pytest

from conftest import grid_graph, random_graph
from repro import DynamicHCL
from repro.budget import Budget, DegradedResult
from repro.core import build_hcl, select_landmarks
from repro.errors import Overloaded, RequestError
from repro.service import AddLandmarkRequest, HCLService
from repro.shard import Partition, ShardedService, partition_plan
from repro.shard.partition import _bounds, shard_of
from repro.shard.worker import _ShardState


def make_plan(seed=11, n_lo=30, n_hi=60, k=4):
    g = random_graph(seed, n_lo=n_lo, n_hi=n_hi)
    lmks = select_landmarks(g, min(k, g.n), policy="degree")
    return g, build_hcl(g, lmks).compile_plan()


def sample_pairs(n, count, seed=5):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


# ----------------------------------------------------------------------
# Partitioning arithmetic
# ----------------------------------------------------------------------
class TestPartition:
    def test_shard_of_closed_form_matches_bisect_exhaustively(self):
        for n in (1, 2, 3, 7, 20, 66, 100, 200, 333):
            for nshards in range(1, min(n, 9) + 1):
                bounds = _bounds(n, nshards)
                assert bounds[0] == 0 and bounds[-1] == n
                for v in range(n):
                    want = bisect_right(bounds, v) - 1
                    assert shard_of(v, bounds) == want, (n, nshards, v)

    def test_slices_reassemble_the_canonical_arrays(self):
        _, plan = make_plan()
        n, k, lmk_ids, offsets, slots, dists, hw = plan.canonical_arrays()
        part = partition_plan(plan, 3, transport="pickle")
        assert isinstance(part, Partition)
        assert part.n == n and part.k == k
        # Ranges tile [0, n) contiguously and rebased offsets line up.
        got_slots, got_dists = [], []
        for sl, lo, hi in zip(part.slices, part.bounds, part.bounds[1:]):
            assert (sl.lo, sl.hi) == (lo, hi)
            assert sl.offsets[0] == 0
            assert len(sl.offsets) == sl.owned + 1
            assert sl.offsets[-1] == len(sl.slots) == len(sl.dists)
            assert sl.hw == hw  # full dense replica
            assert sl.landmark_ids == lmk_ids
            assert len(sl.row_lengths) == n  # full routing replica
            got_slots.extend(sl.slots)
            got_dists.extend(sl.dists)
        assert got_slots == list(slots)
        assert got_dists == list(dists)
        assert list(part.row_lengths) == [
            offsets[v + 1] - offsets[v] for v in range(n)
        ]

    def test_rejects_bad_shard_counts(self):
        _, plan = make_plan()
        with pytest.raises(RequestError):
            partition_plan(plan, 0)
        with pytest.raises(RequestError):
            partition_plan(plan, plan.n + 1)

    def test_holey_incremental_plan_is_densified_before_slicing(self):
        g = grid_graph(5, 6)
        dyn = DynamicHCL.build(g, [0, 5, 14, 22, 29])
        registry = dyn.enable_plan_epochs()
        dyn.query(0, 1)  # compile epoch 1
        dyn.remove_landmark(14)  # incremental patch: -1 hole in the ids
        plan = registry.head_plan()
        assert -1 in plan.landmark_ids  # precondition: actually holey
        part = partition_plan(plan, 2, transport="pickle")
        assert part.k == 4  # densified: the hole is squeezed out
        for sl in part.slices:
            assert -1 not in sl.landmark_ids
            assert len(sl.hw) == part.k * part.k
            assert all(0 <= s < part.k for s in sl.slots)


# ----------------------------------------------------------------------
# Worker combine kernel (in-process, no fleet)
# ----------------------------------------------------------------------
class TestWorkerCombine:
    def test_combine_is_bitwise_equal_to_the_plan(self):
        _, plan = make_plan(seed=13)
        part = partition_plan(plan, 2, transport="pickle")
        states = [_ShardState(sl) for sl in part.slices]
        rl = part.row_lengths
        for s, t in sample_pairs(part.n, 200, seed=2):
            if rl[s] > rl[t]:
                outer_v, inner_v = t, s
            else:
                outer_v, inner_v = s, t
            home = part.shard_of(outer_v)
            state = states[home]
            extra = None
            if not state.lo <= inner_v < state.hi:
                extra = states[part.shard_of(inner_v)].row(inner_v)
            assert state.combine(s, t, extra) == plan.query(s, t)

    def test_combine_repeated_pair_goes_hot_and_stays_bitwise(self):
        # Drive one pair past ROW_HOT_THRESHOLD so the g-row memo kicks in.
        _, plan = make_plan(seed=17)
        part = partition_plan(plan, 2, transport="pickle")
        states = [_ShardState(sl) for sl in part.slices]
        rl = part.row_lengths
        s, t = next(
            (s, t)
            for s, t in sample_pairs(part.n, 500, seed=3)
            if rl[s] and rl[t]
        )
        outer_v = t if rl[s] > rl[t] else s
        inner_v = s if outer_v == t else t
        state = states[part.shard_of(outer_v)]
        extra = None
        if not state.lo <= inner_v < state.hi:
            extra = states[part.shard_of(inner_v)].row(inner_v)
        want = plan.query(s, t)
        for _ in range(40):
            assert state.combine(s, t, extra) == want
        assert state._g_rows  # the memo actually engaged


# ----------------------------------------------------------------------
# ShardedService scatter-gather
# ----------------------------------------------------------------------
class TestShardedService:
    @pytest.mark.parametrize("nshards,rf", [(1, 1), (2, 1), (3, 2)])
    def test_batch_is_bitwise_equal_to_the_unsharded_plan(self, nshards, rf):
        _, plan = make_plan(seed=19)
        pairs = sample_pairs(plan.n, 120, seed=7)
        oracle = [plan.query(s, t) for s, t in pairs]
        with ShardedService(
            plan, nshards=nshards, replication_factor=rf, rpc_timeout=5.0
        ) as svc:
            assert svc.query_batch(pairs) == oracle
            s, t = pairs[0]
            assert svc.query(s, t) == oracle[0]

    def test_killed_replica_fails_over_and_heals(self):
        _, plan = make_plan(seed=23)
        pairs = sample_pairs(plan.n, 60, seed=9)
        oracle = [plan.query(s, t) for s, t in pairs]
        with ShardedService(
            plan, nshards=2, replication_factor=2, rpc_timeout=5.0
        ) as svc:
            svc._sets[0].replicas[0].terminate()  # simulated worker death
            assert svc.query_batch(pairs) == oracle  # failover, no gaps
            health = svc.health()  # post-batch auto-restart healed it
            assert health["replicas_alive"] == health["replicas_total"] == 4
            assert health["fleet.restarts"] >= 1
            assert svc.registry.counter("shard.0.restarts").value >= 1

    def test_exhausted_budget_degrades_instead_of_hanging(self):
        _, plan = make_plan(seed=29)
        pairs = sample_pairs(plan.n, 40, seed=11)
        with ShardedService(plan, nshards=2, rpc_timeout=5.0) as svc:
            budget = Budget(max_settled=1)  # dries up almost immediately
            got = svc.query_batch(pairs, budget)
            assert len(got) == len(pairs)
            degraded = [r for r in got if isinstance(r, DegradedResult)]
            assert degraded  # budget ran dry mid-batch
            for r in degraded:
                assert r.is_upper_bound
            assert svc.health()["fleet.degraded"] >= len(degraded)

    def test_admission_sheds_with_overloaded(self):
        _, plan = make_plan(seed=31)
        with ShardedService(plan, nshards=1, max_inflight=1) as svc:
            svc._admit()  # occupy the only slot
            try:
                with pytest.raises(Overloaded):
                    svc.query(0, 1)
                assert svc.health()["fleet.shed"] == 1
            finally:
                svc._release()
            assert svc.query(0, 1) == plan.query(0, 1)

    def test_out_of_range_pair_rejected(self):
        _, plan = make_plan(seed=37)
        with ShardedService(plan, nshards=2) as svc:
            with pytest.raises(RequestError):
                svc.query(0, plan.n)
            with pytest.raises(RequestError):
                svc.query(-1, 0)

    def test_epoch_publish_propagates_with_atomic_cutover(self):
        g = grid_graph(5, 6)
        dyn = DynamicHCL.build(g, [0, 29])
        registry = dyn.enable_plan_epochs()
        pairs = sample_pairs(g.n, 60, seed=13)
        with ShardedService.from_registry(registry, nshards=2) as svc:
            assert svc.health()["version"] == 1
            before = registry.head_plan()
            assert svc.query_batch(pairs) == [
                before.query(s, t) for s, t in pairs
            ]
            dyn.add_landmark(14)  # sync recompile publishes epoch 2
            assert svc._stale  # the publish listener fired
            after = registry.head_plan()
            assert svc.query_batch(pairs) == [
                after.query(s, t) for s, t in pairs
            ]
            health = svc.health()
            assert health["version"] == 2
            assert not health["stale"]
            assert health["fleet.publishes"] == 2

    def test_service_shard_helper_serves_the_live_index(self):
        g = grid_graph(4, 5)
        svc = HCLService.build(g, [0, 19])
        fleet = svc.shard(nshards=2)
        try:
            pairs = sample_pairs(g.n, 40, seed=17)
            assert fleet.query_batch(pairs) == [
                svc._dyn.query(s, t) for s, t in pairs
            ]
            svc.submit(AddLandmarkRequest(7))
            assert fleet.query_batch(pairs) == [
                svc._dyn.query(s, t) for s, t in pairs
            ]
            assert fleet.health()["version"] == 2
        finally:
            fleet.close()

    def test_health_shape(self):
        _, plan = make_plan(seed=41)
        with ShardedService(plan, nshards=2, replication_factor=2) as svc:
            svc.query_batch(sample_pairs(plan.n, 10, seed=19))
            health = svc.health()
            assert health["status"] == "ok"
            assert health["replicas_total"] == 4
            assert health["inflight"] == 0
            assert set(health["shards"]) == {"0", "1"}
            for snap in health["shards"].values():
                assert snap["alive"] == 2
                assert snap["breaker_open"] is False
                assert len(snap["replicas"]) == 2
                for rsnap in snap["replicas"]:
                    assert rsnap["alive"] and rsnap["pid"]
                    assert rsnap["stale_replies"] == 0
                    assert rsnap["breaker"] == "closed"
                    assert rsnap["breaker_retry_after"] == 0.0
            assert health["fleet.batches"] == 1
            assert health["fleet.queries"] == 10

    def test_close_is_idempotent_and_queries_after_close_are_rejected(self):
        _, plan = make_plan(seed=43)
        svc = ShardedService(plan, nshards=2)
        svc.close()
        svc.close()
        with pytest.raises(RequestError):
            svc.query(0, 1)

    def test_constructor_validation(self):
        _, plan = make_plan(seed=47)
        with pytest.raises(RequestError):
            ShardedService(plan, nshards=2, replication_factor=0)
        with pytest.raises(RequestError):
            ShardedService(plan, nshards=2, rpc_timeout=0.0)
        with pytest.raises(RequestError):
            ShardedService(plan, nshards=2, max_inflight=0)


# ----------------------------------------------------------------------
# Stale-reply drain bound (stubbed pipe, no processes)
# ----------------------------------------------------------------------
class _BabblingConn:
    """A pipe stand-in that answers with whatever req_ids it was fed."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)

    def poll(self, timeout):
        return bool(self.replies)

    def recv(self):
        return self.replies.pop(0)


def _stub_replica(replies):
    from repro.breaker import CircuitBreaker
    from repro.shard.replication import Replica

    replica = Replica(0, 0, CircuitBreaker())
    replica.alive = True
    replica._conn = _BabblingConn(replies)
    return replica


class TestStaleReplyDrain:
    def test_stale_replies_are_drained_counted_and_skipped(self):
        from repro.shard.replication import Replica  # noqa: F401

        # req_id will be 1; two stale replies precede the real one.
        replica = _stub_replica(
            [(-7, True, "old"), (0, True, "older"), (1, True, "fresh")]
        )
        seen = []
        replica.on_stale = lambda n: seen.append(n)
        assert replica.call("rows", None, 1.0) == "fresh"
        assert replica.stale_replies == 2
        assert seen == [1, 1]

    def test_babbling_worker_cannot_pin_the_drain_loop(self):
        """A worker feeding stale replies faster than the deadline
        drains must hit the drain bound, not spin until the timeout."""
        from repro.shard.replication import _MAX_STALE_REPLIES, ReplicaTimeout

        # Infinite babble: every reply has a wrong req_id.
        class _Endless(_BabblingConn):
            def poll(self, timeout):
                return True

            def recv(self):
                return (999, True, "stale")

        replica = _stub_replica([])
        replica._conn = _Endless([])
        with pytest.raises(ReplicaTimeout, match="babbling"):
            replica.call("rows", None, 60.0)  # deadline alone won't save us
        assert replica.stale_replies == _MAX_STALE_REPLIES
