"""Coarse scale/performance smoke tests.

Not micro-benchmarks (those live in ``benchmarks/``): these assert only
order-of-magnitude sanity with very generous bounds, so a catastrophic
regression (e.g. an accidentally quadratic update) fails the suite while
normal machine jitter cannot.
"""

import time

from repro.core import DynamicHCL, select_landmarks
from repro.workloads import make_dataset, mixed_update_sequence, random_query_pairs


def test_midsize_road_instance_end_to_end():
    graph = make_dataset("LUX", scale=0.5, seed=3)
    landmarks = select_landmarks(graph, 40, seed=3)

    start = time.perf_counter()
    dyn = DynamicHCL.build(graph, landmarks)
    t_build = time.perf_counter() - start
    assert t_build < 10.0, f"BUILDHCL blew up: {t_build:.1f}s"

    updates = mixed_update_sequence(graph.n, landmarks, seed=4)
    log = dyn.apply_sequence(updates)
    assert log.mean_seconds < t_build, "updates should beat a full rebuild"

    pairs = random_query_pairs(graph.n, 500, seed=5)
    start = time.perf_counter()
    for s, t in pairs:
        dyn.query(s, t)
    per_query = (time.perf_counter() - start) / len(pairs)
    assert per_query < 0.005, f"QUERY too slow: {per_query * 1e6:.0f} µs"


def test_update_cost_stays_sublinear_in_rebuild():
    """The paper's core claim, as a coarse regression guard."""
    graph = make_dataset("NW", scale=0.5, seed=1)
    landmarks = select_landmarks(graph, 60, seed=1)
    dyn = DynamicHCL.build(graph, landmarks)

    start = time.perf_counter()
    dyn.rebuild()
    t_build = time.perf_counter() - start

    log = dyn.apply_sequence(mixed_update_sequence(graph.n, landmarks, seed=2))
    # paper reports 1-3 orders of magnitude; demand at least 3x here
    assert log.mean_seconds * 3 < t_build, (log.mean_seconds, t_build)
