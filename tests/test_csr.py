"""Tests for the CSR graph snapshot."""

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import build_hcl
from repro.errors import GraphError
from repro.graphs import dijkstra_distances, single_source_distances
from repro.graphs.csr import CSRGraph, csr_dijkstra


class TestStructure:
    def test_neighbors_match_source_graph(self):
        g = random_graph(3)
        csr = CSRGraph(g)
        for v in g.vertices():
            assert sorted(csr.neighbors(v)) == sorted(g.neighbors(v))

    def test_degrees_and_metadata(self):
        g = cycle_graph(6)
        csr = CSRGraph(g)
        assert csr.n == 6
        assert csr.m == 6
        assert csr.unweighted
        assert all(csr.degree(v) == 2 for v in csr.vertices())
        assert csr.average_degree == pytest.approx(2.0)

    def test_memory_cells(self):
        g = path_graph(4)
        csr = CSRGraph(g)
        # offsets: n+1, targets: 2m, weights: 2m
        assert csr.memory_cells() == 5 + 6 + 6

    def test_empty_graph(self):
        from repro.graphs import Graph

        csr = CSRGraph(Graph(0))
        assert csr.n == 0
        assert csr.average_degree == 0.0


class TestSearch:
    @pytest.mark.parametrize("seed", range(6))
    def test_csr_dijkstra_matches_adjacency(self, seed):
        g = random_graph(seed)
        csr = CSRGraph(g)
        for s in range(0, g.n, 3):
            assert csr_dijkstra(csr, s) == dijkstra_distances(g, s)

    def test_out_of_range_source(self):
        csr = CSRGraph(path_graph(3))
        with pytest.raises(GraphError):
            csr_dijkstra(csr, 9)

    @pytest.mark.parametrize("seed", range(4))
    def test_kernels_accept_csr(self, seed):
        """The generic kernels consume CSR snapshots unchanged."""
        g = random_graph(seed)
        csr = CSRGraph(g)
        for s in (0, g.n - 1):
            assert single_source_distances(csr, s) == single_source_distances(g, s)


class TestBuildOnCSR:
    def test_buildhcl_accepts_csr(self):
        g = random_graph(11, n_lo=10, n_hi=20)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        via_adjacency = build_hcl(g, landmarks)
        via_csr = build_hcl(CSRGraph(g), landmarks)
        assert via_csr.highway == via_adjacency.highway
        assert via_csr.labeling == via_adjacency.labeling


class TestEmptyGraphGuard:
    """Regression: the empty graph keeps its sentinel offset (the old
    ``if self.n >= 0`` guard was dead code — always true)."""

    def test_empty_graph_arrays(self):
        from repro.graphs import Graph

        csr = CSRGraph(Graph(0))
        assert csr.n == 0 and csr.m == 0
        assert csr.memory_cells() == 1  # exactly the [0] sentinel offset
        assert list(csr.vertices()) == []
        assert csr.average_degree == 0.0

    def test_empty_graph_round_trips_through_pickle(self):
        import pickle

        from repro.graphs import Graph

        csr = pickle.loads(pickle.dumps(CSRGraph(Graph(0))))
        assert csr.n == 0
        assert csr.memory_cells() == 1


class TestFromArraysAndPickle:
    """The picklable-snapshot surface the parallel build ships to workers."""

    def test_from_arrays_round_trip(self):
        g = random_graph(5)
        csr = CSRGraph(g)
        rebuilt = CSRGraph.from_arrays(
            csr.n, csr.m, csr.unweighted,
            csr._offsets, csr._targets, csr._weights,
        )
        assert rebuilt.n == csr.n and rebuilt.m == csr.m
        for v in csr.vertices():
            assert rebuilt.neighbors(v) == csr.neighbors(v)

    def test_from_arrays_validates_shapes(self):
        from array import array

        with pytest.raises(GraphError):
            CSRGraph.from_arrays(-1, 0, True, array("l", [0]), array("l"), array("d"))
        with pytest.raises(GraphError):  # offsets must span n + 1 cells
            CSRGraph.from_arrays(2, 0, True, array("l", [0]), array("l"), array("d"))
        with pytest.raises(GraphError):  # targets must match offsets[-1]
            CSRGraph.from_arrays(
                1, 1, True, array("l", [0, 2]), array("l", [0]), array("d", [1.0])
            )
        with pytest.raises(GraphError):  # m must equal offsets[-1] / 2
            CSRGraph.from_arrays(
                2, 3, True,
                array("l", [0, 1, 2]),
                array("l", [1, 0]),
                array("d", [1.0, 1.0]),
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_pickle_preserves_structure_and_searches(self, seed):
        import pickle

        g = random_graph(seed)
        csr = CSRGraph(g)
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.unweighted == csr.unweighted
        assert clone.memory_cells() == csr.memory_cells()
        assert csr_dijkstra(clone, 0) == csr_dijkstra(csr, 0)
