"""Unit tests for the directed graph structure."""

import pytest

from repro.errors import EdgeError, VertexError, WeightError
from repro.graphs import DiGraph, Graph


class TestArcs:
    def test_arc_is_directed(self):
        g = DiGraph(3)
        g.add_arc(0, 1, 2.0)
        assert (1, 2.0) in g.out_neighbors(0)
        assert (0, 2.0) in g.in_neighbors(1)
        assert g.out_neighbors(1) == []
        assert g.in_neighbors(0) == []
        assert g.m == 1

    def test_antiparallel_arcs_allowed(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 3.0)
        assert g.m == 2

    def test_duplicate_arc_rejected(self):
        g = DiGraph(2)
        g.add_arc(0, 1, 1.0)
        with pytest.raises(EdgeError):
            g.add_arc(0, 1, 2.0)

    def test_self_loop_rejected(self):
        g = DiGraph(1)
        with pytest.raises(EdgeError):
            g.add_arc(0, 0, 1.0)

    def test_bad_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(WeightError):
            g.add_arc(0, 1, -1.0)

    def test_bad_vertex_rejected(self):
        g = DiGraph(2)
        with pytest.raises(VertexError):
            g.add_arc(0, 9, 1.0)

    def test_degrees(self):
        g = DiGraph.from_arcs(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.in_degree(0) == 0

    def test_arcs_iteration(self):
        arcs = [(0, 1, 1.0), (1, 2, 2.0)]
        g = DiGraph.from_arcs(3, arcs)
        assert sorted(g.arcs()) == arcs


class TestConversions:
    def test_from_undirected_doubles_edges(self):
        u = Graph.from_edges(3, [(0, 1), (1, 2)])
        d = DiGraph.from_undirected(u)
        assert d.m == 4
        assert (1, 1.0) in d.out_neighbors(0)
        assert (0, 1.0) in d.out_neighbors(1)

    def test_reverse(self):
        g = DiGraph.from_arcs(3, [(0, 1, 5.0), (1, 2, 2.0)])
        r = g.reverse()
        assert sorted(r.arcs()) == [(1, 0, 5.0), (2, 1, 2.0)]

    def test_from_arcs_skips_duplicates_and_loops(self):
        g = DiGraph.from_arcs(3, [(0, 1), (0, 1), (2, 2)])
        assert g.m == 1
