"""Tests for the shortest-beer-path application layer."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import cycle_graph, path_graph, random_graph
from repro.beer import BeerDistanceIndex, BeerGraph, beer_distance_baseline
from repro.errors import LandmarkError, VertexError


class TestBeerGraph:
    def test_open_close(self):
        bg = BeerGraph(path_graph(4), beer_vertices=[1])
        assert bg.is_beer_vertex(1)
        bg.open_beer_vertex(3)
        assert bg.beer_vertices == {1, 3}
        bg.close_beer_vertex(1)
        assert bg.beer_vertices == {3}

    def test_double_open_rejected(self):
        bg = BeerGraph(path_graph(3), beer_vertices=[1])
        with pytest.raises(LandmarkError):
            bg.open_beer_vertex(1)

    def test_close_missing_rejected(self):
        bg = BeerGraph(path_graph(3))
        with pytest.raises(LandmarkError):
            bg.close_beer_vertex(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(VertexError):
            BeerGraph(path_graph(3), beer_vertices=[9])


class TestBaseline:
    def test_detour_required(self):
        bg = BeerGraph(cycle_graph(6), beer_vertices=[0])
        # 2 -> 4 must detour through the bar at 0: 2 + 2 = 4.
        assert beer_distance_baseline(bg, 2, 4) == 4.0

    def test_no_beer_is_inf(self):
        bg = BeerGraph(path_graph(3))
        assert beer_distance_baseline(bg, 0, 2) == math.inf

    def test_beer_on_shortest_path(self):
        bg = BeerGraph(path_graph(5), beer_vertices=[2])
        assert beer_distance_baseline(bg, 0, 4) == 4.0


class TestBeerDistanceIndex:
    def test_matches_baseline_static(self):
        g = random_graph(21, n_lo=8, n_hi=24)
        beer = [v for v in range(g.n) if v % 4 == 0]
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=beer))
        bg = BeerGraph(g, beer_vertices=beer)
        for s in range(0, g.n, 2):
            for t in range(1, g.n, 3):
                assert oracle.beer_distance(s, t) == beer_distance_baseline(bg, s, t)

    def test_beer_endpoint_degenerates_to_distance(self):
        g = path_graph(4)
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[0]))
        assert oracle.beer_distance(0, 3) == 3.0
        assert oracle.beer_distance(3, 0) == 3.0

    def test_dynamic_open_close_tracks_baseline(self):
        g = cycle_graph(8)
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[0]))
        assert oracle.beer_distance(3, 5) == 6.0
        oracle.open_beer_vertex(4)
        assert oracle.beer_distance(3, 5) == 2.0
        oracle.close_beer_vertex(4)
        assert oracle.beer_distance(3, 5) == 6.0

    def test_plain_distance_passthrough(self):
        g = cycle_graph(8)
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[0]))
        assert oracle.distance(3, 5) == 2.0

    def test_dynamic_index_exposed(self):
        oracle = BeerDistanceIndex(BeerGraph(path_graph(3), beer_vertices=[1]))
        assert oracle.dynamic_index.landmarks == {1}


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_property_beer_distance_under_churn(seed):
    """Beer distances stay exact while shops open and close."""
    g = random_graph(seed, n_lo=6, n_hi=18)
    rng = random.Random(seed)
    beer = set(rng.sample(range(g.n), max(1, g.n // 4)))
    oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=sorted(beer)))
    for _ in range(4):
        closed = [v for v in range(g.n) if v not in beer]
        if beer and (not closed or rng.random() < 0.5):
            v = rng.choice(sorted(beer))
            oracle.close_beer_vertex(v)
            beer.discard(v)
        elif closed:
            v = rng.choice(closed)
            oracle.open_beer_vertex(v)
            beer.add(v)
        reference = BeerGraph(g, beer_vertices=sorted(beer))
        s, t = rng.randrange(g.n), rng.randrange(g.n)
        want = beer_distance_baseline(reference, s, t)
        if oracle.beer_graph.is_beer_vertex(s) or oracle.beer_graph.is_beer_vertex(t):
            # endpoint itself sells beer: plain distance
            from repro.graphs import single_source_distances

            want = min(want, single_source_distances(g, s)[t])
        assert oracle.beer_distance(s, t) == want


class TestBeerPathReporting:
    def test_path_realizes_beer_distance(self):
        g = cycle_graph(8)
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[0]))
        route = oracle.beer_path(3, 5)
        assert route[0] == 3 and route[-1] == 5
        assert 0 in route  # passes the beer vertex
        weight = sum(
            g.edge_weight(route[i], route[i + 1]) for i in range(len(route) - 1)
        )
        assert weight == oracle.beer_distance(3, 5)

    def test_beer_endpoint_gives_plain_shortest_path(self):
        g = path_graph(5)
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[0]))
        assert oracle.beer_path(0, 4) == [0, 1, 2, 3, 4]
