"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import Graph, assign_uniform_integer_weights, erdos_renyi


def path_graph(n: int, weights=None) -> Graph:
    """0 - 1 - ... - n-1 with optional per-edge weights."""
    g = Graph(n, unweighted=weights is None)
    for i in range(n - 1):
        w = 1.0 if weights is None else weights[i]
        g.add_edge(i, i + 1, w)
    return g


def cycle_graph(n: int) -> Graph:
    """Unweighted n-cycle."""
    g = Graph(n, unweighted=True)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, 1.0)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Unweighted rows x cols lattice."""
    g = Graph(rows * cols, unweighted=True)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1, 1.0)
            if r + 1 < rows:
                g.add_edge(v, v + cols, 1.0)
    return g


def random_graph(seed: int, n_lo: int = 5, n_hi: int = 30, weighted=None) -> Graph:
    """Connected random graph; ``weighted=None`` flips a seeded coin."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    base = erdos_renyi(n, min(n - 2, rng.uniform(1.5, 4.0)), seed=seed)
    if weighted is None:
        weighted = rng.random() < 0.5
    if weighted:
        return assign_uniform_integer_weights(base, 1, 7, seed=seed + 1)
    return base


@pytest.fixture
def small_path() -> Graph:
    """A 5-vertex unweighted path."""
    return path_graph(5)


@pytest.fixture
def weighted_diamond() -> Graph:
    """Two s-t routes of different weight plus a tie route.

    Edges: 0-1 (1), 1-3 (1), 0-2 (3), 2-3 (1), 0-3 (5).
    d(0, 3) = 2 via 0-1-3.
    """
    g = Graph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 3, 1.0)
    g.add_edge(0, 2, 3.0)
    g.add_edge(2, 3, 1.0)
    g.add_edge(0, 3, 5.0)
    return g
