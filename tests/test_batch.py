"""Tests for batch landmark reconfiguration (future-work ii)."""

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import assert_canonical, build_hcl
from repro.core.batch import batch_reconfigure
from repro.errors import LandmarkError


class TestStrategies:
    def test_dynamic_path(self):
        index = build_hcl(cycle_graph(12), [0, 3, 6, 9])
        result = batch_reconfigure(index, add=[1], remove=[6])
        assert result.strategy == "dynamic"
        assert index.landmarks == {0, 1, 3, 9}
        assert_canonical(index)

    def test_rebuild_cutoff(self):
        index = build_hcl(cycle_graph(12), [0, 6])
        result = batch_reconfigure(
            index, add=[1, 2, 3, 4], remove=[0, 6], rebuild_factor=0.5
        )
        assert result.strategy == "rebuild"
        assert index.landmarks == {1, 2, 3, 4}
        assert_canonical(index)

    def test_force_dynamic(self):
        index = build_hcl(cycle_graph(12), [0, 6])
        result = batch_reconfigure(
            index, add=[1, 2, 3], remove=[0], rebuild_factor=float("inf")
        )
        assert result.strategy == "dynamic"
        assert_canonical(index)

    @pytest.mark.parametrize("factor", [0.0, 0.75, float("inf")])
    def test_strategies_agree(self, factor):
        g = random_graph(33, n_lo=10, n_hi=25)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        adds = [v for v in range(g.n) if v % 4 == 1][:3]
        index = build_hcl(g, landmarks)
        batch_reconfigure(index, add=adds, remove=landmarks[:2], rebuild_factor=factor)
        fresh = build_hcl(g, sorted(index.landmarks))
        assert index.structurally_equal(fresh)


class TestCancellation:
    def test_add_and_remove_same_vertex_cancels(self):
        index = build_hcl(path_graph(6), [2])
        result = batch_reconfigure(index, add=[4], remove=[4])
        assert result.cancelled == 1
        assert result.applied_adds == 0
        assert result.applied_removes == 0
        assert index.landmarks == {2}

    def test_cancel_preserves_current_state_for_landmark(self):
        index = build_hcl(path_graph(6), [2])
        result = batch_reconfigure(index, add=[2], remove=[2])
        assert result.cancelled == 1
        assert index.landmarks == {2}

    def test_empty_batch_is_noop(self):
        index = build_hcl(path_graph(4), [1])
        snapshot = index.copy()
        result = batch_reconfigure(index)
        assert result.strategy == "dynamic"
        assert index.structurally_equal(snapshot)


class TestValidation:
    def test_add_existing_landmark_rejected(self):
        index = build_hcl(path_graph(4), [1])
        with pytest.raises(LandmarkError):
            batch_reconfigure(index, add=[1])

    def test_remove_non_landmark_rejected(self):
        index = build_hcl(path_graph(4), [1])
        with pytest.raises(LandmarkError):
            batch_reconfigure(index, remove=[0])

    def test_out_of_range_rejected(self):
        index = build_hcl(path_graph(4), [1])
        with pytest.raises(LandmarkError):
            batch_reconfigure(index, add=[77])
