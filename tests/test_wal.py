"""Tests for the write-ahead log: format, tolerance, crash repair."""

import pytest

from repro.core.wal import (
    OP_ADD,
    OP_REMOVE,
    WriteAheadLog,
    scan_wal,
)
from repro.errors import WALError
from repro.testing import corrupt_byte, truncate_tail

_HEADER = 5  # len(magic)
_RECORD = 17  # 13-byte body + 4-byte crc


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "mutations.wal"


def write_ops(path, ops):
    with WriteAheadLog(path, sync=False) as wal:
        for kind, v in ops:
            wal.append(kind, v)
        return wal.last_seq


class TestAppendScan:
    def test_round_trip(self, wal_path):
        write_ops(wal_path, [("add", 3), ("remove", 3), ("add", 7)])
        scan = scan_wal(wal_path)
        assert [(r.kind, r.vertex) for r in scan.records] == [
            ("add", 3),
            ("remove", 3),
            ("add", 7),
        ]
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert not scan.truncated
        assert scan.good_bytes == _HEADER + 3 * _RECORD

    def test_empty_wal(self, wal_path):
        write_ops(wal_path, [])
        scan = scan_wal(wal_path)
        assert scan.records == ()
        assert scan.last_seq == 0
        assert not scan.truncated

    def test_missing_file_scans_empty(self, wal_path):
        scan = scan_wal(wal_path)
        assert scan.records == () and not scan.truncated

    def test_seq_continues_across_reopen(self, wal_path):
        assert write_ops(wal_path, [("add", 1), ("add", 2)]) == 2
        with WriteAheadLog(wal_path, sync=False) as wal:
            assert wal.last_seq == 2
            wal.append("remove", 1)
        assert [r.seq for r in scan_wal(wal_path).records] == [1, 2, 3]

    def test_reset_keeps_seq_counter(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            wal.append("add", 4)
            wal.append("add", 5)
            wal.reset()
            assert wal.last_seq == 2  # monotonic across resets
            wal.append("remove", 4)
        scan = scan_wal(wal_path)
        assert [(r.seq, r.kind, r.vertex) for r in scan.records] == [
            (3, "remove", 4)
        ]

    def test_unknown_kind_rejected(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            with pytest.raises(WALError):
                wal.append("upsert", 1)

    def test_append_all(self, wal_path):
        with WriteAheadLog(wal_path, sync=False) as wal:
            wal.append_all([("add", 1), ("remove", 1)])
        assert len(scan_wal(wal_path).records) == 2


class TestTornAndCorruptTails:
    def test_truncated_tail_stops_at_committed_prefix(self, wal_path):
        write_ops(wal_path, [("add", 1), ("add", 2), ("add", 3)])
        truncate_tail(wal_path, 5)  # torn final record
        scan = scan_wal(wal_path)
        assert [r.vertex for r in scan.records] == [1, 2]
        assert scan.truncated
        assert scan.good_bytes == _HEADER + 2 * _RECORD

    def test_corrupt_tail_record_dropped(self, wal_path):
        write_ops(wal_path, [("add", 1), ("add", 2)])
        corrupt_byte(wal_path, -3)  # inside the last record's crc
        scan = scan_wal(wal_path)
        assert [r.vertex for r in scan.records] == [1]
        assert scan.truncated

    def test_corrupt_middle_record_drops_suffix(self, wal_path):
        write_ops(wal_path, [("add", 1), ("add", 2), ("add", 3)])
        corrupt_byte(wal_path, _HEADER + _RECORD + 2)
        scan = scan_wal(wal_path)
        assert [r.vertex for r in scan.records] == [1]
        assert scan.truncated

    def test_bad_magic_raises(self, wal_path):
        write_ops(wal_path, [("add", 1)])
        corrupt_byte(wal_path, 0)
        with pytest.raises(WALError):
            scan_wal(wal_path)

    def test_reopen_repairs_torn_tail(self, wal_path):
        write_ops(wal_path, [("add", 1), ("add", 2)])
        truncate_tail(wal_path, 7)
        with WriteAheadLog(wal_path, sync=False) as wal:
            assert wal.last_seq == 1  # torn record discarded
            wal.append("remove", 9)
        scan = scan_wal(wal_path)
        assert [(r.seq, r.vertex) for r in scan.records] == [(1, 1), (2, 9)]
        assert not scan.truncated  # the repair removed the bad bytes


class TestRecordConstants:
    def test_op_codes_are_stable(self):
        # On-disk format constants: changing them breaks old WAL files.
        assert OP_ADD == 1
        assert OP_REMOVE == 2
