"""Tests for the synthetic graph generators."""

import pytest

from repro.errors import DatasetError
from repro.graphs import (
    barabasi_albert,
    connect_components,
    erdos_renyi,
    random_bipartite,
    road_grid,
    single_source_distances,
)


def is_connected(g) -> bool:
    if g.n == 0:
        return True
    dist = single_source_distances(g, 0)
    return all(d != float("inf") for d in dist)


class TestErdosRenyi:
    def test_size_and_degree(self):
        g = erdos_renyi(200, 4.0, seed=1)
        assert g.n == 200
        assert g.average_degree == pytest.approx(4.0, rel=0.15)

    def test_connected(self):
        assert is_connected(erdos_renyi(150, 2.0, seed=2))

    def test_deterministic(self):
        a = erdos_renyi(50, 3.0, seed=9)
        b = erdos_renyi(50, 3.0, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi(50, 3.0, seed=1)
        b = erdos_renyi(50, 3.0, seed=2)
        assert a != b

    def test_infeasible_degree_rejected(self):
        with pytest.raises(DatasetError):
            erdos_renyi(10, 20.0, seed=0)
        with pytest.raises(DatasetError):
            erdos_renyi(10, 0.0, seed=0)


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(300, 3, seed=4)
        assert g.n == 300
        # m = seed clique + k per new vertex
        assert g.m == 3 * 4 // 2 + (300 - 4) * 3

    def test_connected(self):
        assert is_connected(barabasi_albert(200, 2, seed=0))

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, seed=7)
        max_deg = max(g.degree(v) for v in g.vertices())
        assert max_deg > 5 * g.average_degree

    def test_requires_n_greater_than_k(self):
        with pytest.raises(DatasetError):
            barabasi_albert(3, 3, seed=0)


class TestRoadGrid:
    def test_size_and_sparsity(self):
        g = road_grid(20, 30, seed=3)
        assert g.n == 600
        assert g.average_degree < 4.5

    def test_connected_despite_removals(self):
        g = road_grid(25, 25, removal_prob=0.2, seed=5)
        assert is_connected(g)

    def test_invalid_removal_prob(self):
        with pytest.raises(DatasetError):
            road_grid(5, 5, removal_prob=1.0)

    def test_large_diameter(self):
        g = road_grid(30, 30, diagonal_prob=0.0, removal_prob=0.0, seed=0)
        dist = single_source_distances(g, 0)
        assert max(dist) >= 58  # corner-to-corner manhattan distance


class TestRandomBipartite:
    def test_size(self):
        g = random_bipartite(40, 120, 6.0, seed=1)
        assert g.n == 160
        assert g.average_degree == pytest.approx(6.0, rel=0.2)

    def test_connected(self):
        assert is_connected(random_bipartite(30, 90, 4.0, seed=2))

    def test_infeasible_rejected(self):
        with pytest.raises(DatasetError):
            random_bipartite(2, 2, 100.0, seed=0)


class TestConnectComponents:
    def test_joins_disconnected_pieces(self):
        from repro.graphs import Graph

        g = Graph(6, unweighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(4, 5, 1.0)
        connect_components(g, seed=0)
        assert is_connected(g)
        assert g.m == 5  # exactly two bridging edges added

    def test_noop_on_connected(self):
        g = erdos_renyi(30, 3.0, seed=3)
        m = g.m
        connect_components(g, seed=0)
        assert g.m == m


class TestCommunityGraph:
    def test_size_and_connectivity(self):
        from repro.graphs import community_graph

        g = community_graph(600, 10, 5, 0.05, seed=1)
        assert g.n == 600
        assert is_connected(g)

    def test_deterministic(self):
        from repro.graphs import community_graph

        a = community_graph(300, 6, 4, 0.04, seed=7)
        b = community_graph(300, 6, 4, 0.04, seed=7)
        assert a == b

    def test_community_locality(self):
        """Intra-community edges must dominate inter-community ones."""
        from repro.graphs import community_graph

        communities, n = 10, 500
        g = community_graph(n, communities, 5, 0.04, seed=2)
        size = n // communities
        intra = sum(1 for u, v, _ in g.edges() if u // size == v // size)
        assert intra > 0.8 * g.m

    def test_heavy_tail_within_communities(self):
        from repro.graphs import community_graph

        g = community_graph(800, 8, 4, 0.03, seed=3)
        max_deg = max(g.degree(v) for v in g.vertices())
        assert max_deg > 3 * g.average_degree

    def test_validation(self):
        from repro.graphs import community_graph

        with pytest.raises(DatasetError):
            community_graph(100, 10, 20)  # community size 10 <= k_intra
        with pytest.raises(DatasetError):
            community_graph(100, 5, 3, inter_fraction=1.5)
        with pytest.raises(DatasetError):
            community_graph(0, 1, 1)
