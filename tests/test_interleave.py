"""The step-barrier scheduler itself: determinism, failure modes, drain."""

from __future__ import annotations

import time

import pytest

from repro.testing import InterleaveError, StepScheduler


def test_schedule_replays_exact_interleaving():
    events = []

    def worker(name, sched):
        events.append(f"{name}:a")
        sched.step("a")
        events.append(f"{name}:b")
        sched.step("b")
        events.append(f"{name}:c")

    for _ in range(3):  # same script, same order, every run
        events.clear()
        with StepScheduler() as sched:
            sched.spawn("x", worker, "x", sched)
            sched.spawn("y", worker, "y", sched)
            sched.run(["x", "y", "y", "x", "x"])
        assert events[:5] == ["x:a", "y:a", "y:b", "x:b", "x:c"]
        # y's tail ran in the drain, after the scripted prefix.
        assert sorted(events[5:]) == ["y:c"]
        assert sched.trace[:4] == [("x", "a"), ("y", "a"), ("y", "b"), ("x", "b")]


def test_spawned_thread_does_not_run_until_granted():
    ran = []
    with StepScheduler() as sched:
        sched.spawn("w", ran.append, 1)
        assert ran == []  # parked at entry
        sched.grant("w")
        assert ran == [1]


def test_result_and_return_value():
    with StepScheduler() as sched:
        sched.spawn("w", lambda: 42)
        sched.finish()
    assert sched.result("w") == 42


def test_worker_exception_reraised_by_finish():
    def boom():
        raise ValueError("from worker")

    sched = StepScheduler()
    sched.spawn("w", boom)
    with pytest.raises(ValueError, match="from worker"):
        sched.run(["w"])
    assert isinstance(sched.error("w"), ValueError)


def test_grant_to_unknown_thread_raises():
    with StepScheduler() as sched:
        with pytest.raises(InterleaveError, match="unknown thread"):
            sched.grant("nope")


def test_grant_to_finished_thread_raises():
    with StepScheduler() as sched:
        sched.spawn("w", lambda: None)
        sched.grant("w")
        with pytest.raises(InterleaveError, match="finished"):
            sched.grant("w")
        sched.finish()


def test_duplicate_spawn_name_raises():
    with StepScheduler() as sched:
        sched.spawn("w", lambda: None)
        with pytest.raises(InterleaveError, match="already spawned"):
            sched.spawn("w", lambda: None)


def test_step_from_unregistered_thread_raises():
    sched = StepScheduler()
    with pytest.raises(InterleaveError, match="unregistered"):
        sched.step("oops")


def test_watchdog_times_out_never_granted_thread():
    def worker(sched):
        sched.step("waiting")  # never granted a second turn

    sched = StepScheduler(timeout=0.2)
    sched.spawn("w", worker, sched)
    sched.grant("w")  # runs to its step() and parks
    time.sleep(0.4)  # the parked worker's own watchdog expires
    with pytest.raises(InterleaveError, match="never granted"):
        sched.finish()


def test_steps_after_drain_are_no_ops():
    def worker(sched):
        sched.step("one")
        sched.step("two")  # both reached only during the drain
        return "done"

    with StepScheduler() as sched:
        sched.spawn("w", worker, sched)
        sched.finish()
    assert sched.result("w") == "done"
    assert [label for _, label in sched.trace] == ["one", "two"]


def test_context_exit_drains_without_masking_test_failure():
    def worker(sched):
        sched.step("parked")

    sched = StepScheduler()
    with pytest.raises(RuntimeError, match="the real failure"):
        with sched:
            sched.spawn("w", worker, sched)
            sched.grant("w")
            raise RuntimeError("the real failure")
    # The worker was still drained to completion on exit.
    assert sched._workers["w"].state == "done"
