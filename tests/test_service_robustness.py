"""Service-layer robustness: auditing, validation, batch failure modes."""

import io

import pytest

from conftest import grid_graph
from repro.core import build_hcl
from repro.core.serialization import save_index_binary
from repro.errors import (
    LandmarkError,
    ReproError,
    RequestError,
    ServiceError,
    TransactionError,
    VertexError,
)
from repro.service import (
    AddLandmarkRequest,
    BatchQueryRequest,
    ConstrainedDistanceRequest,
    DistanceRequest,
    HCLService,
    RemoveLandmarkRequest,
)
from repro.testing import fail_at_label_write


def serialized(index) -> bytes:
    buf = io.BytesIO()
    save_index_binary(index, buf)
    return buf.getvalue()


@pytest.fixture
def svc():
    return HCLService.build(grid_graph(4, 5), [0, 19])


class TestValidation:
    @pytest.mark.parametrize("bad", [-1, 20, 3.5, "7", None])
    def test_bad_query_vertices_rejected(self, svc, bad):
        with pytest.raises(VertexError):
            svc.submit(DistanceRequest(bad, 1))
        with pytest.raises(VertexError):
            svc.submit(ConstrainedDistanceRequest(1, bad))

    @pytest.mark.parametrize("bad", [-1, 20])
    def test_bad_mutation_vertices_rejected(self, svc, bad):
        with pytest.raises(VertexError):
            svc.submit(AddLandmarkRequest(bad))
        with pytest.raises(VertexError):
            svc.submit(RemoveLandmarkRequest(bad))
        assert svc.landmarks == {0, 19}

    @pytest.mark.parametrize("workers", [0, -1, -100])
    def test_nonpositive_workers_rejected(self, svc, workers):
        with pytest.raises(RequestError, match="workers"):
            svc.submit(
                BatchQueryRequest(pairs=((1, 2),), workers=workers)
            )

    def test_oversized_workers_clamped_not_rejected(self, svc):
        result = svc.submit(
            BatchQueryRequest(pairs=((1, 2), (0, 19)), workers=10**6)
        )
        assert len(result) == 2

    def test_batch_pairs_validated_with_position(self, svc):
        with pytest.raises(VertexError, match=r"pair 1"):
            svc.submit(BatchQueryRequest(pairs=((0, 1), (2, 99))))

    def test_unknown_request_type_rejected(self, svc):
        with pytest.raises(RequestError):
            svc.submit(object())


class TestAuditEverything:
    def test_validation_failures_are_audited(self, svc):
        with pytest.raises(VertexError):
            svc.submit(DistanceRequest(-1, 1))
        rec = svc.audit[-1]
        assert not rec.ok
        assert rec.error.startswith("VertexError:")
        assert svc.stats.failures == 1

    def test_library_errors_keep_type_and_are_audited(self, svc):
        with pytest.raises(LandmarkError):
            svc.submit(AddLandmarkRequest(0))  # already a landmark
        assert svc.audit[-1].error.startswith("LandmarkError:")

    def test_foreign_errors_wrapped_in_service_error(self, svc, monkeypatch):
        monkeypatch.setattr(
            svc._engine, "distance",
            lambda s, t: (_ for _ in ()).throw(ZeroDivisionError("bug")),
        )
        with pytest.raises(ServiceError) as info:
            svc.submit(DistanceRequest(0, 1))
        assert isinstance(info.value.__cause__, ZeroDivisionError)
        assert isinstance(info.value, ReproError)
        rec = svc.audit[-1]
        assert rec.error.startswith("ZeroDivisionError:")

    def test_injected_fault_mid_mutation_rolls_back_and_audits(self, svc):
        g = svc._dyn.index.graph
        before = serialized(svc._dyn.index)
        with pytest.raises(TransactionError):
            with fail_at_label_write(4):
                svc.submit(AddLandmarkRequest(9))
        assert serialized(svc._dyn.index) == before
        assert svc.audit[-1].error.startswith("TransactionError:")
        # the service still works and the retried mutation is canonical
        svc.submit(AddLandmarkRequest(9))
        assert serialized(svc._dyn.index) == serialized(
            build_hcl(g, [0, 9, 19])
        )


class TestBatchSemantics:
    def test_invalid_on_error_rejected(self, svc):
        with pytest.raises(RequestError, match="on_error"):
            svc.submit_batch([DistanceRequest(0, 1)], on_error="retry")

    def test_stop_keeps_earlier_effects(self, svc):
        with pytest.raises(LandmarkError):
            svc.submit_batch(
                [
                    AddLandmarkRequest(5),
                    AddLandmarkRequest(5),  # duplicate fails
                    AddLandmarkRequest(9),  # never reached
                ],
                on_error="stop",
            )
        assert svc.landmarks == {0, 5, 19}

    def test_continue_processes_everything(self, svc):
        records = svc.submit_batch(
            [
                AddLandmarkRequest(5),
                AddLandmarkRequest(5),
                AddLandmarkRequest(9),
            ],
            on_error="continue",
        )
        assert [r.ok for r in records] == [True, False, True]
        assert svc.landmarks == {0, 5, 9, 19}

    def test_rollback_is_all_or_nothing(self, svc):
        g = svc._dyn.index.graph
        before = serialized(svc._dyn.index)
        log_before = svc._dyn.log.count
        mut_before = svc.stats.mutations
        with pytest.raises(LandmarkError):
            svc.submit_batch(
                [
                    AddLandmarkRequest(5),
                    AddLandmarkRequest(9),
                    AddLandmarkRequest(5),  # duplicate sinks the batch
                ],
                on_error="rollback",
            )
        assert serialized(svc._dyn.index) == before
        assert svc._dyn.log.count == log_before
        assert svc.stats.mutations == mut_before
        assert svc.landmarks == {0, 19}
        # queries after the rollback see the rolled-back index
        assert svc.submit(DistanceRequest(0, 19)) == pytest.approx(
            build_hcl(g, [0, 19]).distance(0, 19)
        )

    def test_rollback_commits_clean_batches(self, svc):
        g = svc._dyn.index.graph
        svc.submit_batch(
            [AddLandmarkRequest(5), RemoveLandmarkRequest(19)],
            on_error="rollback",
        )
        assert svc.landmarks == {0, 5}
        assert serialized(svc._dyn.index) == serialized(build_hcl(g, [0, 5]))
        assert svc._dyn.log.count == 2

    def test_rollback_invalidates_cached_answers(self, svc):
        # warm the cache, mutate + roll back, and check the cache does not
        # serve answers computed for the rolled-back state
        d0 = svc.submit(DistanceRequest(1, 18))
        with pytest.raises(LandmarkError):
            svc.submit_batch(
                [AddLandmarkRequest(9), AddLandmarkRequest(9)],
                on_error="rollback",
            )
        assert svc.submit(DistanceRequest(1, 18)) == d0

    def test_wal_not_polluted_by_rolled_back_batch(self, svc, tmp_path):
        wal_path = tmp_path / "svc.wal"
        svc = HCLService.build(grid_graph(4, 5), [0, 19], wal=wal_path)
        with pytest.raises(LandmarkError):
            svc.submit_batch(
                [AddLandmarkRequest(5), AddLandmarkRequest(5)],
                on_error="rollback",
            )
        assert svc.wal.last_seq == 0  # nothing leaked to the log
        svc.submit_batch(
            [AddLandmarkRequest(5), AddLandmarkRequest(9)],
            on_error="rollback",
        )
        assert svc.wal.last_seq == 2  # clean batch flushed on commit
        scan = svc.wal.scan()
        assert [(r.kind, r.vertex) for r in scan.records] == [
            ("add", 5),
            ("add", 9),
        ]

    def test_stop_mode_writes_wal_per_request(self, tmp_path):
        wal_path = tmp_path / "svc.wal"
        svc = HCLService.build(grid_graph(4, 5), [0], wal=wal_path)
        with pytest.raises(LandmarkError):
            svc.submit_batch(
                [AddLandmarkRequest(5), AddLandmarkRequest(5)],
                on_error="stop",
            )
        # first request committed (and stays committed), so it is logged
        assert svc.wal.last_seq == 1
