"""Unit tests for the Labeling structure."""

import pytest

from repro.core import Labeling
from repro.errors import VertexError


class TestEntries:
    def test_add_and_lookup(self):
        lab = Labeling(3)
        lab.add_entry(1, 5, 2.0)
        assert lab.entry(1, 5) == 2.0
        assert lab.covers(5, 1)
        assert not lab.covers(5, 0)

    def test_overwrite(self):
        lab = Labeling(2)
        lab.add_entry(0, 3, 2.0)
        lab.add_entry(0, 3, 1.0)
        assert lab.entry(0, 3) == 1.0
        assert lab.total_entries() == 1

    def test_remove(self):
        lab = Labeling(2)
        lab.add_entry(0, 3, 2.0)
        assert lab.remove_entry(0, 3)
        assert not lab.remove_entry(0, 3)
        assert lab.entry(0, 3) is None

    def test_clear_vertex(self):
        lab = Labeling(2)
        lab.add_entry(1, 0, 1.0)
        lab.add_entry(1, 9, 2.0)
        lab.clear_vertex(1)
        assert lab.label(1) == {}

    def test_add_vertex(self):
        lab = Labeling(1)
        assert lab.add_vertex() == 1
        assert lab.n == 2
        assert lab.label(1) == {}

    def test_negative_size_rejected(self):
        with pytest.raises(VertexError):
            Labeling(-2)


class TestStats:
    def test_counts(self):
        lab = Labeling(3)
        lab.add_entry(0, 1, 1.0)
        lab.add_entry(0, 2, 1.0)
        lab.add_entry(2, 1, 1.0)
        assert lab.total_entries() == 3
        assert lab.average_label_size() == pytest.approx(1.0)
        assert lab.max_label_size() == 2

    def test_empty(self):
        lab = Labeling(0)
        assert lab.average_label_size() == 0.0
        assert lab.max_label_size() == 0


class TestCopyEquality:
    def test_copy_independent(self):
        lab = Labeling(2)
        lab.add_entry(0, 1, 1.0)
        c = lab.copy()
        c.add_entry(0, 2, 2.0)
        assert lab.total_entries() == 1
        assert c.total_entries() == 2
        assert lab != c

    def test_equality(self):
        a, b = Labeling(2), Labeling(2)
        a.add_entry(1, 4, 2.0)
        b.add_entry(1, 4, 2.0)
        assert a == b
