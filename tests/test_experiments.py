"""Integration tests for the experiment harness (tiny scales)."""

import math

import pytest

from repro.experiments import (
    fmt_amortized,
    fmt_seconds,
    fmt_speedup,
    render_table,
    run_ablation_batch,
    run_ablation_cleanup,
    run_ablation_selection,
    run_figure1,
    run_figure2,
    run_g1,
    run_g2,
    run_table1,
    run_table2,
    run_table3,
)
from repro.workloads import make_dataset


class TestFormatting:
    def test_fmt_seconds(self):
        assert fmt_seconds(1.234) == "1.23"
        assert fmt_seconds(0.001) == "<0.01"
        assert fmt_seconds(0.0) == "0.00"
        assert fmt_seconds(math.inf) == "-"

    def test_fmt_speedup(self):
        assert fmt_speedup(1234.5) == "1,234.50"
        assert fmt_speedup(math.nan) == "-"

    def test_fmt_amortized(self):
        assert fmt_amortized(0.00123) == "1.2e-03"
        assert fmt_amortized(250.0) == "2.5e+02"
        assert fmt_amortized(0.0) == "-"

    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [["1", "2"], ["10", "20"]], note="n")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert lines[-1] == "n"


class TestRunners:
    def test_g1_result_fields(self):
        g = make_dataset("LUX", scale=0.08, seed=0)
        res = run_g1(g, "LUX", 8, seed=0)
        assert res.dataset == "LUX"
        assert res.sigma == 2
        assert res.t_build > 0
        assert res.t_fdyn > 0
        assert res.speedup == pytest.approx(res.t_build / res.t_fdyn)
        # space parity (Lemmas 3.2/3.6)
        assert res.label_entries_dyn == res.label_entries_rebuilt
        # machine-independent work counters: the σ = 2 mixed updates must
        # have done *some* upgrade and downgrade work
        assert res.settled > 0
        assert res.swept > 0
        assert res.pruned >= 0
        assert res.work_per_update == pytest.approx(
            (res.settled + res.swept + res.pruned) / res.sigma
        )

    def test_g2_result_fields(self):
        g = make_dataset("LUX", scale=0.08, seed=0)
        res = run_g2(g, "LUX", 8, queries=50, seed=0)
        assert res.queries == 50
        assert res.cmt_fdyn > 0
        assert res.cmt_chgsp > 0
        assert res.amr_fdyn == pytest.approx(res.cmt_fdyn / 50)
        assert res.settled > 0 and res.swept > 0

    def test_table1_text(self):
        out = run_table1(scale=0.05)
        assert "ERD" in out and "TWI" in out
        assert "paper |V|" in out

    def test_table2_text(self):
        out = run_table2(scale=0.08, datasets=["LUX"], include_large=False)
        assert "SPEEDUP@20" in out
        assert "WORK@20" in out  # work counts next to the wall-clock columns
        assert "LUX" in out

    def test_table3_text(self):
        out = run_table3(scale=0.08, queries=30, datasets=["LUX"], r_values=(8,))
        assert "CMT_FDYN@8" in out
        assert "AMR_CHGSP@8" in out

    def test_table3_filters_non_sparse(self):
        out = run_table3(scale=0.08, queries=10, datasets=["TWI"], r_values=(4,))
        assert "TWI" not in out  # dense datasets are excluded, as in the paper

    def test_figure1_text(self):
        out = run_figure1()
        assert "UPGRADE-LMK(3)" in out
        assert "DOWNGRADE-LMK(7)" in out
        assert "L( 8) = {(5, 1)}" in out

    def test_figure2_text(self):
        out = run_figure2(scale=0.08, queries=20, landmark_count=8, datasets=["LUX"])
        assert "CMT_FDYN" in out
        assert "DYN WORK" in out

    def test_ablations_text(self):
        cleanup = run_ablation_cleanup(scale=0.05, datasets=("LUX",), k=6)
        assert "cleanup" in cleanup
        batch = run_ablation_batch(scale=0.05, datasets=("LUX",), k=8)
        assert "batch strategy" in batch
        selection = run_ablation_selection(scale=0.05, datasets=("LUX",), k=6)
        assert "betweenness" in selection


class TestIncDecAblation:
    def test_incdec_text(self):
        from repro.experiments import run_ablation_incdec

        out = run_ablation_incdec(scale=0.05, datasets=("LUX",), k=8)
        assert "incremental" in out
        assert "decremental" in out
        assert "mixed" in out


class TestExtensionRunners:
    def test_directed_extension_text(self):
        from repro.experiments import run_extension_directed

        out = run_extension_directed(scale=0.05, datasets=("NW",), k=6)
        assert "directed DYN-HCL" in out
        assert "NW" in out

    def test_fullydynamic_extension_text(self):
        from repro.experiments import run_extension_fullydynamic

        out = run_extension_fullydynamic(scale=0.05, datasets=("NW",), k=6)
        assert "fully dynamic" in out
        assert "affected rows" in out


class TestTable2LargeSweep:
    def test_infeasible_r_values_padded(self):
        # At tiny scale the large |R| sweep exceeds n: cells become "-".
        out = run_table2(scale=0.02, datasets=["LUX"], include_large=True)
        assert "Table 2 (bottom)" in out
        assert "-" in out
