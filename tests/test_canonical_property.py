"""Property-based tests: the theorems of the paper, machine-checked.

The canonical index is the unique minimal, order-invariant HCL structure
for ``(G, R)``.  Theorems 3.1/3.5 + Lemmas 3.2/3.3/3.6/3.7 together say
that UPGRADE-LMK and DOWNGRADE-LMK map canonical indexes to canonical
indexes; we verify this by structural equality with a from-scratch rebuild
after every step of randomized mixed update sequences, over random
weighted and unweighted graphs (hypothesis-driven).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_graph
from repro.core import (
    assert_canonical,
    build_hcl,
    downgrade_landmark,
    upgrade_landmark,
)


def apply_random_updates(index, landmarks, steps, rng):
    """Drive a random feasible mixed sequence; yields after each update."""
    n = index.graph.n
    for _ in range(steps):
        removable = sorted(landmarks)
        addable = [v for v in range(n) if v not in landmarks]
        if removable and (not addable or rng.random() < 0.5):
            v = rng.choice(removable)
            downgrade_landmark(index, v)
            landmarks.discard(v)
        elif addable:
            v = rng.choice(addable)
            upgrade_landmark(index, v)
            landmarks.add(v)
        yield


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mixed_sequences_stay_canonical(seed):
    g = random_graph(seed, n_lo=5, n_hi=28)
    rng = random.Random(seed + 1)
    k = rng.randint(1, max(1, g.n // 3))
    landmarks = set(rng.sample(range(g.n), k))
    index = build_hcl(g, sorted(landmarks))
    for _ in apply_random_updates(index, landmarks, steps=6, rng=rng):
        assert_canonical(index)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_update_order_does_not_matter(seed):
    """Applying the same set of changes in different orders agrees."""
    g = random_graph(seed, n_lo=8, n_hi=22)
    rng = random.Random(seed + 2)
    base = set(rng.sample(range(g.n), max(2, g.n // 4)))
    adds = rng.sample([v for v in range(g.n) if v not in base], 2)
    removes = rng.sample(sorted(base), 2)

    def run(order):
        index = build_hcl(g, sorted(base))
        for kind, v in order:
            if kind == "add":
                upgrade_landmark(index, v)
            else:
                downgrade_landmark(index, v)
        return index

    ops = [("add", adds[0]), ("add", adds[1]), ("rm", removes[0]), ("rm", removes[1])]
    forward = run(ops)
    backward = run(list(reversed(ops)))
    assert forward.structurally_equal(backward)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dynamic_equals_static_for_final_set(seed):
    """After any update sequence, the index equals BUILDHCL on the result."""
    g = random_graph(seed, n_lo=5, n_hi=25)
    rng = random.Random(seed + 3)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 4)))
    index = build_hcl(g, sorted(landmarks))
    for _ in apply_random_updates(index, landmarks, steps=5, rng=rng):
        pass
    fresh = build_hcl(g, sorted(landmarks))
    assert index.structurally_equal(fresh)
    # Space parity claim of the paper (Lemmas 3.2/3.6): same entry count.
    assert index.labeling.total_entries() == fresh.labeling.total_entries()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_query_monotone_under_landmark_changes(seed):
    """Adding a landmark can only tighten QUERY; removing only loosen it.

    The landmark-constrained distance is a minimum over landmarks, so it is
    antitone in the landmark set — a paper-level sanity property the update
    algorithms must preserve on top of canonicity.
    """
    g = random_graph(seed, n_lo=6, n_hi=20)
    rng = random.Random(seed + 9)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 4)))
    index = build_hcl(g, sorted(landmarks))
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(8)]

    before = {p: index.query(*p) for p in pairs}
    addable = [v for v in range(g.n) if v not in landmarks]
    if addable:
        upgrade_landmark(index, rng.choice(addable))
        for p in pairs:
            assert index.query(*p) <= before[p]
        before = {p: index.query(*p) for p in pairs}

    victim = rng.choice(sorted(index.landmarks))
    downgrade_landmark(index, victim)
    for p in pairs:
        assert index.query(*p) >= before[p]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_exact_distance_invariant_under_landmark_changes(seed):
    """index.distance must equal the true distance regardless of R."""
    from repro.graphs import single_source_distances

    g = random_graph(seed, n_lo=5, n_hi=16)
    rng = random.Random(seed + 11)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 3)))
    index = build_hcl(g, sorted(landmarks))
    s = rng.randrange(g.n)
    truth = single_source_distances(g, s)

    for _ in range(3):
        addable = [v for v in range(g.n) if v not in landmarks]
        if landmarks and (not addable or rng.random() < 0.5):
            v = rng.choice(sorted(landmarks))
            downgrade_landmark(index, v)
            landmarks.discard(v)
        elif addable:
            v = rng.choice(addable)
            upgrade_landmark(index, v)
            landmarks.add(v)
        for t in range(g.n):
            assert index.distance(s, t) == truth[t]
