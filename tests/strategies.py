"""Hypothesis strategies for structured graph inputs.

The seed-driven :func:`conftest.random_graph` covers Erdős–Rényi-flavoured
inputs well; these composite strategies deliberately generate *structured*
topologies — trees with chords, stars of cliques, long weighted chains —
where shortest-path ties, bottlenecks and hub blocking behave very
differently, plus a matched landmark set.  Used by
``test_structured_property.py`` to diversify the canonicity fuzzing.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.graphs import Graph


@st.composite
def tree_with_chords(draw) -> Graph:
    """A random tree plus a few chord edges (sparse, high diameter)."""
    n = draw(st.integers(4, 24))
    rng = random.Random(draw(st.integers(0, 2**20)))
    weighted = draw(st.booleans())
    g = Graph(n, unweighted=not weighted)

    def weight() -> float:
        return float(rng.randint(1, 7)) if weighted else 1.0

    for v in range(1, n):
        g.add_edge(v, rng.randrange(v), weight())
    for _ in range(draw(st.integers(0, n // 3))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, weight())
    return g


@st.composite
def star_of_cliques(draw) -> Graph:
    """Small cliques joined through a central hub (community structure)."""
    cliques = draw(st.integers(2, 4))
    size = draw(st.integers(2, 4))
    rng = random.Random(draw(st.integers(0, 2**20)))
    n = 1 + cliques * size
    g = Graph(n, unweighted=True)
    for c in range(cliques):
        members = [1 + c * size + i for i in range(size)]
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                g.add_edge(a, b, 1.0)
        g.add_edge(0, rng.choice(members), 1.0)
    return g


@st.composite
def weighted_chain_with_shortcuts(draw) -> Graph:
    """A long chain plus shortcut edges: rich in path-length ties."""
    n = draw(st.integers(5, 20))
    rng = random.Random(draw(st.integers(0, 2**20)))
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, float(rng.randint(1, 3)))
    for _ in range(draw(st.integers(1, 4))):
        a = rng.randrange(n - 2)
        b = rng.randrange(a + 2, n)
        if not g.has_edge(a, b):
            # exact chord weight often equals the chain distance -> ties
            g.add_edge(a, b, float(b - a))
    return g


structured_graphs = st.one_of(
    tree_with_chords(), star_of_cliques(), weighted_chain_with_shortcuts()
)


@st.composite
def graph_with_landmarks(draw):
    """A structured graph plus a random nonempty landmark subset."""
    g = draw(structured_graphs)
    k = draw(st.integers(1, max(1, g.n // 3)))
    rng = random.Random(draw(st.integers(0, 2**20)))
    landmarks = sorted(rng.sample(range(g.n), k))
    return g, landmarks
