"""Tests for experiment-result export."""

import csv
import io
import json

import pytest

from repro.experiments.export import (
    G1_COLUMNS,
    G2_COLUMNS,
    g1_rows,
    g2_rows,
    write_csv,
    write_json,
)
from repro.experiments.harness import G1Result, G2Result


@pytest.fixture
def g1_result():
    return G1Result(
        dataset="LUX",
        landmarks=40,
        sigma=10,
        t_build=2.0,
        t_fdyn=0.01,
        label_entries_dyn=1234,
        label_entries_rebuilt=1234,
    )


@pytest.fixture
def g2_result():
    return G2Result(
        dataset="NW",
        landmarks=100,
        sigma=25,
        queries=2000,
        cmt_fdyn=3.0,
        cmt_chgsp=90.0,
    )


class TestRows:
    def test_g1_row_contents(self, g1_result):
        (row,) = g1_rows([g1_result])
        assert tuple(row) == G1_COLUMNS
        assert row["speedup"] == pytest.approx(200.0)

    def test_g2_row_contents(self, g2_result):
        (row,) = g2_rows([g2_result])
        assert tuple(row) == G2_COLUMNS
        assert row["amr_fdyn"] == pytest.approx(0.0015)
        assert row["amr_chgsp"] == pytest.approx(0.045)

    def test_g1_work_counters_exported(self):
        res = G1Result(
            dataset="LUX",
            landmarks=40,
            sigma=10,
            t_build=2.0,
            t_fdyn=0.01,
            label_entries_dyn=1,
            label_entries_rebuilt=1,
            settled=300,
            swept=150,
            pruned=50,
        )
        (row,) = g1_rows([res])
        assert row["settled"] == 300
        assert row["swept"] == 150
        assert row["pruned"] == 50
        assert row["work_per_update"] == pytest.approx(50.0)

    def test_g2_work_counters_exported(self, g2_result):
        # counter fields were appended with defaults — old constructions
        # like the fixture still export, as zeroes
        (row,) = g2_rows([g2_result])
        assert row["settled"] == 0 and row["swept"] == 0 and row["pruned"] == 0


class TestWriters:
    def test_csv_roundtrip(self, g1_result, tmp_path):
        path = tmp_path / "g1.csv"
        write_csv(g1_rows([g1_result]), path, columns=G1_COLUMNS)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["dataset"] == "LUX"
        assert float(rows[0]["t_build"]) == 2.0

    def test_csv_to_stream(self, g2_result):
        buf = io.StringIO()
        write_csv(g2_rows([g2_result]), buf)
        assert buf.getvalue().startswith("dataset,landmarks")

    def test_csv_empty_rejected(self):
        with pytest.raises(ValueError):
            write_csv([], io.StringIO())

    def test_json_roundtrip(self, g1_result, g2_result, tmp_path):
        path = tmp_path / "all.json"
        write_json(g1_rows([g1_result]) + g2_rows([g2_result]), path)
        data = json.loads(path.read_text())
        assert len(data) == 2
        assert data[1]["dataset"] == "NW"

    def test_json_to_stream(self, g1_result):
        buf = io.StringIO()
        write_json(g1_rows([g1_result]), buf)
        assert json.loads(buf.getvalue())[0]["landmarks"] == 40


class TestResultProperties:
    def test_zero_update_time_gives_infinite_speedup(self):
        res = G1Result("X", 1, 0, t_build=1.0, t_fdyn=0.0,
                       label_entries_dyn=0, label_entries_rebuilt=0)
        assert res.speedup == float("inf")

    def test_amortized_definitions(self, g2_result):
        assert g2_result.amr_fdyn * g2_result.queries == pytest.approx(
            g2_result.cmt_fdyn
        )
