"""Tests for dataset stand-ins, update sequences and query workloads."""

import pytest

from repro.core import DynamicHCL
from repro.errors import DatasetError
from repro.graphs import single_source_distances
from repro.workloads import (
    TABLE1_DATASETS,
    dataset_names,
    dataset_spec,
    decremental_update_sequence,
    incremental_update_sequence,
    make_dataset,
    mixed_update_sequence,
    random_query_pairs,
)


class TestDatasets:
    def test_registry_matches_paper_rows(self):
        assert dataset_names() == [
            "ERD", "LUX", "CAI", "UK-W", "NW", "NE", "YAH",
            "ITA", "DEU", "U-BAR", "W-BAR", "USA", "TWI",
        ]

    def test_registry_complete(self):
        # 13 rows, exactly as in the paper's Table 1 (whose own ordering is
        # only *approximately* sorted by |V| — U-BAR/W-BAR precede USA).
        assert len(TABLE1_DATASETS) == 13
        assert len({spec.name for spec in TABLE1_DATASETS}) == 13

    @pytest.mark.parametrize("name", ["LUX", "ERD", "YAH", "U-BAR"])
    def test_build_small_scale(self, name):
        g = make_dataset(name, scale=0.05, seed=1)
        spec = dataset_spec(name)
        assert g.n > 0
        assert g.unweighted != spec.weighted
        # connected (the generators guarantee it)
        assert all(d != float("inf") for d in single_source_distances(g, 0))

    def test_weighted_flag_respected(self):
        g = make_dataset("NW", scale=0.05)
        assert not g.unweighted
        assert any(w != 1.0 for _, _, w in g.edges())

    def test_deterministic(self):
        a = make_dataset("CAI", scale=0.05, seed=3)
        b = make_dataset("CAI", scale=0.05, seed=3)
        assert a == b

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset("NOPE")
        with pytest.raises(DatasetError):
            dataset_spec("NOPE")

    def test_sparse_flags(self):
        assert dataset_spec("LUX").sparse
        assert not dataset_spec("TWI").sparse


class TestUpdateSequences:
    def test_mixed_default_sigma(self):
        updates = mixed_update_sequence(100, list(range(40)), seed=1)
        assert len(updates) == 10  # |R| // 4
        assert sum(u.kind == "add" for u in updates) == 5
        assert sum(u.kind == "remove" for u in updates) == 5

    def test_mixed_is_feasible_when_replayed(self):
        from conftest import random_graph

        g = random_graph(8, n_lo=20, n_hi=30)
        landmarks = list(range(0, g.n, 3))
        updates = mixed_update_sequence(g.n, landmarks, sigma=8, seed=2)
        dyn = DynamicHCL.build(g, landmarks)
        dyn.apply_sequence(updates)  # raises if any update is infeasible

    def test_mixed_deterministic(self):
        a = mixed_update_sequence(50, list(range(20)), seed=5)
        b = mixed_update_sequence(50, list(range(20)), seed=5)
        assert a == b

    def test_sigma_rounded_even(self):
        updates = mixed_update_sequence(100, list(range(40)), sigma=7, seed=0)
        assert len(updates) == 6

    def test_infeasible_insertions_rejected(self):
        with pytest.raises(DatasetError):
            mixed_update_sequence(5, list(range(4)), sigma=10, seed=0)

    def test_incremental(self):
        updates = incremental_update_sequence(30, [0, 1], 5, seed=1)
        assert all(u.kind == "add" for u in updates)
        assert len(updates) == 5
        assert all(u.vertex not in (0, 1) for u in updates)

    def test_decremental(self):
        updates = decremental_update_sequence(30, list(range(10)), 4, seed=1)
        assert all(u.kind == "remove" for u in updates)
        assert len({u.vertex for u in updates}) == 4

    def test_decremental_too_many_rejected(self):
        with pytest.raises(DatasetError):
            decremental_update_sequence(30, [1, 2], 5, seed=0)

    def test_out_of_range_landmark_rejected(self):
        with pytest.raises(DatasetError):
            mixed_update_sequence(5, [9], seed=0)


class TestQueryPairs:
    def test_count_and_distinctness(self):
        pairs = random_query_pairs(50, 200, seed=1)
        assert len(pairs) == 200
        assert all(s != t for s, t in pairs)
        assert all(0 <= s < 50 and 0 <= t < 50 for s, t in pairs)

    def test_exclusion(self):
        pairs = random_query_pairs(10, 100, seed=2, exclude=[0, 1, 2])
        assert all(s > 2 and t > 2 for s, t in pairs)

    def test_deterministic(self):
        assert random_query_pairs(20, 30, seed=7) == random_query_pairs(20, 30, seed=7)

    def test_too_few_candidates_rejected(self):
        with pytest.raises(DatasetError):
            random_query_pairs(3, 5, exclude=[0, 1])


class TestZipfQueryPairs:
    def test_skew_concentrates_mass(self):
        from collections import Counter

        from repro.workloads import zipf_query_pairs

        pairs = zipf_query_pairs(200, 2000, alpha=1.2, seed=1)
        counts = Counter(v for p in pairs for v in p)
        top_share = sum(c for _, c in counts.most_common(10)) / (2 * len(pairs))
        assert top_share > 0.3  # top 5% of vertices take >30% of traffic

    def test_zero_alpha_is_roughly_uniform(self):
        from collections import Counter

        from repro.workloads import zipf_query_pairs

        pairs = zipf_query_pairs(50, 3000, alpha=0.0, seed=2)
        counts = Counter(v for p in pairs for v in p)
        assert max(counts.values()) < 4 * min(counts.values())

    def test_validation(self):
        from repro.workloads import zipf_query_pairs

        with pytest.raises(DatasetError):
            zipf_query_pairs(10, 5, alpha=-1.0)
        with pytest.raises(DatasetError):
            zipf_query_pairs(2, 5, exclude=[0])

    def test_no_self_pairs_and_deterministic(self):
        from repro.workloads import zipf_query_pairs

        a = zipf_query_pairs(30, 200, seed=9)
        b = zipf_query_pairs(30, 200, seed=9)
        assert a == b
        assert all(s != t for s, t in a)
