"""Parallel-build resilience: retries and serial fallback stay byte-exact."""

import io

import pytest

from conftest import grid_graph, random_graph
from repro.core import build_hcl
from repro.core.build import build_hcl_parallel
from repro.core.serialization import save_index_binary
from repro.testing import WorkerFault, inject_worker_fault


def serialized(index) -> bytes:
    buf = io.BytesIO()
    save_index_binary(index, buf)
    return buf.getvalue()


@pytest.fixture(scope="module")
def workload():
    g = grid_graph(5, 6)
    landmarks = [0, 7, 14, 21, 29]
    return g, landmarks, serialized(build_hcl(g, landmarks))


class TestFaultFreePath:
    def test_parallel_matches_serial_bytes(self, workload):
        g, landmarks, expected = workload
        index = build_hcl_parallel(g, landmarks, workers=3)
        assert serialized(index) == expected

    def test_single_worker_short_circuits(self, workload):
        g, landmarks, expected = workload
        assert serialized(build_hcl_parallel(g, landmarks, workers=1)) == expected


class TestInjectedWorkerFaults:
    def test_raising_task_is_retried(self, workload):
        g, landmarks, expected = workload
        with inject_worker_fault(WorkerFault("raise", index=2)):
            index = build_hcl_parallel(g, landmarks, workers=3)
        assert serialized(index) == expected

    def test_killed_worker_is_retried(self, workload):
        g, landmarks, expected = workload
        with inject_worker_fault(WorkerFault("kill", index=1)):
            index = build_hcl_parallel(g, landmarks, workers=3)
        assert serialized(index) == expected

    def test_raise_on_every_attempt_falls_back_to_serial(self, workload):
        g, landmarks, expected = workload
        fault = WorkerFault("raise", index=3, attempts=tuple(range(100)))
        with inject_worker_fault(fault):
            index = build_hcl_parallel(g, landmarks, workers=3)
        assert serialized(index) == expected

    def test_kill_on_every_attempt_falls_back_to_serial(self, workload):
        g, landmarks, expected = workload
        fault = WorkerFault("kill", index=0, attempts=tuple(range(100)))
        with inject_worker_fault(fault):
            index = build_hcl_parallel(g, landmarks, workers=3)
        assert serialized(index) == expected

    def test_zero_retries_still_completes_serially(self, workload):
        g, landmarks, expected = workload
        fault = WorkerFault("raise", index=2, attempts=tuple(range(100)))
        with inject_worker_fault(fault):
            index = build_hcl_parallel(
                g, landmarks, workers=3, max_retries=0
            )
        assert serialized(index) == expected


@pytest.mark.slow
class TestFaultSweep:
    """Heavier sweep: every task index, both fault kinds, random graphs."""

    @pytest.mark.parametrize("kind", ["raise", "kill"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_every_task_position(self, kind, seed):
        g = random_graph(seed + 200, n_lo=20, n_hi=30)
        landmarks = sorted({0, g.n // 3, g.n // 2, g.n - 1})
        expected = serialized(build_hcl(g, landmarks))
        for i in range(len(landmarks)):
            with inject_worker_fault(WorkerFault(kind, index=i)):
                index = build_hcl_parallel(g, landmarks, workers=2)
            assert serialized(index) == expected, (kind, i)
