"""Tests that the invariant checkers actually detect corruption."""

import pytest

from conftest import cycle_graph, path_graph
from repro.core import (
    assert_canonical,
    build_hcl,
    canonical_index,
    check_cover_property,
    check_highway_exact,
    check_minimality,
)
from repro.errors import CoverPropertyError


class TestDetection:
    def test_clean_index_passes_all(self):
        index = build_hcl(cycle_graph(8), [0, 4])
        check_highway_exact(index)
        check_cover_property(index)
        check_minimality(index)
        assert_canonical(index)

    def test_wrong_highway_detected(self):
        index = build_hcl(cycle_graph(8), [0, 4])
        index.highway.set_distance(0, 4, 1.0)
        with pytest.raises(CoverPropertyError):
            check_highway_exact(index)
        with pytest.raises(CoverPropertyError):
            assert_canonical(index)

    def test_missing_entry_detected(self):
        index = build_hcl(path_graph(5), [2])
        index.labeling.remove_entry(0, 2)
        with pytest.raises(CoverPropertyError):
            check_cover_property(index, pairs=[(0, 4)])
        with pytest.raises(CoverPropertyError):
            assert_canonical(index)

    def test_superfluous_entry_detected(self):
        index = build_hcl(path_graph(5), [1, 2])
        # (2, 2.0) at vertex 0 is superfluous (the path crosses landmark 1).
        index.labeling.add_entry(0, 2, 2.0)
        with pytest.raises(CoverPropertyError):
            check_minimality(index)

    def test_wrong_distance_entry_detected(self):
        index = build_hcl(path_graph(5), [2])
        index.labeling.add_entry(0, 2, 9.0)
        with pytest.raises(CoverPropertyError):
            assert_canonical(index)


class TestCanonicalIndex:
    def test_same_as_build(self):
        g = cycle_graph(6)
        assert canonical_index(g, [3, 0]).structurally_equal(build_hcl(g, [0, 3]))

    def test_empty_landmarks(self):
        index = canonical_index(path_graph(3), [])
        assert index.landmarks == set()
        check_cover_property(index)  # vacuously true
