"""Tests for HCLIndex: QUERY semantics, exact distances, stats."""

import math

import pytest

from conftest import cycle_graph, grid_graph, path_graph, random_graph
from repro.core import HCLIndex, Highway, Labeling, build_hcl
from repro.core.invariants import brute_force_landmark_constrained
from repro.errors import LandmarkError, VertexError
from repro.graphs import single_source_distances


class TestQuery:
    def test_query_is_landmark_constrained(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        # 2 -> 4 directly is 2, but through landmark 0 it is 2 + 2 = 4.
        assert index.query(2, 4) == 4.0
        assert index.distance(2, 4) == 2.0

    def test_query_empty_label_is_inf(self):
        g = path_graph(3)
        g.add_vertex()  # isolated vertex 3
        index = build_hcl(g, [1])
        assert index.query(0, 3) == math.inf

    def test_query_from_landmark_matches_general(self):
        g = grid_graph(4, 4)
        index = build_hcl(g, [0, 15])
        for t in range(16):
            assert index.query_from_landmark(0, t) == index.query(0, t)

    @pytest.mark.parametrize("seed", range(6))
    def test_query_matches_bruteforce(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 5 == 0]
        index = build_hcl(g, landmarks)
        for s in range(0, g.n, 3):
            for t in range(1, g.n, 4):
                expected = brute_force_landmark_constrained(g, landmarks, s, t)
                assert index.query(s, t) == expected, (s, t)


class TestDistance:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_distance(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 4 == 2]
        index = build_hcl(g, landmarks)
        for s in range(0, g.n, 2):
            dist = single_source_distances(g, s)
            for t in range(g.n):
                assert index.distance(s, t) == dist[t], (s, t)

    def test_distance_between_landmarks_reads_highway(self):
        g = cycle_graph(8)
        index = build_hcl(g, [0, 4])
        assert index.distance(0, 4) == 4.0

    def test_distance_same_vertex(self):
        index = build_hcl(path_graph(3), [1])
        assert index.distance(2, 2) == 0.0


class TestBookkeeping:
    def test_stats(self):
        g = path_graph(5)
        index = build_hcl(g, [2])
        stats = index.stats()
        assert stats.landmarks == 1
        assert stats.label_entries == 5
        assert stats.highway_cells == 1
        assert stats.total_entries == 6
        assert stats.max_label_size == 1

    def test_covering_landmarks(self):
        g = path_graph(5)
        index = build_hcl(g, [1, 3])
        assert index.covering_landmarks(0) == {1}
        assert index.covering_landmarks(2) == {1, 3}

    def test_is_landmark(self):
        index = build_hcl(path_graph(3), [1])
        assert index.is_landmark(1)
        assert not index.is_landmark(0)

    def test_copy_shares_graph_copies_index(self):
        g = path_graph(4)
        index = build_hcl(g, [1])
        clone = index.copy()
        assert clone.graph is index.graph
        clone.labeling.add_entry(0, 1, 99.0)
        assert index.labeling.entry(0, 1) != 99.0

    def test_structural_equality(self):
        g = path_graph(4)
        a = build_hcl(g, [1])
        b = build_hcl(g, [1])
        assert a.structurally_equal(b)
        b.labeling.remove_entry(3, 1)
        assert not a.structurally_equal(b)


class TestValidation:
    def test_labeling_size_mismatch_rejected(self):
        g = path_graph(3)
        with pytest.raises(VertexError):
            HCLIndex(g, Highway(), Labeling(7))

    def test_landmark_outside_graph_rejected(self):
        g = path_graph(3)
        h = Highway()
        h.add_landmark(9)
        with pytest.raises(LandmarkError):
            HCLIndex(g, h, Labeling(3))
