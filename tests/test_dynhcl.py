"""Tests for the DynamicHCL facade."""

import pytest

from conftest import cycle_graph, path_graph
from repro.core import DynamicHCL, LandmarkUpdate, assert_canonical
from repro.errors import LandmarkError


class TestFacade:
    def test_build_and_query(self):
        dyn = DynamicHCL.build(path_graph(5), [2])
        assert dyn.landmarks == {2}
        assert dyn.query(0, 4) == 4.0
        assert dyn.distance(0, 4) == 4.0

    def test_add_remove_log(self):
        dyn = DynamicHCL.build(cycle_graph(6), [0])
        dyn.add_landmark(3)
        dyn.remove_landmark(0)
        assert dyn.landmarks == {3}
        assert dyn.log.count == 2
        kinds = [rec.update.kind for rec in dyn.log.records]
        assert kinds == ["add", "remove"]
        assert dyn.log.total_seconds >= 0.0
        assert dyn.log.mean_seconds >= 0.0

    def test_replace_landmark(self):
        dyn = DynamicHCL.build(cycle_graph(6), [0])
        dyn.replace_landmark(0, 3)
        assert dyn.landmarks == {3}
        assert_canonical(dyn.index)

    def test_apply_single_update(self):
        dyn = DynamicHCL.build(path_graph(4), [1])
        rec = dyn.apply(LandmarkUpdate("add", 3))
        assert rec.update.vertex == 3
        assert dyn.landmarks == {1, 3}

    def test_apply_sequence_returns_sublog(self):
        dyn = DynamicHCL.build(path_graph(6), [2])
        updates = [LandmarkUpdate("add", 4), LandmarkUpdate("remove", 2)]
        log = dyn.apply_sequence(updates)
        assert log.count == 2
        assert dyn.landmarks == {4}
        assert_canonical(dyn.index)

    def test_rebuild_matches_dynamic(self):
        dyn = DynamicHCL.build(cycle_graph(8), [0, 4])
        dyn.add_landmark(2)
        dyn.remove_landmark(4)
        fresh = dyn.rebuild()
        assert dyn.index.structurally_equal(fresh)

    def test_invalid_update_kind(self):
        with pytest.raises(LandmarkError):
            LandmarkUpdate("toggle", 1)

    def test_errors_propagate(self):
        dyn = DynamicHCL.build(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            dyn.add_landmark(1)
        with pytest.raises(LandmarkError):
            dyn.remove_landmark(0)


class TestEmptyLog:
    def test_mean_of_empty_log(self):
        dyn = DynamicHCL.build(path_graph(3), [1])
        assert dyn.log.mean_seconds == 0.0
        assert dyn.log.total_seconds == 0.0


class TestLogStatistics:
    def test_percentiles_and_max(self):
        dyn = DynamicHCL.build(cycle_graph(10), [0])
        for v in (3, 5, 7):
            dyn.add_landmark(v)
        log = dyn.log
        assert log.max_seconds >= log.percentile_seconds(0.5) > 0.0
        assert log.percentile_seconds(0.0) <= log.percentile_seconds(1.0)
        assert log.percentile_seconds(1.0) == log.max_seconds

    def test_percentile_validation(self):
        import pytest as _pytest

        dyn = DynamicHCL.build(cycle_graph(4), [0])
        with _pytest.raises(ValueError):
            dyn.log.percentile_seconds(1.5)

    def test_empty_log_statistics(self):
        dyn = DynamicHCL.build(cycle_graph(4), [0])
        assert dyn.log.max_seconds == 0.0
        assert dyn.log.percentile_seconds(0.9) == 0.0
        assert dyn.log.settled == 0
        assert dyn.log.swept == 0
        assert dyn.log.mean_work == 0.0

    def test_work_counters_aggregate_per_kind(self):
        dyn = DynamicHCL.build(cycle_graph(10), [0])
        dyn.add_landmark(5)
        dyn.remove_landmark(0)
        log = dyn.log
        # totals match a by-hand sum over the per-update stats
        assert log.settled == sum(
            getattr(rec.stats, "settled", 0) for rec in log.records
        )
        assert log.swept == sum(
            getattr(rec.stats, "swept", 0) for rec in log.records
        )
        assert log.settled > 0  # the upgrade settled some affected set
        assert log.swept > 0  # the downgrade swept some vertices
        assert log.mean_work == pytest.approx(
            (log.settled + log.swept + log.pruned) / log.count
        )
