"""Unit tests for the undirected Graph structure."""

import pytest

from repro.errors import EdgeError, VertexError, WeightError
from repro.graphs import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert g.average_degree == 0.0

    def test_vertices_range(self):
        g = Graph(4)
        assert list(g.vertices()) == [0, 1, 2, 3]
        assert len(g) == 4

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(VertexError):
            Graph(-1)

    def test_add_vertex_appends(self):
        g = Graph(2)
        assert g.add_vertex() == 2
        assert g.n == 3
        assert g.degree(2) == 0

    def test_from_edges_skips_duplicates(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (1, 2), (1, 1)])
        assert g.m == 2

    def test_from_edges_with_weights(self):
        g = Graph.from_edges(2, [(0, 1, 2.5)])
        assert g.edge_weight(0, 1) == 2.5


class TestEdges:
    def test_add_edge_is_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2, 4.0)
        assert (2, 4.0) in g.neighbors(0)
        assert (0, 4.0) in g.neighbors(2)
        assert g.m == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(EdgeError):
            g.add_edge(1, 1, 1.0)

    def test_duplicate_edge_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(EdgeError):
            g.add_edge(1, 0, 2.0)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(VertexError):
            g.add_edge(0, 5, 1.0)

    @pytest.mark.parametrize("bad", [0, -1.5, float("inf"), float("nan"), "x"])
    def test_invalid_weight_rejected(self, bad):
        g = Graph(2)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, bad)

    def test_unweighted_enforces_unit_weights(self):
        g = Graph(2, unweighted=True)
        with pytest.raises(WeightError):
            g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 1)
        assert g.m == 1

    def test_remove_edge_returns_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 7.0)
        assert g.remove_edge(1, 0) == 7.0
        assert g.m == 0
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        g = Graph(2)
        with pytest.raises(EdgeError):
            g.remove_edge(0, 1)

    def test_set_weight(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0)
        assert g.set_weight(0, 1, 5.0) == 3.0
        assert g.edge_weight(0, 1) == 5.0
        assert g.m == 1

    def test_edge_weight_missing_raises(self):
        g = Graph(3)
        with pytest.raises(EdgeError):
            g.edge_weight(0, 2)

    def test_edges_iterates_once_per_edge(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        edges = sorted((u, v) for u, v, _ in g.edges())
        assert edges == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_has_edge_uses_smaller_adjacency(self):
        g = Graph(5)
        for v in range(1, 5):
            g.add_edge(0, v, 1.0)
        assert g.has_edge(0, 3)
        assert not g.has_edge(1, 2)


class TestMetrics:
    def test_degree_and_average(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1
        assert g.average_degree == pytest.approx(1.5)


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        h = g.copy()
        h.remove_edge(0, 1)
        assert g.m == 2
        assert h.m == 1

    def test_equality_ignores_adjacency_order(self):
        a = Graph.from_edges(3, [(0, 1), (0, 2)])
        b = Graph.from_edges(3, [(0, 2), (0, 1)])
        assert a == b

    def test_inequality_on_weight(self):
        a = Graph.from_edges(2, [(0, 1, 1.0)])
        b = Graph.from_edges(2, [(0, 1, 2.0)])
        assert a != b
