"""Tests for landmark selection policies."""

import pytest

from repro.core import (
    select_by_approx_betweenness,
    select_by_degree,
    select_landmarks,
    select_random,
)
from repro.core.selection import selection_policies
from repro.errors import DatasetError
from repro.graphs import Graph, barabasi_albert, road_grid


def star_graph(leaves: int) -> Graph:
    g = Graph(leaves + 1, unweighted=True)
    for v in range(1, leaves + 1):
        g.add_edge(0, v, 1.0)
    return g


class TestDegree:
    def test_picks_hub_first(self):
        g = star_graph(5)
        assert select_by_degree(g, 1) == [0]

    def test_count_and_distinct(self):
        g = barabasi_albert(60, 2, seed=0)
        chosen = select_by_degree(g, 10)
        assert len(chosen) == len(set(chosen)) == 10

    def test_respects_degree_order(self):
        g = barabasi_albert(60, 2, seed=0)
        chosen = select_by_degree(g, 5)
        worst = min(g.degree(v) for v in chosen)
        rest = [g.degree(v) for v in g.vertices() if v not in set(chosen)]
        assert all(worst >= d for d in rest)


class TestBetweenness:
    def test_bridge_vertex_scores_high(self):
        # Two stars joined through vertex 6: 6 lies on most shortest paths.
        g = Graph(7, unweighted=True)
        for v in (1, 2):
            g.add_edge(0, v, 1.0)
        for v in (4, 5):
            g.add_edge(3, v, 1.0)
        g.add_edge(0, 6, 1.0)
        g.add_edge(6, 3, 1.0)
        chosen = select_by_approx_betweenness(g, 3, pivots=7, seed=1)
        assert 6 in chosen

    def test_count(self):
        g = road_grid(8, 8, seed=1)
        assert len(select_by_approx_betweenness(g, 12, seed=0)) == 12

    def test_needs_positive_pivots(self):
        g = star_graph(3)
        with pytest.raises(DatasetError):
            select_by_approx_betweenness(g, 2, pivots=0)


class TestRandom:
    def test_deterministic_given_seed(self):
        g = road_grid(6, 6, seed=0)
        assert select_random(g, 5, seed=3) == select_random(g, 5, seed=3)

    def test_distinct(self):
        g = road_grid(6, 6, seed=0)
        chosen = select_random(g, 10, seed=1)
        assert len(set(chosen)) == 10


class TestDispatch:
    def test_auto_prefers_degree_for_unweighted(self):
        g = star_graph(5)
        assert select_landmarks(g, 1, policy="auto") == select_by_degree(g, 1)

    def test_auto_prefers_betweenness_for_weighted(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 2.0)
        got = select_landmarks(g, 1, policy="auto", seed=0)
        assert got == select_by_approx_betweenness(g, 1, seed=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(DatasetError):
            select_landmarks(star_graph(3), 1, policy="galactic")

    def test_too_many_landmarks_rejected(self):
        with pytest.raises(DatasetError):
            select_landmarks(star_graph(3), 99)

    def test_policy_list(self):
        assert "degree" in selection_policies()
        assert "auto" in selection_policies()
