"""Differential tests for the compiled query plan (``repro.core.plan``).

The contract is *bitwise* equality, not approximation: every answer the
plan path produces — constrained ``QUERY``, exact ``distance``,
``query_batch``, budgeted/degraded variants — must be the identical
float the authoritative dict path produces, on integer- and
float-weighted graphs, before and after interleaved landmark
reconfigurations, in-process and through the pool.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from conftest import grid_graph, path_graph, random_graph
from repro.budget import Budget, DegradedResult
from repro.core import DynamicHCL, QueryPlan, build_hcl, query_batch
from repro.core.batchquery import _PlanBatchSolver
from repro.core.cache import CachedQueryEngine
from repro.core.index import PLAN_COMPILE_AFTER
from repro.core.plan import SearchWorkspace
from repro.core.transaction import IndexTransaction
from repro.errors import DeadlineExceeded, RequestError
from repro.graphs import Graph
from repro.workloads import random_query_pairs, zipf_query_pairs

INF = math.inf


def float_graph(seed: int, n_lo: int = 15, n_hi: int = 40) -> Graph:
    """Connected-ish random graph with irregular float weights."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = Graph(n)
    for v in range(1, n):  # spanning tree keeps most pairs reachable
        g.add_edge(v, rng.randrange(v), rng.uniform(0.1, 3.7))
    extra = {(u, v) for u in range(n) for v in range(u + 1, n)}
    extra -= {tuple(sorted((u, v))) for u in range(n) for v, _ in g.neighbors(u)}
    for u, v in rng.sample(sorted(extra), min(len(extra), 2 * n)):
        g.add_edge(u, v, rng.uniform(0.1, 3.7))
    return g


def twin_indexes(g: Graph, landmarks):
    """The same index twice: one pinned to dicts, one plan-eager."""
    dict_index = build_hcl(g, landmarks)
    dict_index.plan_mode = "off"
    plan_index = build_hcl(g, landmarks)
    plan_index.plan_mode = "eager"
    return dict_index, plan_index


def same_float(a: float, b: float) -> bool:
    """Bitwise equality with nan == nan (inf - inf label arithmetic)."""
    return a == b or (a != a and b != b)


def all_pairs(n: int, stride: int = 1):
    return [(s, t) for s in range(0, n, stride) for t in range(0, n, stride)]


class TestDifferentialSweep:
    @pytest.mark.parametrize("seed", range(6))
    def test_query_and_distance_int_graphs(self, seed):
        g = random_graph(seed, n_lo=12, n_hi=30, weighted=True)
        rng = random.Random(seed + 500)
        landmarks = sorted(rng.sample(range(g.n), rng.randint(1, g.n // 3)))
        a, b = twin_indexes(g, landmarks)
        for s, t in all_pairs(g.n):
            assert same_float(a.query(s, t), b.query(s, t))
            assert same_float(a.distance(s, t), b.distance(s, t))

    @pytest.mark.parametrize("seed", range(6))
    def test_query_and_distance_float_graphs(self, seed):
        g = float_graph(seed)
        rng = random.Random(seed + 500)
        landmarks = sorted(rng.sample(range(g.n), rng.randint(1, g.n // 3)))
        a, b = twin_indexes(g, landmarks)
        for s, t in all_pairs(g.n):
            assert same_float(a.query(s, t), b.query(s, t))
            assert same_float(a.distance(s, t), b.distance(s, t))

    @pytest.mark.parametrize("seed", range(4))
    def test_query_batch_constrained_and_exact(self, seed):
        g = float_graph(seed, n_lo=20, n_hi=35)
        rng = random.Random(seed + 7)
        landmarks = sorted(rng.sample(range(g.n), 5))
        a, b = twin_indexes(g, landmarks)
        # Zipf skew drives endpoints past the g-row heat threshold.
        pairs = zipf_query_pairs(g.n, 400, alpha=1.3, seed=seed)
        assert query_batch(a, pairs, plan="off") == query_batch(
            b, pairs, plan="auto"
        )
        assert query_batch(a, pairs, exact=True, plan="off") == query_batch(
            b, pairs, exact=True, plan="auto"
        )

    def test_unreachable_pairs_stay_infinite(self):
        g = Graph(8, unweighted=True)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            g.add_edge(u, v, 1.0)
        for u, v in [(4, 5), (5, 6), (6, 7)]:
            g.add_edge(u, v, 1.0)
        a, b = twin_indexes(g, [1, 2])
        for s, t in all_pairs(8):
            assert same_float(a.query(s, t), b.query(s, t))
            assert same_float(a.distance(s, t), b.distance(s, t))
        assert b.distance(0, 5) == INF

    def test_empty_landmark_set(self):
        g = path_graph(6)
        a, b = twin_indexes(g, [0])
        for index in (a, b):
            index.highway.remove_landmark(0)
            for v in range(6):
                index.labeling.clear_vertex(v)
        for s, t in all_pairs(6):
            assert same_float(a.query(s, t), b.query(s, t))
            assert same_float(a.distance(s, t), b.distance(s, t))


class TestDynamicsInvalidation:
    @pytest.mark.parametrize("floats", [False, True])
    def test_interleaved_add_remove(self, floats):
        g = (
            float_graph(11, n_lo=30, n_hi=30)
            if floats
            else grid_graph(5, 6)
        )
        d_dict = DynamicHCL.build(g, [2, 9])
        d_dict.index.plan_mode = "off"
        d_plan = DynamicHCL.build(g, [2, 9])
        d_plan.index.plan_mode = "eager"
        script = [("add", 14), ("add", 20), ("remove", 2), ("add", 27),
                  ("remove", 20), ("add", 5)]
        for op, v in script:
            for d in (d_dict, d_plan):
                if op == "add":
                    d.add_landmark(v)
                else:
                    d.remove_landmark(v)
            # Every query after a mutation recompiles the plan against
            # the new revision — answers must track the dict path.
            for s, t in all_pairs(g.n, stride=3):
                assert same_float(d_dict.query(s, t), d_plan.query(s, t))
                assert same_float(
                    d_dict.distance(s, t), d_plan.distance(s, t)
                )

    def test_plan_invalidates_on_label_mutation(self):
        g = path_graph(8)
        index = build_hcl(g, [3])
        plan = index.compile_plan()
        assert plan.matches(index)
        index.labeling.add_entry(0, 3, 99.0)
        assert not plan.matches(index)
        assert index.plan() is None

    def test_plan_invalidates_on_highway_mutation(self):
        g = path_graph(8)
        index = build_hcl(g, [2, 6])
        plan = index.compile_plan()
        index.highway.set_distance(2, 6, 123.0)
        assert not plan.matches(index)

    def test_plan_invalidates_on_graph_mutation(self):
        g = path_graph(8)
        index = build_hcl(g, [3])
        plan = index.compile_plan()
        g.add_edge(0, 7, 1.0)
        assert not plan.matches(index)

    def test_plan_invalidates_on_rollback(self):
        """Rollback restores rows *directly*; the rev bump must still land."""
        g = path_graph(8)
        index = build_hcl(g, [3])
        plan = index.compile_plan()
        try:
            with IndexTransaction(index):
                index.labeling.add_entry(0, 3, 99.0)
                index.highway.set_distance(3, 3, 1.0)
                raise DeadlineExceeded("boom")
        except DeadlineExceeded:
            pass
        # value-identical to the pre-transaction state, but the plan must
        # still be dropped: the restore wrote rows behind the mutators.
        assert not plan.matches(index)
        assert index.distance(0, 7) == 7.0

    def test_auto_mode_compiles_after_threshold(self):
        g = grid_graph(4, 5)
        index = build_hcl(g, [0, 19])
        assert index.plan_mode == "auto"
        for _ in range(PLAN_COMPILE_AFTER):
            index.query(1, 18)
        assert index.plan() is None
        index.query(1, 18)  # crosses the threshold
        assert index.plan() is not None

    def test_off_mode_never_compiles(self):
        g = grid_graph(4, 5)
        index = build_hcl(g, [0, 19])
        index.plan_mode = "off"
        for _ in range(5 * PLAN_COMPILE_AFTER):
            index.query(1, 18)
            index.distance(2, 17)
        assert index.plan() is None

    def test_off_mode_pins_dict_path_even_with_compiled_plan(self):
        """'off' must mean off: a valid compiled plan may not serve.

        Observable by poisoning the plan's derived highway rows — with
        ``plan_mode = "off"`` the answers must come from the dicts and
        stay correct; flipping back to "auto" serves the poison.
        """
        g = grid_graph(4, 5)
        index = build_hcl(g, [0, 19])
        want = index.distance(1, 18)
        plan = index.compile_plan()
        plan._hwrows = [[0.0] * plan.k for _ in range(plan.k)]
        index.plan_mode = "off"
        assert index.distance(1, 18) == want
        index.plan_mode = "auto"
        assert index.distance(1, 18) != want  # the poisoned plan served

    def test_copy_does_not_share_plan(self):
        g = grid_graph(4, 5)
        index = build_hcl(g, [0, 19])
        index.plan_mode = "eager"
        index.query(1, 18)
        clone = index.copy()
        assert clone.plan_mode == "eager"
        assert clone.plan() is None  # recompiles on its own structures
        assert clone.query(1, 18) == index.query(1, 18)


class TestBudgetedParity:
    @pytest.mark.parametrize("max_settled", [0, 1, 2, 5, 20, 10_000])
    def test_degraded_results_identical(self, max_settled):
        g = float_graph(3, n_lo=35, n_hi=35)
        rng = random.Random(42)
        landmarks = sorted(rng.sample(range(g.n), 4))
        a, b = twin_indexes(g, landmarks)
        for s, t in all_pairs(g.n, stride=4):
            ra = a.distance(s, t, budget=Budget(max_settled=max_settled))
            rb = b.distance(s, t, budget=Budget(max_settled=max_settled))
            assert type(ra) is type(rb)
            assert same_float(float(ra), float(rb))
            if isinstance(ra, DegradedResult):
                assert ra.is_upper_bound == rb.is_upper_bound
                assert ra.reason == rb.reason

    def test_strict_raises_identically(self):
        g = grid_graph(6, 6)
        a, b = twin_indexes(g, [0, 35])
        with pytest.raises(DeadlineExceeded):
            a.distance(1, 34, budget=Budget(max_settled=1), strict=True)
        with pytest.raises(DeadlineExceeded):
            b.distance(1, 34, budget=Budget(max_settled=1), strict=True)

    def test_budgeted_batch_parity(self):
        g = float_graph(5, n_lo=30, n_hi=30)
        a, b = twin_indexes(g, [1, 8, 17])
        pairs = random_query_pairs(g.n, 60, seed=5)
        got_a = query_batch(
            a, pairs, exact=True, budget=Budget(max_settled=25), plan="off"
        )
        got_b = query_batch(
            b, pairs, exact=True, budget=Budget(max_settled=25), plan="auto"
        )
        assert [float(v) for v in got_a] == [float(v) for v in got_b]
        assert [type(v) for v in got_a] == [type(v) for v in got_b]

    def test_query_charges_budget_identically(self):
        g = grid_graph(5, 5)
        a, b = twin_indexes(g, [0, 24])
        ba, bb = Budget(max_settled=10_000), Budget(max_settled=10_000)
        a.query(1, 23, budget=ba)
        b.query(1, 23, budget=bb)
        assert ba.settled == bb.settled


class TestPlanMechanics:
    def test_pickle_round_trip(self):
        g = float_graph(9, n_lo=25, n_hi=25)
        index = build_hcl(g, [2, 7, 13])
        plan = index.compile_plan()
        clone = pickle.loads(pickle.dumps(plan))
        clone.attach_graph(g)
        for s, t in all_pairs(g.n, stride=2):
            assert same_float(plan.query(s, t), clone.query(s, t))
            assert same_float(plan.distance(s, t), clone.distance(s, t))
        # unpickled plans carry no stamp: they never claim validity
        assert not clone.matches(index)

    def test_pool_with_plan(self):
        g = float_graph(13, n_lo=30, n_hi=30)
        a, b = twin_indexes(g, [1, 11, 21])
        pairs = [(i % g.n, (3 * i + 1) % g.n) for i in range(600)]
        want = query_batch(a, pairs, exact=True, plan="off")
        got = query_batch(
            b, pairs, workers=2, exact=True, min_parallel=10, plan="auto"
        )
        assert want == got

    def test_explicit_plan_argument(self):
        g = grid_graph(5, 5)
        index = build_hcl(g, [0, 24])
        index.plan_mode = "off"
        plan = QueryPlan.compile(index)
        pairs = random_query_pairs(g.n, 40, seed=3)
        assert query_batch(index, pairs, plan=plan) == query_batch(
            index, pairs, plan="off"
        )

    def test_auto_batch_respects_off_mode(self):
        g = grid_graph(5, 5)
        index = build_hcl(g, [0, 24])
        want = query_batch(index, [(1, 23)], exact=True, plan="off")
        plan = index.compile_plan()
        plan._hwrows = [[0.0] * plan.k for _ in range(plan.k)]  # poison
        index.plan_mode = "off"
        assert query_batch(index, [(1, 23)], exact=True, plan="auto") == want

    def test_bad_plan_argument_rejected(self):
        g = path_graph(4)
        index = build_hcl(g, [1])
        with pytest.raises(RequestError):
            query_batch(index, [(0, 3)], plan="definitely-not-a-mode")

    def test_workspace_epoch_isolates_queries(self):
        ws = SearchWorkspace(4)
        assert ws.epoch == 0
        g = path_graph(20, weights=[1.5] * 19)
        index = build_hcl(g, [10])
        index.plan_mode = "eager"
        # back-to-back refinements reuse one workspace; stale distances
        # from query k must be invisible to query k+1
        first = [index.distance(s, t) for s, t in all_pairs(20, stride=2)]
        second = [index.distance(s, t) for s, t in all_pairs(20, stride=2)]
        assert first == second
        plan = index.plan()
        assert plan._ws is not None and plan._ws.epoch > 1

    def test_compiled_rows_sorted_by_slot(self):
        g = random_graph(17, n_lo=15, n_hi=25, weighted=True)
        rng = random.Random(99)
        landmarks = sorted(rng.sample(range(g.n), 4))
        index = build_hcl(g, landmarks)
        plan = index.compile_plan()
        for v in range(g.n):
            slots = [s for _, s in plan._rows[v]]
            assert slots == sorted(slots)
            want = {landmarks[s]: d for d, s in plan._rows[v]}
            assert want == dict(index.labeling.row_items(v))

    def test_incomplete_highway_row_reads_inf(self):
        g = path_graph(6)
        index = build_hcl(g, [0, 5])
        del index.highway._dist[0][5]  # simulate a torn row
        plan = QueryPlan.compile(index)
        i, j = plan.slot_of[0], plan.slot_of[5]
        assert plan._hwrows[i][j] == INF

    def test_mask_cache_tracks_landmark_changes(self):
        g = grid_graph(4, 5)
        dyn = DynamicHCL.build(g, [0, 19])
        dyn.index.plan_mode = "off"
        before = dyn.distance(1, 18)
        assert dyn.index._exclusion_mask()[0]
        dyn.add_landmark(7)
        assert dyn.index._exclusion_mask()[7]  # stamp moved, mask rebuilt
        fresh = DynamicHCL.build(g, [0, 7, 19])
        assert dyn.distance(1, 18) == fresh.distance(1, 18)
        assert isinstance(before, float)

    def test_plan_batch_solver_refines_on_csr(self):
        from repro.graphs.csr import CSRGraph

        g = float_graph(21, n_lo=25, n_hi=25)
        index = build_hcl(g, [3, 9])
        plan = pickle.loads(pickle.dumps(index.compile_plan()))
        solver = _PlanBatchSolver(plan, CSRGraph(g))
        index.plan_mode = "off"
        for s, t in all_pairs(g.n, stride=3):
            assert same_float(solver.exact(s, t), index.distance(s, t))


class TestReadOnlyLabels:
    def test_label_view_rejects_writes(self):
        g = path_graph(5)
        index = build_hcl(g, [2])
        view = index.labeling.label(0)
        with pytest.raises(TypeError):
            view[2] = 0.0
        with pytest.raises(TypeError):
            del view[2]

    def test_label_view_is_live_and_dict_equal(self):
        g = path_graph(5)
        index = build_hcl(g, [2])
        view = index.labeling.label(0)
        assert view == {2: 2.0}
        index.labeling.add_entry(0, 2, 3.0)
        assert view == {2: 3.0}

    def test_row_items_matches_label(self):
        g = random_graph(4, n_lo=10, n_hi=20)
        rng = random.Random(4)
        index = build_hcl(g, sorted(rng.sample(range(g.n), 3)))
        for v in range(g.n):
            items = index.labeling.row_items(v)
            assert dict(items) == dict(index.labeling.label(v))
            assert len(items) == len(index.labeling.label(v))


class TestServiceAndCacheIntegration:
    def test_cached_engine_serves_plan_answers(self):
        g = grid_graph(5, 6)
        dyn = DynamicHCL.build(g, [0, 29])
        dyn.index.plan_mode = "eager"
        engine = CachedQueryEngine(dyn)
        baseline = DynamicHCL.build(g, [0, 29])
        baseline.index.plan_mode = "off"
        for s, t in all_pairs(30, stride=4):
            assert engine.distance(s, t) == baseline.distance(s, t)
            assert engine.distance(s, t) == baseline.distance(s, t)  # hit
        dyn.add_landmark(13)
        baseline.add_landmark(13)
        for s, t in all_pairs(30, stride=4):
            assert engine.distance(s, t) == baseline.distance(s, t)

    def test_health_reports_plan_state(self):
        from repro.service import HCLService

        from repro.core.planvec import default_backend
        from repro.core.shm import shm_available

        svc = HCLService.build(grid_graph(4, 5), [0, 19])
        health = svc.health()
        # ``integrity`` mirrors process-global shm counters; assert its
        # shape rather than values (other tests in the run bump them).
        integrity = health["plan"].pop("integrity")
        assert integrity["auditor"] is None
        assert isinstance(integrity["quarantined_segments"], tuple)
        assert integrity["verified"] >= 0
        assert health["plan"] == {
            "mode": "auto",
            "compiled": False,
            "epochs": None,
            "backend": default_backend(),
            "shm": shm_available(),
        }
        svc._dyn.index.compile_plan()
        assert svc.health()["plan"]["compiled"] is True
