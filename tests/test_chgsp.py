"""Tests for the CH-GSP competitor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import cycle_graph, grid_graph, random_graph
from repro.baselines import CHGSP, multi_dijkstra_landmark_constrained
from repro.errors import LandmarkError, VertexError
from repro.graphs import INF


class TestQueries:
    def test_simple_detour(self):
        engine = CHGSP(cycle_graph(6), landmarks=[0])
        # 2 -> 4 through landmark 0: 2 + 2 = 4.
        assert engine.landmark_constrained_distance(2, 4) == 4.0

    def test_no_landmarks_is_inf(self):
        engine = CHGSP(cycle_graph(4))
        assert engine.landmark_constrained_distance(0, 2) == INF

    def test_landmark_endpoint(self):
        engine = CHGSP(cycle_graph(6), landmarks=[2])
        # s is the landmark: constrained distance equals plain distance.
        assert engine.landmark_constrained_distance(2, 5) == 3.0

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_multi_dijkstra(self, seed):
        g = random_graph(seed, n_lo=8, n_hi=30)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        engine = CHGSP(g, landmarks)
        for s in range(0, g.n, 3):
            for t in range(1, g.n, 3):
                want = multi_dijkstra_landmark_constrained(g, landmarks, s, t)
                assert engine.landmark_constrained_distance(s, t) == want

    def test_plain_distance_matches(self):
        g = grid_graph(4, 4)
        engine = CHGSP(g)
        assert engine.distance(0, 15) == 6.0


class TestDynamics:
    def test_add_remove_landmark(self):
        g = cycle_graph(8)
        engine = CHGSP(g, landmarks=[0])
        engine.add_landmark(4)
        assert engine.landmarks == {0, 4}
        # 3 -> 5 through 4 costs 2; through 0 costs 8.
        assert engine.landmark_constrained_distance(3, 5) == 2.0
        engine.remove_landmark(4)
        assert engine.landmark_constrained_distance(3, 5) == 6.0

    def test_duplicate_add_rejected(self):
        engine = CHGSP(cycle_graph(4), landmarks=[1])
        with pytest.raises(LandmarkError):
            engine.add_landmark(1)

    def test_remove_missing_rejected(self):
        engine = CHGSP(cycle_graph(4))
        with pytest.raises(LandmarkError):
            engine.remove_landmark(0)

    def test_out_of_range_rejected(self):
        engine = CHGSP(cycle_graph(4))
        with pytest.raises(VertexError):
            engine.add_landmark(99)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_property_agrees_with_hcl_query(seed):
    """CH-GSP and DYN-HCL answer identical landmark-constrained queries."""
    import random

    from repro.core import DynamicHCL

    g = random_graph(seed, n_lo=6, n_hi=20)
    rng = random.Random(seed)
    landmarks = sorted(rng.sample(range(g.n), max(1, g.n // 5)))
    engine = CHGSP(g, landmarks)
    dyn = DynamicHCL.build(g, landmarks)
    for _ in range(8):
        s, t = rng.randrange(g.n), rng.randrange(g.n)
        assert engine.landmark_constrained_distance(s, t) == dyn.query(s, t)
