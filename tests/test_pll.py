"""Tests for the Pruned Landmark Labeling baseline."""

import pytest

from conftest import cycle_graph, grid_graph, path_graph, random_graph
from repro.baselines.pll import PrunedLandmarkLabeling
from repro.graphs import INF, single_source_distances


class TestConstruction:
    def test_every_vertex_has_self_entry(self):
        pll = PrunedLandmarkLabeling(cycle_graph(6))
        for v in range(6):
            assert pll.label(v)[v] == 0.0

    def test_custom_order_accepted(self):
        g = path_graph(5)
        pll = PrunedLandmarkLabeling(g, order=[2, 0, 4, 1, 3])
        assert pll.distance(0, 4) == 4.0

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            PrunedLandmarkLabeling(path_graph(3), order=[0, 0, 2])

    def test_pruning_keeps_labels_small(self):
        # On a star, the hub label covers everything: leaves get 2 entries.
        from repro.graphs import Graph

        g = Graph(9, unweighted=True)
        for v in range(1, 9):
            g.add_edge(0, v, 1.0)
        pll = PrunedLandmarkLabeling(g)
        assert pll.average_label_size() <= 2.0
        assert pll.total_entries() == 9 + 8  # self entries + hub entries


class TestQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_exact_on_random_graphs(self, seed):
        g = random_graph(seed, n_lo=5, n_hi=30)
        pll = PrunedLandmarkLabeling(g)
        for s in range(0, g.n, 2):
            dist = single_source_distances(g, s)
            for t in range(g.n):
                assert pll.distance(s, t) == dist[t], (s, t)

    def test_disconnected_is_inf(self):
        g = path_graph(2)
        g.add_vertex()
        pll = PrunedLandmarkLabeling(g)
        assert pll.distance(0, 2) == INF

    def test_same_vertex(self):
        pll = PrunedLandmarkLabeling(grid_graph(3, 3))
        assert pll.distance(4, 4) == 0.0


class TestComparisonWithHCL:
    def test_pll_labels_every_vertex_hcl_only_landmark_region(self):
        """The space trade-off the HCL paper is built on, in miniature."""
        from repro.core import build_hcl

        g = grid_graph(6, 6)
        pll = PrunedLandmarkLabeling(g)
        hcl = build_hcl(g, [0, 35])
        assert hcl.labeling.total_entries() < pll.total_entries()

    def test_agree_on_exact_distances(self):
        from repro.core import build_hcl

        g = random_graph(42, n_lo=10, n_hi=20)
        pll = PrunedLandmarkLabeling(g)
        hcl = build_hcl(g, [v for v in range(g.n) if v % 4 == 0])
        for s in range(g.n):
            for t in range(0, g.n, 3):
                assert pll.distance(s, t) == hcl.distance(s, t)
