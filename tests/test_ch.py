"""Tests for the Contraction Hierarchies substrate."""

import pytest

from conftest import cycle_graph, grid_graph, path_graph, random_graph
from repro.baselines import build_contraction_hierarchy, ch_distance
from repro.baselines.ch import join_search_spaces, upward_search_space
from repro.errors import GraphError
from repro.graphs import INF, single_source_distances


class TestConstruction:
    def test_ranks_are_a_permutation(self):
        g = grid_graph(4, 4)
        ch = build_contraction_hierarchy(g)
        assert sorted(ch.rank) == list(range(g.n))
        assert len(ch.order) == g.n

    def test_upward_edges_point_up(self):
        g = random_graph(3)
        ch = build_contraction_hierarchy(g)
        for v in range(g.n):
            for u, _ in ch.upward[v]:
                assert ch.rank[u] > ch.rank[v]

    def test_path_graph_hierarchy_stays_sparse(self):
        # Contracting a path in edge-difference order yields a balanced
        # hierarchy with fewer than one shortcut per vertex.
        g = path_graph(20)
        ch = build_contraction_hierarchy(g)
        assert ch.shortcuts < g.n

    def test_invalid_budget(self):
        with pytest.raises(GraphError):
            build_contraction_hierarchy(path_graph(3), witness_budget=0)


class TestQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_distance_matches_dijkstra(self, seed):
        g = random_graph(seed, n_lo=5, n_hi=40)
        ch = build_contraction_hierarchy(g)
        for s in range(0, g.n, 3):
            dist = single_source_distances(g, s)
            for t in range(0, g.n, 2):
                assert ch_distance(ch, s, t) == dist[t], (s, t)

    def test_disconnected_pairs_are_inf(self):
        g = path_graph(2)
        g.add_vertex()
        ch = build_contraction_hierarchy(g)
        assert ch_distance(ch, 0, 2) == INF

    def test_same_vertex(self):
        ch = build_contraction_hierarchy(cycle_graph(5))
        assert ch_distance(ch, 2, 2) == 0.0

    def test_small_witness_budget_still_correct(self):
        """A tiny budget inflates shortcuts but never breaks distances."""
        g = random_graph(11, n_lo=10, n_hi=25)
        generous = build_contraction_hierarchy(g, witness_budget=100)
        stingy = build_contraction_hierarchy(g, witness_budget=1)
        assert stingy.shortcuts >= generous.shortcuts
        dist = single_source_distances(g, 0)
        for t in range(g.n):
            assert ch_distance(stingy, 0, t) == dist[t]


class TestSearchSpaces:
    def test_space_contains_source_at_zero(self):
        ch = build_contraction_hierarchy(grid_graph(3, 3))
        space = upward_search_space(ch, 4)
        assert space[4] == 0.0

    def test_join_is_min_over_shared_keys(self):
        assert join_search_spaces({1: 2.0, 2: 5.0}, {2: 1.0, 3: 0.0}) == 6.0
        assert join_search_spaces({1: 1.0}, {2: 1.0}) == INF

    def test_meet_equals_distance(self):
        g = grid_graph(5, 5)
        ch = build_contraction_hierarchy(g)
        dist = single_source_distances(g, 0)
        for t in (6, 12, 24):
            got = join_search_spaces(
                upward_search_space(ch, 0), upward_search_space(ch, t)
            )
            assert got == dist[t]
