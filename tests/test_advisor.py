"""Tests for the workload-driven landmark advisor."""

import pytest

from conftest import cycle_graph, grid_graph, path_graph
from repro.core import build_hcl
from repro.core.advisor import (
    score_landmark_usage,
    suggest_addition,
    suggest_removal,
)
from repro.errors import LandmarkError


class TestSuggestAddition:
    def test_bottleneck_vertex_wins(self):
        # All queries cross the middle of a path: the center scores highest.
        g = path_graph(9)
        index = build_hcl(g, [0])
        queries = [(1, 7), (2, 8), (1, 8), (2, 6)]
        (best, score), *_ = suggest_addition(index, queries)
        # vertices 3..6 lie on every sampled path and tie at the top score
        assert best in (3, 4, 5, 6)
        assert score == 4

    def test_existing_landmarks_excluded(self):
        g = path_graph(9)
        index = build_hcl(g, [4])
        suggestions = suggest_addition(index, [(1, 7), (2, 8)])
        assert all(not index.is_landmark(v) for v, _ in suggestions)

    def test_empty_sample_rejected(self):
        index = build_hcl(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            suggest_addition(index, [])

    def test_top_limit(self):
        g = grid_graph(5, 5)
        index = build_hcl(g, [0])
        queries = [(i, 24 - i) for i in range(5)]
        assert len(suggest_addition(index, queries, top=3)) <= 3

    def test_promoting_suggestion_improves_bound(self):
        from repro.core import upgrade_landmark

        g = path_graph(9)
        index = build_hcl(g, [0])
        queries = [(2, 7), (3, 8)]
        before = sum(index.query(s, t) for s, t in queries)
        (best, _), *_ = suggest_addition(index, queries)
        upgrade_landmark(index, best)
        after = sum(index.query(s, t) for s, t in queries)
        assert after < before


class TestUsageAndRemoval:
    def test_usage_counts_argmin_pair(self):
        g = cycle_graph(8)
        index = build_hcl(g, [0, 4])
        usage = score_landmark_usage(index, [(3, 5)])
        # 3 -> 5 optimum goes through 4 (cost 2), never 0 (cost 6).
        assert usage[4] == 1
        assert usage[0] == 0

    def test_unused_landmark_suggested_first(self):
        g = cycle_graph(8)
        index = build_hcl(g, [0, 4])
        (victim, usage), *_ = suggest_removal(index, [(3, 5)])
        assert victim == 0
        assert usage == 0

    def test_all_landmarks_scored(self):
        g = grid_graph(4, 4)
        index = build_hcl(g, [0, 5, 15])
        usage = score_landmark_usage(index, [(1, 14), (2, 13)])
        assert set(usage) == {0, 5, 15}

    def test_removal_needs_landmarks(self):
        index = build_hcl(path_graph(3), [])
        with pytest.raises(LandmarkError):
            suggest_removal(index, [(0, 2)])

    def test_top_limit(self):
        g = grid_graph(4, 4)
        index = build_hcl(g, [0, 5, 10, 15])
        assert len(suggest_removal(index, [(1, 14)], top=2)) == 2
