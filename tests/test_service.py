"""Tests for the request-oriented service layer."""

import io

import pytest

from conftest import cycle_graph, path_graph
from repro.errors import LandmarkError
from repro.service import (
    AddLandmarkRequest,
    ConstrainedDistanceRequest,
    DistanceRequest,
    HCLService,
    RemoveLandmarkRequest,
)


class TestRequests:
    def test_distance_request(self):
        svc = HCLService.build(path_graph(4), [1])
        assert svc.submit(DistanceRequest(0, 3)) == 3.0
        assert svc.stats.queries == 1

    def test_constrained_request(self):
        svc = HCLService.build(cycle_graph(6), [0])
        assert svc.submit(ConstrainedDistanceRequest(2, 4)) == 4.0

    def test_mutations_change_answers(self):
        svc = HCLService.build(cycle_graph(8), [0])
        assert svc.submit(ConstrainedDistanceRequest(3, 5)) == 6.0
        svc.submit(AddLandmarkRequest(4))
        assert svc.submit(ConstrainedDistanceRequest(3, 5)) == 2.0
        svc.submit(RemoveLandmarkRequest(4))
        assert svc.submit(ConstrainedDistanceRequest(3, 5)) == 6.0
        assert svc.stats.mutations == 2

    def test_failure_audited_and_raised(self):
        svc = HCLService.build(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            svc.submit(AddLandmarkRequest(1))
        assert svc.stats.failures == 1
        record = svc.audit[-1]
        assert not record.ok
        assert "landmark" in record.error

    def test_unknown_request_rejected(self):
        svc = HCLService.build(path_graph(3), [1])
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            svc.submit(object())

    def test_batch_processing(self):
        svc = HCLService.build(path_graph(6), [2])
        records = svc.submit_batch(
            [
                DistanceRequest(0, 5),
                AddLandmarkRequest(4),
                DistanceRequest(0, 5),
            ]
        )
        assert len(records) == 3
        assert all(r.ok for r in records)
        assert records[0].result == records[2].result == 5.0

    def test_audit_records_timing(self):
        svc = HCLService.build(path_graph(4), [1])
        svc.submit(DistanceRequest(0, 3))
        assert svc.audit[0].seconds >= 0.0


class TestCacheIntegration:
    def test_repeated_queries_hit_cache(self):
        svc = HCLService.build(path_graph(5), [2])
        svc.submit(DistanceRequest(0, 4))
        svc.submit(DistanceRequest(0, 4))
        assert svc.metrics()["counters"]["cache.hits"] == 1

    def test_cache_stats_accessor_is_deprecated_alias(self):
        svc = HCLService.build(path_graph(5), [2])
        svc.submit(DistanceRequest(0, 4))
        with pytest.warns(DeprecationWarning):
            stats = svc.cache_stats
        assert stats.misses == 1  # same live CacheStats object


class TestCheckpointing:
    def test_roundtrip(self):
        g = cycle_graph(8)
        svc = HCLService.build(g, [0])
        svc.submit(AddLandmarkRequest(4))
        buf = io.BytesIO()
        svc.checkpoint(buf)
        buf.seek(0)
        restored = HCLService.restore(g, buf)
        assert restored.landmarks == {0, 4}
        assert restored.submit(ConstrainedDistanceRequest(3, 5)) == 2.0

    def test_restored_service_stays_dynamic(self):
        g = cycle_graph(8)
        svc = HCLService.build(g, [0, 4])
        buf = io.BytesIO()
        svc.checkpoint(buf)
        buf.seek(0)
        restored = HCLService.restore(g, buf)
        restored.submit(RemoveLandmarkRequest(4))
        assert restored.submit(ConstrainedDistanceRequest(3, 5)) == 6.0
