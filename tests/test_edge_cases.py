"""Degenerate-input tests: singletons, isolated vertices, lone landmarks."""

import math

from conftest import path_graph
from repro.core import (
    DynamicHCL,
    assert_canonical,
    build_hcl,
    downgrade_landmark,
    upgrade_landmark,
)
from repro.graphs import Graph


class TestSingletonGraph:
    def test_build_on_one_vertex(self):
        g = Graph(1)
        index = build_hcl(g, [0])
        assert index.labeling.label(0) == {0: 0.0}
        assert index.distance(0, 0) == 0.0
        assert_canonical(index)

    def test_upgrade_then_downgrade_single_vertex(self):
        g = Graph(1)
        index = build_hcl(g, [])
        upgrade_landmark(index, 0)
        assert index.landmarks == {0}
        downgrade_landmark(index, 0)
        assert index.landmarks == set()
        assert_canonical(index)


class TestIsolatedVertices:
    def test_promote_isolated_vertex(self):
        g = path_graph(3)
        g.add_vertex()  # vertex 3, isolated
        index = build_hcl(g, [1])
        upgrade_landmark(index, 3)
        assert index.highway.distance(1, 3) == math.inf
        assert index.labeling.label(3) == {3: 0.0}
        assert_canonical(index)

    def test_demote_isolated_landmark(self):
        g = path_graph(3)
        g.add_vertex()
        index = build_hcl(g, [1, 3])
        downgrade_landmark(index, 3)
        assert index.labeling.label(3) == {}
        assert_canonical(index)

    def test_queries_with_isolated_endpoint(self):
        g = path_graph(3)
        g.add_vertex()
        index = build_hcl(g, [1])
        assert index.query(0, 3) == math.inf
        assert index.distance(0, 3) == math.inf


class TestLoneLandmarkComponent:
    def test_demote_only_landmark_of_component(self):
        # two components, each with one landmark; removing one leaves the
        # other component untouched and the first uncovered.
        g = path_graph(3)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(3, 4, 1.0)
        index = build_hcl(g, [1, 4])
        downgrade_landmark(index, 1)
        assert index.labeling.label(0) == {}
        assert index.labeling.label(3) == {4: 1.0}
        assert_canonical(index)

    def test_promote_into_uncovered_component(self):
        g = path_graph(3)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(3, 4, 1.0)
        index = build_hcl(g, [1])  # component {3, 4} uncovered
        upgrade_landmark(index, 4)
        assert index.labeling.label(3) == {4: 1.0}
        assert_canonical(index)


class TestTwoVertexGraph:
    def test_full_lifecycle(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0)
        dyn = DynamicHCL.build(g, [])
        assert dyn.query(0, 1) == math.inf
        dyn.add_landmark(0)
        assert dyn.query(0, 1) == 3.0
        assert dyn.distance(0, 1) == 3.0
        dyn.add_landmark(1)
        assert dyn.index.highway.distance(0, 1) == 3.0
        dyn.remove_landmark(0)
        dyn.remove_landmark(1)
        assert dyn.landmarks == set()
        assert_canonical(dyn.index)


class TestEmptyGraph:
    def test_build_on_zero_vertices(self):
        g = Graph(0)
        index = build_hcl(g, [])
        assert index.stats().label_entries == 0
