"""Checksummed shared-memory integrity: CRC headers, quarantine, fallback.

The shm segment now carries a WAL-style header (magic, identity, one
CRC32 per canonical array, header CRC).  These tests prove the promise
the header makes: a flipped byte anywhere in the label data is detected
*on attach* and the segment is never served — queries complete anyway,
over the pickle transport, from the unaffected heap-resident arrays.
"""

from __future__ import annotations

import random

import pytest

from conftest import random_graph
from repro.core import build_hcl, query_batch
from repro.core import shm
from repro.core.batchquery import TRANSPORT_COUNTS
from repro.core.plan import QueryPlan
from repro.core.shm import SharedPlanRef, shm_available
from repro.errors import PlanIntegrityError
from repro.testing import corrupt_segment
from repro.workloads import random_query_pairs

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable"
)


def compiled(seed: int = 3, n_lo: int = 40, n_hi: int = 70):
    g = random_graph(seed, n_lo=n_lo, n_hi=n_hi, weighted=True)
    rng = random.Random(seed + 99)
    landmarks = sorted(rng.sample(range(g.n), 4))
    index = build_hcl(g, landmarks)
    index.plan_mode = "off"  # keep the dict oracle a dict
    return index, QueryPlan.compile(index)


def same_float(a: float, b: float) -> bool:
    return a == b or (a != a and b != b)


@needs_shm
class TestHeaderRoundTrip:
    def test_create_then_attach_verifies_clean(self):
        _, plan = compiled(seed=3)
        shared = plan.shared_buffers()
        assert shared is not None
        before = dict(shm.COUNTS)
        attachment = shared.ref.attach()  # verify=True is the default
        try:
            assert shm.COUNTS["verified"] == before["verified"] + 1
            assert shm.COUNTS["integrity_failures"] == (
                before["integrity_failures"]
            )
            # The attached views are bitwise the canonical arrays.
            n, k, ids, off, slots, dists, hw = attachment.arrays()
            cn, ck, cids, coff, cslots, cdists, chw = plan.canonical_arrays()
            assert (n, k) == (cn, ck)
            assert list(ids) == list(cids)
            assert list(off) == list(coff)
            assert list(slots) == list(cslots)
            assert all(same_float(a, b) for a, b in zip(dists, cdists))
            assert all(same_float(a, b) for a, b in zip(hw, chw))
        finally:
            attachment.close()
            plan.release_shared()

    def test_attachment_reverify_on_demand(self):
        _, plan = compiled(seed=4)
        shared = plan.shared_buffers()
        attachment = shared.ref.attach()
        try:
            attachment.verify()  # clean: returns without raising
            corrupt_segment(shared.ref, offset=8, xor=0x40)
            with pytest.raises(PlanIntegrityError):
                attachment.verify()
            assert shm.is_quarantined(shared.ref.name)
        finally:
            attachment.close()
            plan.release_shared()

    def test_forged_identity_rejected(self):
        _, plan = compiled(seed=5)
        shared = plan.shared_buffers()
        try:
            ref = shared.ref
            forged = SharedPlanRef(
                ref.name, ref.plan_version + 1, ref.n, ref.k, ref.entries
            )
            with pytest.raises(PlanIntegrityError, match="identity"):
                forged.attach()
        finally:
            plan.release_shared()


@needs_shm
class TestCorruptionDetection:
    def test_byte_flip_detected_on_attach_and_quarantined(self):
        _, plan = compiled(seed=6)
        shared = plan.shared_buffers()
        try:
            ref = shared.ref
            corrupt_segment(ref, offset=0, xor=0xFF)
            before = dict(shm.COUNTS)
            with pytest.raises(PlanIntegrityError, match="CRC mismatch"):
                ref.attach()
            assert shm.COUNTS["integrity_failures"] == (
                before["integrity_failures"] + 1
            )
            assert shm.is_quarantined(ref.name)
            assert ref.name in shm.quarantined_segments()
            # A quarantined name raises immediately, without mapping the
            # segment again (the attach counter stays put).
            attached_before = shm.COUNTS["attached"]
            with pytest.raises(PlanIntegrityError, match="quarantined"):
                ref.attach()
            assert shm.COUNTS["attached"] == attached_before
        finally:
            plan.release_shared()

    def test_flip_in_every_array_is_caught(self):
        _, plan = compiled(seed=7)
        shared = plan.shared_buffers()
        try:
            ref = shared.ref
            layout = shm._Layout(ref.n, ref.k, ref.entries)
            # One byte inside each of the five arrays, by its fencepost.
            for lo in layout._bounds()[:-1]:
                corrupt_segment(ref, offset=lo * shm._ITEMSIZE, xor=0x01)
                assert shared.verify() is False
                # Undo the flip: verify() must stay False regardless —
                # the quarantine is sticky even for a segment that
                # "heals" (the check short-circuits nothing; stickiness
                # lives in attach, so re-verify the attach path).
                corrupt_segment(ref, offset=lo * shm._ITEMSIZE, xor=0x01)
                with pytest.raises(PlanIntegrityError, match="quarantined"):
                    ref.attach()
        finally:
            plan.release_shared()

    def test_owner_verify_quarantines_and_republish_mints_fresh(self):
        _, plan = compiled(seed=8)
        shared = plan.shared_buffers()
        old_name = shared.ref.name
        corrupt_segment(shared.ref, offset=-1, xor=0x80)
        before = dict(shm.COUNTS)
        assert shared.verify() is False
        assert shared.quarantined
        assert shm.COUNTS["integrity_failures"] == (
            before["integrity_failures"] + 1
        )
        # The owner's remedy: the next shared_buffers() call unlinks the
        # poisoned segment and republishes from the canonical arrays.
        fresh = plan.shared_buffers()
        try:
            assert fresh is not None
            assert fresh.ref.name != old_name
            assert shared.unlinked
            assert shm.COUNTS["republished"] == before["republished"] + 1
            attachment = fresh.ref.attach()  # verifies clean
            attachment.close()
        finally:
            plan.release_shared()

    def test_verify_false_opts_out(self):
        _, plan = compiled(seed=9)
        shared = plan.shared_buffers()
        try:
            corrupt_segment(shared.ref, offset=16, xor=0x02)
            # Explicit opt-out maps the corrupt segment without checking
            # (the bench's attach-only baseline path).
            attachment = shared.ref.attach(verify=False)
            attachment.close()
        finally:
            plan.release_shared()


@needs_shm
class TestPoolPickleFallback:
    def test_corrupt_segment_falls_back_to_pickle(self, monkeypatch):
        """A pool worker's attach-time CRC failure must not fail the
        batch: the parent quarantines the segment and completes bitwise
        over the pickle transport."""
        from repro.core import batchquery

        index, plan = compiled(seed=10, n_lo=40, n_hi=50)
        pairs = random_query_pairs(index.graph.n, 400, seed=10)
        want = query_batch(index, pairs, plan="off")

        shared = plan.shared_buffers()
        corrupt_segment(shared.ref, offset=24, xor=0x04)
        # Fork children inherit the parent-seeded attach cache and would
        # never attach (hence never verify); disable the seeding so the
        # workers take the real attach path, as spawn workers always do.
        monkeypatch.setattr(
            batchquery, "_seed_attach_cache", lambda ref, plan: None
        )
        before = dict(TRANSPORT_COUNTS)
        got = query_batch(
            index, pairs, workers=2, min_parallel=10, plan=plan
        )
        assert got == want
        assert TRANSPORT_COUNTS["shm"] == before["shm"] + 1
        assert TRANSPORT_COUNTS["pickle"] == before["pickle"] + 1
        assert shm.is_quarantined(shared.ref.name)
        plan.release_shared()

    def test_integrity_error_pickles_with_segment(self):
        import pickle

        exc = PlanIntegrityError("segment 'abc' bad", segment="abc")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, PlanIntegrityError)
        assert clone.segment == "abc"
        assert clone.args == exc.args
