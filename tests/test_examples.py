"""Smoke tests: every example script must run end to end.

The examples double as integration tests of the public API; each is
imported as a module and its ``main()`` executed with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
    # every example ends with a verified-correctness checkmark
    assert "✓" in out
