"""Unit tests for UPGRADE-LMK (Algorithm 1)."""

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import assert_canonical, build_hcl, upgrade_landmark
from repro.errors import LandmarkError, VertexError


class TestBasics:
    def test_upgrade_on_path(self):
        g = path_graph(5)
        index = build_hcl(g, [0])
        stats = upgrade_landmark(index, 4)
        assert index.landmarks == {0, 4}
        assert index.highway.distance(0, 4) == 4.0
        assert stats.new_landmark == 4
        assert_canonical(index)

    def test_highway_filled_without_search(self):
        """Distances to landmarks not covering r come from composition."""
        g = path_graph(5)
        index = build_hcl(g, [0, 2])
        upgrade_landmark(index, 4)
        # 0 does not cover 4 (landmark 2 blocks); δ_H(4,0)=δ_H(4,2)+δ_H(2,0)
        assert index.highway.distance(4, 0) == 4.0
        assert_canonical(index)

    def test_new_landmark_label_reset(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        upgrade_landmark(index, 3)
        assert index.labeling.label(3) == {3: 0.0}

    def test_superfluous_entries_removed(self):
        # Path 0-1-2: promoting 1 makes 0's entry for 2 superfluous.
        g = path_graph(3)
        index = build_hcl(g, [2])
        assert index.labeling.label(0) == {2: 2.0}
        stats = upgrade_landmark(index, 1)
        assert index.labeling.label(0) == {1: 1.0}
        assert stats.entries_removed == 1
        assert_canonical(index)

    def test_entries_kept_when_tie_survives(self):
        # Two shortest 3->0 paths; only one passes the new landmark.
        from repro.graphs import Graph

        g = Graph(4, unweighted=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 1.0)
        index = build_hcl(g, [3])
        upgrade_landmark(index, 1)
        # 3 still covers 0 through 2.
        assert index.labeling.label(0) == {1: 1.0, 3: 2.0}
        assert_canonical(index)


class TestErrors:
    def test_existing_landmark_rejected(self):
        index = build_hcl(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            upgrade_landmark(index, 1)

    def test_out_of_range_rejected(self):
        index = build_hcl(path_graph(3), [1])
        with pytest.raises(VertexError):
            upgrade_landmark(index, 17)


class TestStats:
    def test_counters_plausible(self):
        g = cycle_graph(10)
        index = build_hcl(g, [0])
        stats = upgrade_landmark(index, 5)
        assert stats.settled == stats.entries_added
        assert stats.reached_landmarks == 1  # landmark 0, from both sides
        assert stats.entries_added >= 1


class TestCleanupToggle:
    def test_disabled_cleanup_keeps_cover_but_not_minimality(self):
        g = path_graph(3)
        index = build_hcl(g, [2])
        upgrade_landmark(index, 1, remove_superfluous=False)
        # Entry (2, 2.0) at vertex 0 is now superfluous but retained.
        assert index.labeling.label(0) == {2: 2.0, 1: 1.0}
        # Queries still correct (cover property intact).
        assert index.distance(0, 2) == 2.0

    def test_enabled_cleanup_restores_minimality(self):
        g = path_graph(3)
        index = build_hcl(g, [2])
        upgrade_landmark(index, 1, remove_superfluous=True)
        assert_canonical(index)


class TestSequences:
    @pytest.mark.parametrize("seed", range(5))
    def test_incremental_chain_stays_canonical(self, seed):
        g = random_graph(seed)
        index = build_hcl(g, [0])
        for v in range(1, min(g.n, 8)):
            upgrade_landmark(index, v)
            assert_canonical(index)

    def test_promote_every_vertex(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        for v in range(1, 6):
            upgrade_landmark(index, v)
        for v in range(6):
            assert index.labeling.label(v) == {v: 0.0}
        assert_canonical(index)
