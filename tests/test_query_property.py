"""Property tests for query correctness under dynamics.

After arbitrary landmark churn, (a) ``QUERY`` must equal the brute-force
landmark-constrained distance and (b) ``distance`` must equal true
shortest-path distance — the paper's query-correctness requirement for
DYN-HCL (goal G2 relies on it).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_graph
from repro.core import DynamicHCL
from repro.core.invariants import brute_force_landmark_constrained
from repro.graphs import single_source_distances


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_queries_exact_after_churn(seed):
    g = random_graph(seed, n_lo=6, n_hi=22)
    rng = random.Random(seed + 5)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 4)))
    dyn = DynamicHCL.build(g, sorted(landmarks))

    for _ in range(4):
        addable = [v for v in range(g.n) if v not in landmarks]
        if landmarks and (not addable or rng.random() < 0.5):
            v = rng.choice(sorted(landmarks))
            dyn.remove_landmark(v)
            landmarks.discard(v)
        elif addable:
            v = rng.choice(addable)
            dyn.add_landmark(v)
            landmarks.add(v)

    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(12)]
    for s, t in pairs:
        want_constrained = brute_force_landmark_constrained(
            g, landmarks, s, t
        ) if landmarks else float("inf")
        assert dyn.query(s, t) == want_constrained, (s, t)
        want_exact = single_source_distances(g, s)[t]
        assert dyn.distance(s, t) == want_exact, (s, t)
