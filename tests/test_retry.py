"""Unit tests for the shared :class:`repro.retry.BackoffPolicy` ladder."""

import random

import pytest

from conftest import grid_graph
from repro.breaker import CircuitBreaker
from repro.core import build_hcl
from repro.errors import RequestError
from repro.retry import BackoffPolicy
from repro.testing import FakeClock


class TestDelayLadder:
    def test_unjittered_ladder_doubles_then_caps(self):
        p = BackoffPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0)
        assert [p.delay(a) for a in range(6)] == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_custom_factor(self):
        p = BackoffPolicy(base_delay=0.5, max_delay=100.0, factor=3.0, jitter=0.0)
        assert [p.delay(a) for a in range(4)] == [0.5, 1.5, 4.5, 13.5]

    def test_jitter_stays_within_relative_band(self):
        p = BackoffPolicy(
            base_delay=1.0, max_delay=64.0, jitter=0.25, rng=random.Random(42)
        )
        for attempt in range(7):
            base = min(64.0, 2.0**attempt)
            for _ in range(50):
                d = p.delay(attempt)
                assert base * 0.75 <= d <= base * 1.25

    def test_jittered_delays_vary(self):
        p = BackoffPolicy(base_delay=1.0, jitter=0.5, rng=random.Random(7))
        assert len({p.delay(0) for _ in range(10)}) > 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"base_delay": -1.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"factor": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(RequestError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(RequestError):
            BackoffPolicy().delay(-1)


class TestPause:
    def test_pause_sleeps_the_delay_and_returns_it(self):
        sleeps = []
        p = BackoffPolicy(base_delay=1.0, max_delay=8.0, jitter=0.0, sleeper=sleeps.append)
        waited = [p.pause(a) for a in range(4)]
        assert waited == [1.0, 2.0, 4.0, 8.0]
        assert sleeps == waited

    def test_pause_clamps_to_cap(self):
        sleeps = []
        p = BackoffPolicy(base_delay=4.0, max_delay=8.0, jitter=0.0, sleeper=sleeps.append)
        assert p.pause(2, cap=1.5) == 1.5
        assert sleeps == [1.5]

    def test_nonpositive_cap_skips_the_sleep(self):
        sleeps = []
        p = BackoffPolicy(base_delay=1.0, jitter=0.0, sleeper=sleeps.append)
        assert p.pause(0, cap=0.0) == 0.0
        assert p.pause(3, cap=-2.0) == 0.0
        assert sleeps == []


class TestSharedLadderReuse:
    """The breaker and the parallel build retry through the same policy."""

    def test_breaker_open_delays_follow_the_policy_ladder(self):
        clock = FakeClock()
        br = CircuitBreaker(
            threshold=1, base_delay=1.0, max_delay=4.0, jitter=0.0, clock=clock
        )
        assert isinstance(br._backoff, BackoffPolicy)
        observed = []
        for _ in range(4):  # each consecutive re-open climbs the ladder
            br.record_failure()
            observed.append(br.retry_after())
            clock.advance(br.retry_after())
            assert br.allow()  # half-open probe
        assert observed == [1.0, 2.0, 4.0, 4.0]

    def test_build_pool_retry_paces_between_attempts(self, monkeypatch):
        import repro.core.build as build_mod

        sleeps = []
        policy = BackoffPolicy(
            base_delay=0.05, max_delay=1.0, jitter=0.0, sleeper=sleeps.append
        )
        real = build_mod._pool_attempt
        attempts = []

        def flaky(csr, lmks, pending, pool_size, attempt, partials):
            attempts.append(attempt)
            if attempt == 0:
                return list(pending)  # simulated total pool failure
            return real(csr, lmks, pending, pool_size, attempt, partials)

        monkeypatch.setattr(build_mod, "_pool_attempt", flaky)
        g = grid_graph(4, 5)
        idx = build_mod.build_hcl_parallel(g, [0, 19], workers=2, backoff=policy)
        assert attempts == [0, 1]
        assert sleeps == [0.05]  # one pause, before the retry only
        assert idx.structurally_equal(build_hcl(g, [0, 19]))
