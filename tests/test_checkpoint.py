"""Checkpoint format tests: atomicity, checksums, edge-case round-trips."""

import io
import random

import pytest

from conftest import grid_graph, path_graph, random_graph
from repro.core import build_hcl, load_checkpoint, save_checkpoint
from repro.core.serialization import (
    _BINARY_MAGIC,
    _BINARY_MAGIC_V1,
    _pack_payload,
    load_index_binary,
)
from repro.errors import CheckpointError, ParseError, VertexError
from repro.graphs import Graph
from repro.testing import corrupt_byte, truncate_tail


def float_path(n: int, seed: int = 0) -> Graph:
    rng = random.Random(seed)
    return path_graph(n, weights=[rng.uniform(0.1, 10.0) for _ in range(n - 1)])


class TestRoundTrip:
    def test_path_round_trip_with_wal_seq(self, tmp_path):
        g = grid_graph(3, 4)
        index = build_hcl(g, [0, 11])
        target = tmp_path / "index.ckpt"
        save_checkpoint(index, target, wal_seq=42)
        loaded, seq = load_checkpoint(g, target)
        assert seq == 42
        assert loaded.structurally_equal(index)

    def test_empty_landmark_set(self, tmp_path):
        g = grid_graph(3, 3)
        index = build_hcl(g, [])
        target = tmp_path / "empty.ckpt"
        save_checkpoint(index, target)
        loaded, seq = load_checkpoint(g, target)
        assert seq == 0
        assert loaded.landmarks == set()
        assert loaded.structurally_equal(index)

    def test_float_weights_bit_exact(self, tmp_path):
        g = float_path(9, seed=3)
        index = build_hcl(g, [0, 4, 8])
        target = tmp_path / "float.ckpt"
        save_checkpoint(index, target)
        loaded, _ = load_checkpoint(g, target)
        # float distances must survive the round trip bit-for-bit
        for v in range(g.n):
            assert loaded.labeling.label(v) == index.labeling.label(v)
        assert loaded.structurally_equal(index)

    def test_in_memory_binary_io(self):
        g = random_graph(11)
        index = build_hcl(g, [0, g.n - 1])
        buf = io.BytesIO()
        save_checkpoint(index, buf, wal_seq=7)
        buf.seek(0)
        loaded, seq = load_checkpoint(g, buf)
        assert seq == 7
        assert loaded.structurally_equal(index)

    def test_restore_into_wrong_graph_raises(self, tmp_path):
        g = grid_graph(3, 4)
        index = build_hcl(g, [0])
        target = tmp_path / "index.ckpt"
        save_checkpoint(index, target)
        with pytest.raises(VertexError):
            load_checkpoint(grid_graph(3, 5), target)

    def test_v1_format_still_loads(self, tmp_path):
        g = grid_graph(3, 3)
        index = build_hcl(g, [0, 8])
        legacy = tmp_path / "legacy.bin"
        legacy.write_bytes(_BINARY_MAGIC_V1 + _pack_payload(index))
        loaded, seq = load_checkpoint(g, legacy)
        assert seq == 0  # v1 carries no WAL position
        assert loaded.structurally_equal(index)
        assert load_index_binary(g, legacy).structurally_equal(index)

    def test_deterministic_bytes(self, tmp_path):
        # Same (G, R) -> same file, independent of insertion history.
        g = random_graph(17)
        a = build_hcl(g, [0, 1, g.n - 1])
        b = build_hcl(g, [g.n - 1, 1, 0])
        pa, pb = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        save_checkpoint(a, pa)
        save_checkpoint(b, pb)
        assert pa.read_bytes() == pb.read_bytes()


class TestCorruption:
    @pytest.fixture
    def ckpt(self, tmp_path):
        g = grid_graph(4, 4)
        index = build_hcl(g, [0, 5, 15])
        target = tmp_path / "index.ckpt"
        save_checkpoint(index, target, wal_seq=3)
        return g, target

    def test_flipped_payload_byte_raises(self, ckpt):
        g, target = ckpt
        corrupt_byte(target, 40)  # somewhere in the payload
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(g, target)

    def test_flipped_tail_byte_raises(self, ckpt):
        g, target = ckpt
        corrupt_byte(target, -1)
        with pytest.raises(CheckpointError):
            load_checkpoint(g, target)

    def test_flipped_magic_raises_parse_error(self, ckpt):
        g, target = ckpt
        corrupt_byte(target, 0)
        with pytest.raises(ParseError):
            load_checkpoint(g, target)

    def test_truncated_header_raises(self, ckpt):
        g, target = ckpt
        size = target.stat().st_size
        truncate_tail(target, size - 10)  # keep magic + header fragment
        with pytest.raises(CheckpointError):
            load_checkpoint(g, target)

    def test_truncated_payload_raises(self, ckpt):
        g, target = ckpt
        truncate_tail(target, 12)
        with pytest.raises(CheckpointError):
            load_checkpoint(g, target)

    def test_trailing_garbage_raises(self, ckpt):
        g, target = ckpt
        with open(target, "ab") as fh:
            fh.write(b"\x00\x01\x02")
        with pytest.raises(CheckpointError):
            load_checkpoint(g, target)

    def test_checkpoint_error_is_a_parse_error(self):
        # Pre-existing `except ParseError` handlers keep catching
        # checkpoint corruption.
        assert issubclass(CheckpointError, ParseError)


class TestAtomicity:
    def test_failed_save_leaves_old_checkpoint_intact(self, tmp_path, monkeypatch):
        g = grid_graph(3, 3)
        index = build_hcl(g, [0])
        target = tmp_path / "index.ckpt"
        save_checkpoint(index, target, wal_seq=1)
        good = target.read_bytes()

        import repro.core.serialization as ser

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(ser.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_checkpoint(build_hcl(g, [0, 8]), target, wal_seq=2)
        # the old checkpoint is untouched and no temp litter remains
        assert target.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["index.ckpt"]

    def test_new_magic_is_v2(self, tmp_path):
        g = grid_graph(3, 3)
        target = tmp_path / "index.ckpt"
        save_checkpoint(build_hcl(g, [0]), target)
        assert target.read_bytes()[: len(_BINARY_MAGIC)] == _BINARY_MAGIC
