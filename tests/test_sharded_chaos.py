"""Chaos-lane acceptance for the sharded serving tier.

The ISSUE contract: a 4-shard fleet with ``replication_factor=2``,
killing any single worker mid-``query_batch``, still returns answers
bitwise-equal to the unsharded plan (or budget-expired
:class:`~repro.budget.DegradedResult`\\ s), with zero coordinator hangs
across 5 seeded fault schedules — and the loss/recovery is visible in
fleet ``health()`` and the obs counters.

Run with ``pytest -m chaos``; excluded from the default (tier-1) lane.
"""

import random
import time

import pytest

from conftest import random_graph
from repro.budget import Budget, DegradedResult
from repro.core import build_hcl, select_landmarks
from repro.retry import BackoffPolicy
from repro.shard import FleetSupervisor, ShardedService
from repro.testing import (
    HeartbeatFault,
    ShardFault,
    corrupt_segment,
    drop_heartbeats,
    inject_shard_fault,
)

pytestmark = pytest.mark.chaos

NSHARDS = 4
RF = 2
RPC_TIMEOUT = 0.25
#: Wall-clock ceiling proving "the coordinator never hangs": generous
#: against the retry ladder, tiny against a 1 s worker hang gone wrong.
BATCH_DEADLINE = 30.0


@pytest.fixture(scope="module")
def fixture_plan():
    g = random_graph(99, n_lo=160, n_hi=200)
    lmks = select_landmarks(g, 8, policy="degree")
    plan = build_hcl(g, lmks).compile_plan()
    rng = random.Random(4321)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(250)]
    oracle = [plan.query(s, t) for s, t in pairs]
    return plan, pairs, oracle


@pytest.mark.parametrize("seed", range(5))
def test_single_worker_kill_mid_batch_keeps_answers_bitwise(
    fixture_plan, seed
):
    plan, pairs, oracle = fixture_plan
    rng = random.Random(seed)
    # Each replica sees only a couple of data RPCs per batch (one batched
    # combine per shard plus row fetches), so the schedule varies *which*
    # worker dies and fires on that worker's first data RPC — a kill that
    # always actually lands mid-batch.
    fault = ShardFault(
        kind="kill",
        shard=rng.randrange(NSHARDS),
        replica=rng.randrange(RF),
        requests=(0,),
    )
    with inject_shard_fault(fault):
        with ShardedService(
            plan,
            nshards=NSHARDS,
            replication_factor=RF,
            rpc_timeout=RPC_TIMEOUT,
        ) as svc:
            start = time.monotonic()
            got = svc.query_batch(pairs, Budget(seconds=BATCH_DEADLINE / 2))
            elapsed = time.monotonic() - start
            assert elapsed < BATCH_DEADLINE  # the coordinator never hangs
            assert len(got) == len(pairs)
            for want, have in zip(oracle, got):
                if isinstance(have, DegradedResult):
                    assert have.is_upper_bound  # sound, never below truth
                else:
                    assert have == want  # bitwise-equal to the oracle
            # The kill and the heal are observable: the restart counters
            # ticked and post-batch auto-restart refilled the fleet.
            health = svc.health()
            assert health["fleet.restarts"] >= 1
            assert (
                svc.registry.counter(f"shard.{fault.shard}.restarts").value
                >= 1
            )
            assert health["replicas_alive"] == NSHARDS * RF
            assert health["status"] == "ok"


@pytest.mark.parametrize("kind", ["hang", "slow", "raise"])
def test_nonfatal_faults_fail_over_without_wrong_answers(fixture_plan, kind):
    plan, pairs, oracle = fixture_plan
    fault = ShardFault(
        kind=kind,
        shard=1,
        replica=0,
        requests=(0, 1),
        seconds=1.0 if kind == "hang" else 0.05,
    )
    with inject_shard_fault(fault):
        with ShardedService(
            plan,
            nshards=NSHARDS,
            replication_factor=RF,
            rpc_timeout=RPC_TIMEOUT,
        ) as svc:
            start = time.monotonic()
            got = svc.query_batch(pairs, Budget(seconds=BATCH_DEADLINE / 2))
            assert time.monotonic() - start < BATCH_DEADLINE
            wrong = sum(
                1
                for want, have in zip(oracle, got)
                if not isinstance(have, DegradedResult) and have != want
            )
            assert wrong == 0
            if kind == "hang":
                timeouts = svc.registry.counter(
                    f"shard.{fault.shard}.rpc.timeouts"
                ).value
                assert timeouts >= 1  # the hang was seen and survived


# ----------------------------------------------------------------------
# Supervisor convergence under seeded storms (ISSUE 9 acceptance)
# ----------------------------------------------------------------------
#: Bounded-convergence budget: the supervisor must report ``ok`` within
#: this many ticks of the storm ending, every seed, every schedule.
MAX_CONVERGENCE_TICKS = 40


def _fresh_plan(seed, n_lo=60, n_hi=80, k=4, npairs=100):
    """A private plan per test: corruption quarantine is process-global
    and sticky, so corrupting the shared module fixture would poison
    every later test."""
    g = random_graph(seed, n_lo=n_lo, n_hi=n_hi)
    lmks = select_landmarks(g, k, policy="degree")
    plan = build_hcl(g, lmks).compile_plan()
    rng = random.Random(seed + 1)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(npairs)]
    oracle = [plan.query(s, t) for s, t in pairs]
    return plan, pairs, oracle


def _assert_bitwise_or_degraded(oracle, got):
    assert len(got) == len(oracle)
    for want, have in zip(oracle, got):
        if isinstance(have, DegradedResult):
            assert have.is_upper_bound
        else:
            assert have == want


@pytest.mark.parametrize("seed", range(5))
def test_kill_and_hang_storm_converges_within_bounded_ticks(
    fixture_plan, seed
):
    """Kill several replicas and drop heartbeats to another: the
    supervisor (not a query) must find every casualty, restart it from
    the pinned slices, and return the fleet to ``ok`` within the tick
    budget — then the healed fleet answers bitwise."""
    plan, pairs, oracle = fixture_plan
    rng = random.Random(7000 + seed)
    with ShardedService(
        plan,
        nshards=NSHARDS,
        replication_factor=RF,
        rpc_timeout=RPC_TIMEOUT,
    ) as svc:
        everyone = [(s, r) for s in range(NSHARDS) for r in range(RF)]
        victims = rng.sample(everyone, rng.randint(1, 3))
        for s, r in victims:
            svc._sets[s].replicas[r].terminate()
        hang = HeartbeatFault(
            shard=rng.randrange(NSHARDS),
            replica=rng.randrange(RF),
            ticks=(0, 1),
        )
        sup = FleetSupervisor(
            svc,
            ping_timeout=2.0,
            hang_ticks=2,  # the 2-tick drop window trips a hang-restart
            hysteresis_ticks=2,
            restart_backoff=BackoffPolicy(
                base_delay=0.01, max_delay=0.05, jitter=0.0
            ),
        )
        start = time.monotonic()
        with drop_heartbeats(hang):
            spent = sup.run_until_ok(MAX_CONVERGENCE_TICKS)
        assert time.monotonic() - start < BATCH_DEADLINE  # never hangs
        assert spent <= MAX_CONVERGENCE_TICKS
        restarts = sup.registry.counter("supervisor.restarts").value
        assert restarts >= len(victims)
        health = svc.health()
        assert health["status"] == "ok"
        assert health["supervisor"]["status"] == "ok"
        assert health["replicas_alive"] == NSHARDS * RF
        # The revived workers serve the re-broadcast epoch bitwise.
        _assert_bitwise_or_degraded(oracle, svc.query_batch(pairs))


def test_corrupted_segment_is_never_served_and_stage_falls_back():
    """A byte-flipped shm segment is detected *on attach* by every
    worker; the fleet stages over the pickle transport instead and the
    batch completes bitwise — corruption visible, answers untouched."""
    from repro.core.shm import is_quarantined

    plan, pairs, oracle = _fresh_plan(101)
    shared = plan.shared_buffers()
    if shared is None:
        pytest.skip("shared memory unavailable")
    corrupt_segment(shared.ref, offset=64, xor=0x20)
    with ShardedService(
        plan, nshards=2, replication_factor=2, rpc_timeout=1.0
    ) as svc:
        got = svc.query_batch(pairs)
        assert got == oracle  # bitwise: pickle slices carry clean arrays
        assert svc.registry.counter("fleet.integrity_fallbacks").value >= 1
        assert is_quarantined(shared.ref.name)
        assert svc.health()["status"] == "ok"
    plan.release_shared()


@pytest.mark.parametrize("seed", range(5))
def test_full_storm_kill_hang_corrupt_converges(seed):
    """The whole menu at once — worker kills, dropped heartbeats, and a
    byte-flipped segment — with the supervisor's integrity check wired
    to the owner's CRC verify.  Required arc: corruption detected,
    segment quarantined and republished, fleet back to ``ok`` within the
    tick budget, answers bitwise-or-degraded, nothing hangs."""
    plan, pairs, oracle = _fresh_plan(200 + seed)
    shared = plan.shared_buffers()
    if shared is None:
        pytest.skip("shared memory unavailable")
    rng = random.Random(900 + seed)
    with ShardedService(
        plan, nshards=2, replication_factor=2, rpc_timeout=1.0
    ) as svc:
        assert svc.query_batch(pairs) == oracle  # healthy warm-up

        def segment_clean():
            # The owner's remedy built in: shared_buffers() republishes
            # a fresh segment once the poisoned one is quarantined, so
            # the check fails exactly once and then heals.
            fresh = plan.shared_buffers()
            return fresh is not None and fresh.verify()

        corrupt_segment(shared.ref, offset=rng.randrange(256), xor=0xFF)
        victims = rng.sample([(0, 0), (0, 1), (1, 0), (1, 1)], 2)
        for s, r in victims:
            svc._sets[s].replicas[r].terminate()
        hang = HeartbeatFault(shard=rng.randrange(2), ticks=(0,))
        sup = FleetSupervisor(
            svc,
            ping_timeout=2.0,
            hang_ticks=2,
            hysteresis_ticks=2,
            integrity_check=segment_clean,
            integrity_every=1,
            restart_backoff=BackoffPolicy(
                base_delay=0.01, max_delay=0.05, jitter=0.0
            ),
        )
        start = time.monotonic()
        with drop_heartbeats(hang):
            spent = sup.run_until_ok(MAX_CONVERGENCE_TICKS)
        assert time.monotonic() - start < BATCH_DEADLINE
        assert spent <= MAX_CONVERGENCE_TICKS
        assert sup.registry.counter("supervisor.integrity_failures").value >= 1
        assert segment_clean()  # republished segment passes its CRCs
        health = svc.health()
        assert health["status"] == "ok"
        assert health["replicas_alive"] == 4
        _assert_bitwise_or_degraded(oracle, svc.query_batch(pairs))
    plan.release_shared()
