"""Chaos-lane acceptance for the sharded serving tier.

The ISSUE contract: a 4-shard fleet with ``replication_factor=2``,
killing any single worker mid-``query_batch``, still returns answers
bitwise-equal to the unsharded plan (or budget-expired
:class:`~repro.budget.DegradedResult`\\ s), with zero coordinator hangs
across 5 seeded fault schedules — and the loss/recovery is visible in
fleet ``health()`` and the obs counters.

Run with ``pytest -m chaos``; excluded from the default (tier-1) lane.
"""

import random
import time

import pytest

from conftest import random_graph
from repro.budget import Budget, DegradedResult
from repro.core import build_hcl, select_landmarks
from repro.shard import ShardedService
from repro.testing import ShardFault, inject_shard_fault

pytestmark = pytest.mark.chaos

NSHARDS = 4
RF = 2
RPC_TIMEOUT = 0.25
#: Wall-clock ceiling proving "the coordinator never hangs": generous
#: against the retry ladder, tiny against a 1 s worker hang gone wrong.
BATCH_DEADLINE = 30.0


@pytest.fixture(scope="module")
def fixture_plan():
    g = random_graph(99, n_lo=160, n_hi=200)
    lmks = select_landmarks(g, 8, policy="degree")
    plan = build_hcl(g, lmks).compile_plan()
    rng = random.Random(4321)
    pairs = [(rng.randrange(g.n), rng.randrange(g.n)) for _ in range(250)]
    oracle = [plan.query(s, t) for s, t in pairs]
    return plan, pairs, oracle


@pytest.mark.parametrize("seed", range(5))
def test_single_worker_kill_mid_batch_keeps_answers_bitwise(
    fixture_plan, seed
):
    plan, pairs, oracle = fixture_plan
    rng = random.Random(seed)
    # Each replica sees only a couple of data RPCs per batch (one batched
    # combine per shard plus row fetches), so the schedule varies *which*
    # worker dies and fires on that worker's first data RPC — a kill that
    # always actually lands mid-batch.
    fault = ShardFault(
        kind="kill",
        shard=rng.randrange(NSHARDS),
        replica=rng.randrange(RF),
        requests=(0,),
    )
    with inject_shard_fault(fault):
        with ShardedService(
            plan,
            nshards=NSHARDS,
            replication_factor=RF,
            rpc_timeout=RPC_TIMEOUT,
        ) as svc:
            start = time.monotonic()
            got = svc.query_batch(pairs, Budget(seconds=BATCH_DEADLINE / 2))
            elapsed = time.monotonic() - start
            assert elapsed < BATCH_DEADLINE  # the coordinator never hangs
            assert len(got) == len(pairs)
            for want, have in zip(oracle, got):
                if isinstance(have, DegradedResult):
                    assert have.is_upper_bound  # sound, never below truth
                else:
                    assert have == want  # bitwise-equal to the oracle
            # The kill and the heal are observable: the restart counters
            # ticked and post-batch auto-restart refilled the fleet.
            health = svc.health()
            assert health["fleet.restarts"] >= 1
            assert (
                svc.registry.counter(f"shard.{fault.shard}.restarts").value
                >= 1
            )
            assert health["replicas_alive"] == NSHARDS * RF
            assert health["status"] == "ok"


@pytest.mark.parametrize("kind", ["hang", "slow", "raise"])
def test_nonfatal_faults_fail_over_without_wrong_answers(fixture_plan, kind):
    plan, pairs, oracle = fixture_plan
    fault = ShardFault(
        kind=kind,
        shard=1,
        replica=0,
        requests=(0, 1),
        seconds=1.0 if kind == "hang" else 0.05,
    )
    with inject_shard_fault(fault):
        with ShardedService(
            plan,
            nshards=NSHARDS,
            replication_factor=RF,
            rpc_timeout=RPC_TIMEOUT,
        ) as svc:
            start = time.monotonic()
            got = svc.query_batch(pairs, Budget(seconds=BATCH_DEADLINE / 2))
            assert time.monotonic() - start < BATCH_DEADLINE
            wrong = sum(
                1
                for want, have in zip(oracle, got)
                if not isinstance(have, DegradedResult) and have != want
            )
            assert wrong == 0
            if kind == "hang":
                timeouts = svc.registry.counter(
                    f"shard.{fault.shard}.rpc.timeouts"
                ).value
                assert timeouts >= 1  # the hang was seen and survived
