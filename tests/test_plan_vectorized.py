"""Differential acceptance for the vectorized zero-copy plan backend.

The :class:`~repro.core.planvec.VectorBackend` answers with the *same
bits* as the interpreted flat kernel (and hence the dict oracle) — the
factored ``(d_outer + δ) + d_inner`` association is the one the flat
g-row fast path already uses, and numpy float64 arithmetic performs the
identical IEEE-754 operations.  Everything here is a differential sweep
against those two oracles: constrained/exact answers, degraded-budget
parity, budget charge sequences, epoch-pin stability, and the graceful
pure-python fallback when numpy is absent.

The shared-memory transport gets its own lifecycle battery: ref/attach
round trips, idempotent exactly-once unlink (including through epoch
retirement, the owner-exit backstop, and a worker crash mid-batch), and
the transport counters proving pool fan-out ships **zero** pickled
arrays when a segment is available.
"""

from __future__ import annotations

import math
import pickle
import random
from array import array

import pytest

from conftest import grid_graph, path_graph, random_graph
from repro.budget import Budget, DegradedResult
from repro.core import DynamicHCL, build_hcl, query_batch
from repro.core import planvec
from repro.core.batchquery import TRANSPORT_COUNTS
from repro.core.plan import QueryPlan
from repro.core.shm import shm_available
from repro.errors import DeadlineExceeded, RequestError
from repro.graphs import Graph
from repro.graphs.csr import CSRGraph
from repro.shard.partition import partition_plan
from repro.workloads import random_query_pairs, zipf_query_pairs

INF = math.inf

needs_numpy = pytest.mark.skipif(
    not planvec.numpy_available(), reason="numpy unavailable"
)
needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable"
)


def float_graph(seed: int, n_lo: int = 15, n_hi: int = 40) -> Graph:
    """Connected-ish random graph with irregular float weights."""
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = Graph(n)
    for v in range(1, n):  # spanning tree keeps most pairs reachable
        g.add_edge(v, rng.randrange(v), rng.uniform(0.1, 3.7))
    extra = {(u, v) for u in range(n) for v in range(u + 1, n)}
    extra -= {tuple(sorted((u, v))) for u in range(n) for v, _ in g.neighbors(u)}
    for u, v in rng.sample(sorted(extra), min(len(extra), 2 * n)):
        g.add_edge(u, v, rng.uniform(0.1, 3.7))
    return g


def same_float(a: float, b: float) -> bool:
    """Bitwise equality with nan == nan (inf - inf label arithmetic)."""
    return a == b or (a != a and b != b)


def all_pairs(n: int, stride: int = 1):
    return [(s, t) for s in range(0, n, stride) for t in range(0, n, stride)]


def compiled(g: Graph, landmarks):
    index = build_hcl(g, landmarks)
    index.plan_mode = "off"  # the dict oracle stays a dict
    return index, QueryPlan.compile(index)


# ----------------------------------------------------------------------
# Differential sweeps: vec vs flat vs dict, bitwise
# ----------------------------------------------------------------------
@needs_numpy
class TestVectorDifferential:
    @pytest.mark.parametrize("seed", range(4))
    def test_query_bitwise_int_graphs(self, seed):
        g = random_graph(seed, n_lo=12, n_hi=30, weighted=True)
        rng = random.Random(seed + 500)
        landmarks = sorted(rng.sample(range(g.n), rng.randint(1, g.n // 3)))
        index, plan = compiled(g, landmarks)
        vec = plan.vector_backend()
        for s, t in all_pairs(g.n):
            flat = plan.query(s, t)
            assert same_float(vec.query(s, t), flat)
            assert same_float(flat, index.query(s, t))

    @pytest.mark.parametrize("seed", range(4))
    def test_query_bitwise_float_graphs(self, seed):
        g = float_graph(seed)
        rng = random.Random(seed + 500)
        landmarks = sorted(rng.sample(range(g.n), rng.randint(1, g.n // 3)))
        index, plan = compiled(g, landmarks)
        vec = plan.vector_backend()
        for s, t in all_pairs(g.n):
            flat = plan.query(s, t)
            assert same_float(vec.query(s, t), flat)
            assert same_float(flat, index.query(s, t))

    def test_query_many_native_floats(self):
        g = float_graph(7, n_lo=25, n_hi=35)
        _, plan = compiled(g, [1, 5, 9])
        vec = plan.vector_backend()
        pairs = zipf_query_pairs(g.n, 300, alpha=1.3, seed=7)
        got = vec.query_many(pairs)
        assert got == [plan.query(s, t) for s, t in pairs]
        assert all(type(v) is float for v in got)
        assert vec.query_many([]) == []

    def test_unreachable_pairs_stay_infinite(self):
        g = Graph(8, unweighted=True)
        for u, v in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]:
            g.add_edge(u, v, 1.0)
        _, plan = compiled(g, [1, 2])
        vec = plan.vector_backend()
        for s, t in all_pairs(8):
            assert same_float(vec.query(s, t), plan.query(s, t))
        assert vec.query(0, 5) == INF

    def test_empty_landmark_set(self):
        g = path_graph(6)
        index = build_hcl(g, [0])
        index.plan_mode = "off"
        index.highway.remove_landmark(0)
        for v in range(6):
            index.labeling.clear_vertex(v)
        plan = QueryPlan.compile(index)
        vec = plan.vector_backend()
        for s, t in all_pairs(6):
            assert same_float(vec.query(s, t), plan.query(s, t))
        assert vec.query_many([(0, 5), (1, 4)]) == [INF, INF]

    def test_distance_vector_backend_parity(self):
        g = float_graph(11, n_lo=25, n_hi=35)
        index, plan = compiled(g, [2, 7, 13])
        for s, t in all_pairs(g.n, stride=2):
            assert same_float(
                plan.distance(s, t, backend="vector"), index.distance(s, t)
            )


# ----------------------------------------------------------------------
# query_batch backends
# ----------------------------------------------------------------------
class TestBatchBackends:
    @needs_numpy
    def test_constrained_batch_parity(self):
        g = float_graph(3, n_lo=25, n_hi=35)
        index, plan = compiled(g, [1, 8, 17])
        pairs = zipf_query_pairs(g.n, 400, alpha=1.3, seed=3)
        want = query_batch(index, pairs, plan="off")
        assert query_batch(index, pairs, plan=plan, backend="flat") == want
        assert query_batch(index, pairs, plan=plan, backend="vector") == want

    @needs_numpy
    def test_exact_batch_parity(self):
        g = float_graph(4, n_lo=25, n_hi=35)
        index, plan = compiled(g, [1, 8, 17])
        pairs = random_query_pairs(g.n, 120, seed=4)
        want = query_batch(index, pairs, exact=True, plan="off")
        got = query_batch(
            index, pairs, exact=True, plan=plan, backend="vector"
        )
        assert got == want

    @needs_numpy
    def test_pool_vector_parity(self):
        g = float_graph(13, n_lo=30, n_hi=30)
        index, plan = compiled(g, [1, 11, 21])
        pairs = [(i % g.n, (3 * i + 1) % g.n) for i in range(600)]
        want = query_batch(index, pairs, exact=True, plan="off")
        got = query_batch(
            index,
            pairs,
            workers=2,
            exact=True,
            min_parallel=10,
            plan=plan,
            backend="vector",
        )
        assert want == got

    def test_invalid_backend_rejected(self):
        g = path_graph(5)
        index = build_hcl(g, [0])
        with pytest.raises(RequestError, match="backend"):
            query_batch(index, [(0, 4)], backend="bogus")


# ----------------------------------------------------------------------
# Budget parity: degraded results, strict raises, charge sequences
# ----------------------------------------------------------------------
@needs_numpy
class TestBudgetParity:
    @pytest.mark.parametrize("max_settled", [0, 1, 5, 10_000])
    def test_degraded_results_identical(self, max_settled):
        g = float_graph(3, n_lo=35, n_hi=35)
        rng = random.Random(42)
        landmarks = sorted(rng.sample(range(g.n), 4))
        index, plan = compiled(g, landmarks)
        for s, t in all_pairs(g.n, stride=4):
            ra = index.distance(s, t, budget=Budget(max_settled=max_settled))
            rb = plan.distance(
                s,
                t,
                budget=Budget(max_settled=max_settled),
                backend="vector",
            )
            assert type(ra) is type(rb)
            assert same_float(float(ra), float(rb))
            if isinstance(ra, DegradedResult):
                assert ra.is_upper_bound == rb.is_upper_bound
                assert ra.reason == rb.reason

    def test_strict_raises_identically(self):
        g = grid_graph(6, 6)
        index, plan = compiled(g, [0, 35])
        with pytest.raises(DeadlineExceeded):
            index.distance(1, 34, budget=Budget(max_settled=1), strict=True)
        with pytest.raises(DeadlineExceeded):
            plan.distance(
                1, 34, budget=Budget(max_settled=1), strict=True,
                backend="vector",
            )

    def test_budgeted_batch_parity(self):
        g = float_graph(5, n_lo=30, n_hi=30)
        index, plan = compiled(g, [1, 8, 17])
        pairs = random_query_pairs(g.n, 60, seed=5)
        want = query_batch(
            index, pairs, exact=True, budget=Budget(max_settled=25),
            plan="off",
        )
        got = query_batch(
            index, pairs, exact=True, budget=Budget(max_settled=25),
            plan=plan, backend="vector",
        )
        assert [float(v) for v in want] == [float(v) for v in got]
        assert [type(v) for v in want] == [type(v) for v in got]

    def test_constrained_batch_charges_identically(self):
        g = grid_graph(5, 5)
        index, plan = compiled(g, [0, 24])
        pairs = random_query_pairs(g.n, 40, seed=9)
        ba, bb = Budget(max_settled=10_000), Budget(max_settled=10_000)
        query_batch(index, pairs, budget=ba, plan=plan, backend="flat")
        query_batch(index, pairs, budget=bb, plan=plan, backend="vector")
        assert ba.settled == bb.settled


# ----------------------------------------------------------------------
# Epoch pins: vectorized serving from a retired snapshot stays stable
# ----------------------------------------------------------------------
@needs_numpy
class TestEpochStability:
    def test_pinned_vector_answers_survive_commits(self):
        g = random_graph(3, n_lo=12, n_hi=18)
        dyn = DynamicHCL.build(g, sorted({1, g.n // 2}))
        registry = dyn.enable_plan_epochs(recompile="sync")
        pairs = all_pairs(g.n, stride=2)
        epoch1 = registry.acquire()
        before = epoch1.plan.vector_backend().query_many(pairs)
        assert before == [epoch1.plan.query(s, t) for s, t in pairs]
        dyn.add_landmark(g.n - 2)
        dyn.remove_landmark(1)
        # The pinned snapshot still answers with its original bits...
        assert epoch1.plan.vector_backend().query_many(pairs) == before
        # ...while the new head tracks the mutated dict oracle.
        head = registry.acquire()
        after = head.plan.vector_backend().query_many(pairs)
        assert after == [dyn.query(s, t) for s, t in pairs]
        head.release()
        epoch1.release()


# ----------------------------------------------------------------------
# numpy-less operation: everything degrades to the flat kernel
# ----------------------------------------------------------------------
class TestNoNumpyFallback:
    @pytest.fixture()
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(planvec, "_NUMPY", None)
        monkeypatch.setattr(planvec, "_NUMPY_CHECKED", True)

    def test_backend_resolution(self, no_numpy):
        assert not planvec.numpy_available()
        assert planvec.default_backend() == "flat"

    def test_vector_backend_returns_none(self, no_numpy):
        g = path_graph(6)
        _, plan = compiled(g, [0, 5])
        assert plan.vector_backend() is None

    def test_query_batch_falls_back_to_flat(self, no_numpy):
        g = float_graph(6, n_lo=20, n_hi=25)
        index, plan = compiled(g, [1, 7])
        pairs = zipf_query_pairs(g.n, 150, alpha=1.2, seed=6)
        want = query_batch(index, pairs, plan="off")
        # An explicit "vector" request degrades silently — the flat
        # kernel is the answer-identical portable path, not an error.
        assert query_batch(index, pairs, plan=plan, backend="vector") == want
        assert query_batch(index, pairs, plan=plan, backend="auto") == want

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.setattr(planvec, "_NUMPY", None)
        monkeypatch.setattr(planvec, "_NUMPY_CHECKED", False)
        assert not planvec.numpy_available()
        assert planvec.default_backend() == "flat"

    def test_env_backend_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_BACKEND", "flat")
        assert planvec.default_backend() == "flat"


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------
@needs_shm
class TestSharedMemoryLifecycle:
    def test_ref_attach_round_trip(self):
        g = float_graph(9, n_lo=25, n_hi=25)
        index, plan = compiled(g, [2, 7, 13])
        shared = plan.shared_buffers()
        assert shared is not None
        assert plan.shared_buffers() is shared  # memoized, one segment
        # The ref is the thing that crosses process boundaries: tiny.
        assert len(pickle.dumps(shared.ref)) < 256
        att = shared.ref.attach()
        try:
            clone = QueryPlan(*att.arrays())
            for s, t in all_pairs(g.n, stride=2):
                assert same_float(clone.query(s, t), plan.query(s, t))
            del clone
        finally:
            att.close()
        att.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            att.arrays()
        plan.release_shared()

    @needs_numpy
    def test_attached_vector_backend_parity(self):
        g = float_graph(10, n_lo=25, n_hi=25)
        _, plan = compiled(g, [1, 6, 11])
        shared = plan.shared_buffers()
        att = shared.ref.attach()
        try:
            vec = planvec.VectorBackend(att.arrays())
            for s, t in all_pairs(g.n, stride=3):
                assert same_float(vec.query(s, t), plan.query(s, t))
            del vec
        finally:
            att.close()
            plan.release_shared()

    def test_unlink_exactly_once(self):
        g = path_graph(8)
        _, plan = compiled(g, [0, 7])
        shared = plan.shared_buffers()
        shared.unlink()
        shared.unlink()
        plan.release_shared()  # third caller, still a no-op
        assert shared.unlinked
        assert shared.unlink_calls == 1
        # A retired segment is never resurrected for this plan.
        assert plan.shared_buffers() is None

    def test_attach_after_unlink_raises(self):
        g = path_graph(8)
        _, plan = compiled(g, [0, 7])
        shared = plan.shared_buffers()
        ref = shared.ref
        plan.release_shared()
        with pytest.raises(FileNotFoundError):
            ref.attach()

    def test_epoch_retirement_unlinks_exactly_once(self):
        g = random_graph(5, n_lo=10, n_hi=16)
        dyn = DynamicHCL.build(g, [1, g.n - 2])
        registry = dyn.enable_plan_epochs(recompile="sync")
        shared = registry.head_plan().shared_buffers()
        assert shared is not None and not shared.unlinked
        # Publishing a new epoch retires the unpinned head; retirement
        # drains to zero readers immediately and must unlink the segment.
        dyn.add_landmark(2)
        assert shared.unlinked
        assert shared.unlink_calls == 1

    def test_owner_exit_backstop_unlinks(self):
        from repro.core import shm

        g = path_graph(8)
        _, plan = compiled(g, [0, 7])
        shared = plan.shared_buffers()
        # Simulate the owner exiting while a worker crash left the
        # segment unreleased: the atexit sweep is the backstop.
        shm._unlink_owned()
        assert shared.unlinked
        assert shared.unlink_calls == 1
        plan.release_shared()  # later explicit release stays a no-op
        assert shared.unlink_calls == 1

    def test_worker_crash_mid_batch_still_unlinks_once(self):
        from repro.shard import ShardedService
        from repro.testing import ShardFault, inject_shard_fault

        g = random_graph(17, n_lo=100, n_hi=120)
        _, plan = compiled(g, sorted({1, g.n // 2, g.n - 2}))
        pairs = random_query_pairs(g.n, 120, seed=17)
        oracle = [plan.query(s, t) for s, t in pairs]
        fault = ShardFault(kind="kill", shard=0, replica=0, requests=(0,))
        with inject_shard_fault(fault):
            with ShardedService(
                plan, nshards=2, replication_factor=2, rpc_timeout=0.5
            ) as svc:
                got = svc.query_batch(pairs)
                assert got == oracle
                assert svc.health()["fleet.restarts"] >= 1
        shared = plan.shared_buffers()
        assert shared is not None  # fleet shutdown never unlinks: owner does
        plan.release_shared()
        plan.release_shared()
        assert shared.unlink_calls == 1


# ----------------------------------------------------------------------
# Transport counters: shm pool fan-out pickles zero arrays
# ----------------------------------------------------------------------
class TestTransportCounters:
    @needs_shm
    def test_pool_fanout_uses_shm_not_pickle(self):
        g = float_graph(14, n_lo=30, n_hi=30)
        index, plan = compiled(g, [2, 12, 22])
        pairs = [(i % g.n, (5 * i + 2) % g.n) for i in range(500)]
        want = query_batch(index, pairs, exact=True, plan="off")
        before = dict(TRANSPORT_COUNTS)
        got = query_batch(
            index, pairs, workers=2, exact=True, min_parallel=10, plan=plan
        )
        assert got == want
        assert TRANSPORT_COUNTS["shm"] == before["shm"] + 1
        assert TRANSPORT_COUNTS["pickle"] == before["pickle"]
        plan.release_shared()

    def test_env_forces_pickle_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_SHM", "0")
        g = float_graph(15, n_lo=30, n_hi=30)
        index, plan = compiled(g, [2, 12, 22])
        pairs = [(i % g.n, (5 * i + 2) % g.n) for i in range(500)]
        want = query_batch(index, pairs, exact=True, plan="off")
        before = dict(TRANSPORT_COUNTS)
        got = query_batch(
            index, pairs, workers=2, exact=True, min_parallel=10, plan=plan
        )
        assert got == want
        assert TRANSPORT_COUNTS["pickle"] == before["pickle"] + 1
        assert TRANSPORT_COUNTS["shm"] == before["shm"]

    @needs_shm
    def test_partition_transport_modes(self):
        g = float_graph(16, n_lo=25, n_hi=25)
        _, plan = compiled(g, [1, 6, 11])
        part = partition_plan(plan, 2, transport="auto")
        assert part.transport == "shm"
        forced = partition_plan(plan, 2, transport="pickle")
        assert forced.transport == "pickle"
        with pytest.raises(RequestError):
            partition_plan(plan, 2, transport="carrier-pigeon")
        plan.release_shared()


# ----------------------------------------------------------------------
# Typecode portability: every flat array is 8 bytes per cell everywhere
# ----------------------------------------------------------------------
class TestTypecodePortability:
    """The LLP64 sweep: ``array("l")`` is 4 bytes on 64-bit Windows, so
    every flat-layer array now pins ``"q"``/``"d"`` — 8-byte cells on
    every platform, which is also what the shm segment layout assumes."""

    def test_csr_arrays_are_8_byte(self):
        g = float_graph(2, n_lo=20, n_hi=25)
        csr = CSRGraph(g)
        clone = pickle.loads(pickle.dumps(csr))
        for c in (csr, clone):
            assert c._offsets.typecode == "q"
            assert c._offsets.itemsize == 8
            assert c._targets.typecode == "q"
            assert c._targets.itemsize == 8

    def test_plan_canonical_arrays_are_8_byte(self):
        g = float_graph(2, n_lo=20, n_hi=25)
        _, plan = compiled(g, [3, 9])
        for p in (plan, pickle.loads(pickle.dumps(plan))):
            n, k, ids, offsets, slots, dists, hw = p.canonical_arrays()
            for arr, code in (
                (ids, "q"), (offsets, "q"), (slots, "q"),
                (dists, "d"), (hw, "d"),
            ):
                assert array(code, arr).itemsize == 8
                assert memoryview(arr).itemsize == 8

    def test_partition_slices_are_8_byte(self):
        g = float_graph(2, n_lo=20, n_hi=25)
        _, plan = compiled(g, [3, 9])
        part = partition_plan(plan, 2, transport="pickle")
        for sl in part.slices:
            clone = pickle.loads(pickle.dumps(sl))
            for s in (sl, clone):
                assert s.landmark_ids.typecode == "q"
                assert s.offsets.typecode == "q"
                assert s.slots.typecode == "q"
                assert s.row_lengths.typecode == "q"
                assert s.dists.typecode == "d"
                assert s.hw.typecode == "d"
                for arr in (s.landmark_ids, s.offsets, s.slots,
                            s.row_lengths, s.dists, s.hw):
                    assert arr.itemsize == 8
