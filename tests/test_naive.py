"""Tests for the naive landmark-constrained baselines."""

import pytest

from conftest import cycle_graph, random_graph
from repro.baselines import DistanceMatrixOracle, multi_dijkstra_landmark_constrained
from repro.errors import LandmarkError, VertexError
from repro.graphs import INF, single_source_distances


class TestMultiDijkstra:
    def test_simple(self):
        g = cycle_graph(6)
        assert multi_dijkstra_landmark_constrained(g, [0], 2, 4) == 4.0

    def test_empty_landmarks(self):
        g = cycle_graph(4)
        assert multi_dijkstra_landmark_constrained(g, [], 0, 1) == INF

    def test_picks_best_landmark(self):
        g = cycle_graph(8)
        assert multi_dijkstra_landmark_constrained(g, [0, 4], 3, 5) == 2.0


class TestDistanceMatrixOracle:
    def test_matches_multi_dijkstra(self):
        g = random_graph(4, n_lo=8, n_hi=20)
        landmarks = [v for v in range(g.n) if v % 3 == 0]
        oracle = DistanceMatrixOracle(g, landmarks)
        for s in range(0, g.n, 2):
            for t in range(1, g.n, 2):
                want = multi_dijkstra_landmark_constrained(g, landmarks, s, t)
                assert oracle.landmark_constrained_distance(s, t) == want

    def test_dynamic_updates(self):
        g = cycle_graph(8)
        oracle = DistanceMatrixOracle(g, [0])
        oracle.add_landmark(4)
        assert oracle.landmark_constrained_distance(3, 5) == 2.0
        oracle.remove_landmark(4)
        assert oracle.landmark_constrained_distance(3, 5) == 6.0

    def test_memory_accounting(self):
        g = cycle_graph(10)
        oracle = DistanceMatrixOracle(g, [0, 5])
        assert oracle.memory_entries() == 20

    def test_empty_is_inf(self):
        oracle = DistanceMatrixOracle(cycle_graph(4))
        assert oracle.landmark_constrained_distance(0, 2) == INF

    def test_errors(self):
        oracle = DistanceMatrixOracle(cycle_graph(4), [1])
        with pytest.raises(LandmarkError):
            oracle.add_landmark(1)
        with pytest.raises(LandmarkError):
            oracle.remove_landmark(2)
        with pytest.raises(VertexError):
            oracle.add_landmark(44)

    def test_rows_are_exact_distances(self):
        g = random_graph(7)
        oracle = DistanceMatrixOracle(g, [0])
        assert oracle._rows[0] == single_source_distances(g, 0)
