"""Tests for replayable workload traces."""

import io

import pytest

from conftest import cycle_graph
from repro.baselines import CHGSP
from repro.core import DynamicHCL
from repro.errors import ParseError
from repro.workloads.trace import Trace, TraceOp, replay


@pytest.fixture
def sample_trace():
    return (
        Trace()
        .query(2, 4)
        .add_landmark(4)
        .query(3, 5)
        .remove_landmark(0)
        .query(3, 5)
    )


class TestTraceStructure:
    def test_builder_chain(self, sample_trace):
        assert len(sample_trace) == 5
        assert sample_trace.ops[0] == TraceOp("query", 2, 4)
        assert sample_trace.ops[1] == TraceOp("add", 4)

    def test_bad_kind_rejected(self):
        with pytest.raises(ParseError):
            TraceOp("toggle", 1)

    def test_query_needs_two_vertices(self):
        with pytest.raises(ParseError):
            TraceOp("query", 1)


class TestPersistence:
    def test_roundtrip_file(self, sample_trace, tmp_path):
        path = tmp_path / "trace.json"
        sample_trace.save(path)
        assert Trace.load(path) == sample_trace

    def test_roundtrip_stream(self, sample_trace):
        buf = io.StringIO()
        sample_trace.save(buf)
        buf.seek(0)
        assert Trace.load(buf) == sample_trace

    def test_bad_schema(self):
        with pytest.raises(ParseError):
            Trace.load(io.StringIO('{"schema": "x", "ops": []}'))

    def test_malformed_op(self):
        with pytest.raises(ParseError):
            Trace.load(
                io.StringIO('{"schema": "dyn-hcl-trace/1", "ops": [[1,2,3,4]]}')
            )


class TestReplay:
    def test_replay_against_dynhcl(self, sample_trace):
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        result = replay(sample_trace, dyn)
        assert result.queries == 3
        assert result.updates == 2
        assert result.answers[0] == 6.0  # 2->4 via 0 with R={0}: 2 + 4
        assert result.answers[1] == 2.0  # 3->5 via 4 after add
        assert result.answers[2] == 2.0  # still via 4 after removing 0
        assert result.seconds > 0
        assert result.amortized_seconds == pytest.approx(result.seconds / 3)

    def test_identical_answers_across_engines(self, sample_trace):
        """The point of traces: byte-identical workloads for both engines."""
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        gsp = CHGSP(g, [0])
        assert replay(sample_trace, dyn).answers == replay(sample_trace, gsp).answers

    def test_empty_trace(self):
        g = cycle_graph(4)
        dyn = DynamicHCL.build(g, [0])
        result = replay(Trace(), dyn)
        assert result.queries == 0
        assert result.amortized_seconds == 0.0
