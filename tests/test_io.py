"""Tests for graph file I/O (DIMACS and edge lists)."""

import io
from pathlib import Path

import pytest

from repro.errors import GraphFormatError, ParseError
from repro.graphs import (
    Graph,
    read_dimacs,
    read_edge_list,
    write_dimacs,
    write_edge_list,
)
from repro.graphs.io import graph_from_string


class TestDimacs:
    DIMACS = """c example
p sp 4 6
a 1 2 5
a 2 1 5
a 2 3 2
a 3 2 2
a 3 4 7
a 4 3 7
"""

    def test_parse(self):
        g = read_dimacs(io.StringIO(self.DIMACS))
        assert g.n == 4
        assert g.m == 3
        assert g.edge_weight(0, 1) == 5.0
        assert g.edge_weight(2, 3) == 7.0

    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges(5, [(0, 1, 2.0), (1, 2, 3.0), (3, 4, 1.0)])
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        h = read_dimacs(path)
        assert g == h

    def test_duplicate_arcs_keep_minimum(self):
        text = "p sp 2 2\na 1 2 9\na 1 2 4\n"
        g = read_dimacs(io.StringIO(text))
        assert g.edge_weight(0, 1) == 4.0

    def test_missing_problem_line(self):
        with pytest.raises(ParseError):
            read_dimacs(io.StringIO("a 1 2 3\n"))

    def test_vertex_out_of_range(self):
        with pytest.raises(ParseError):
            read_dimacs(io.StringIO("p sp 2 1\na 1 5 3\n"))

    def test_unknown_record(self):
        with pytest.raises(ParseError):
            read_dimacs(io.StringIO("p sp 2 1\nx 1 2 3\n"))

    def test_self_loops_skipped(self):
        g = read_dimacs(io.StringIO("p sp 2 2\na 1 1 3\na 1 2 1\n"))
        assert g.m == 1


class TestEdgeList:
    def test_parse_unweighted(self):
        g = read_edge_list(io.StringIO("# comment\n0 1\n1 2\n"))
        assert g.n == 3
        assert g.m == 2
        assert g.unweighted

    def test_parse_weighted(self):
        g = read_edge_list(io.StringIO("0 1 2.5\n1 2 4\n"))
        assert not g.unweighted
        assert g.edge_weight(1, 2) == 4.0

    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges(4, [(0, 1, 1.5), (2, 3, 2.5)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_roundtrip_unweighted(self, tmp_path):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], unweighted=True)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        h = read_edge_list(path)
        assert h.unweighted
        assert h == g

    def test_malformed_line(self):
        with pytest.raises(ParseError):
            read_edge_list(io.StringIO("0 1 2 3\n"))

    def test_negative_id(self):
        with pytest.raises(ParseError):
            read_edge_list(io.StringIO("-1 2\n"))

    def test_graph_from_string(self):
        g = graph_from_string("0 1\n1 2\n")
        assert g.m == 2
        with pytest.raises(ParseError):
            graph_from_string("0 1", fmt="nope")


class TestGraphFormatError:
    """Malformed input raises a typed error pinned to its 1-based line."""

    FIXTURES = Path(__file__).parent / "data"

    def test_is_a_parse_error(self):
        assert issubclass(GraphFormatError, ParseError)

    def test_bad_arc_weight_names_line_and_text(self):
        with pytest.raises(GraphFormatError) as info:
            graph_from_string("p sp 3 2\na 1 2 1\na 2 3 fast\n", fmt="dimacs")
        err = info.value
        assert err.line == 3
        assert err.text == "a 2 3 fast"
        assert "line 3" in str(err)
        assert "'fast'" in str(err)

    def test_bad_vertex_count(self):
        with pytest.raises(GraphFormatError) as info:
            graph_from_string("p sp many 2\n", fmt="dimacs")
        assert info.value.line == 1
        with pytest.raises(GraphFormatError, match="negative"):
            graph_from_string("p sp -4 2\n", fmt="dimacs")

    def test_arc_before_problem_line(self):
        with pytest.raises(GraphFormatError, match="before problem line") as info:
            graph_from_string("c comment\na 1 2 1\n", fmt="dimacs")
        assert info.value.line == 2

    def test_unknown_record_type(self):
        with pytest.raises(GraphFormatError, match="unknown record") as info:
            graph_from_string("p sp 2 1\nz 1 2 1\n", fmt="dimacs")
        assert info.value.line == 2

    def test_missing_problem_line_is_not_line_pinned(self):
        # no single line is at fault, so the error stays a plain ParseError
        with pytest.raises(ParseError) as info:
            graph_from_string("c only comments\n", fmt="dimacs")
        assert not isinstance(info.value, GraphFormatError)

    def test_edge_list_bad_endpoint(self):
        with pytest.raises(GraphFormatError) as info:
            graph_from_string("0 1\n1 two\n")
        err = info.value
        assert err.line == 2
        assert err.text == "1 two"
        assert "integer" in str(err)

    def test_edge_list_line_numbers_count_comments_and_blanks(self):
        with pytest.raises(GraphFormatError) as info:
            graph_from_string("# header\n\n0 1\n0 1 2 3\n")
        assert info.value.line == 4

    def test_corrupt_dimacs_fixture(self):
        with pytest.raises(GraphFormatError) as info:
            read_dimacs(self.FIXTURES / "corrupt_weight.gr")
        err = info.value
        assert err.line == 5
        assert "'1.O'" in str(err)
        assert err.text == "a 3 4 1.O"

    def test_out_of_range_dimacs_fixture(self):
        with pytest.raises(GraphFormatError, match="out of range") as info:
            read_dimacs(self.FIXTURES / "corrupt_out_of_range.gr")
        assert info.value.line == 4

    def test_corrupt_edge_list_fixture(self):
        with pytest.raises(GraphFormatError) as info:
            read_edge_list(self.FIXTURES / "corrupt_endpoint.edgelist")
        err = info.value
        assert err.line == 3
        assert err.text == "2 x 1.5"
