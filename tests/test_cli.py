"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "UPGRADE-LMK(3)" in out

    def test_table1_with_scale(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "TWI" in out

    def test_table2_with_filters(self, capsys):
        code = main(
            ["table2", "--scale", "0.08", "--datasets", "LUX", "--no-large"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LUX" in out
        assert "Table 2 (bottom)" not in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0

    def test_export_csv_flag(self, tmp_path, capsys):
        out_csv = tmp_path / "t2.csv"
        code = main(
            [
                "table2", "--scale", "0.08", "--datasets", "LUX",
                "--no-large", "--export", str(out_csv),
            ]
        )
        assert code == 0
        header = out_csv.read_text().splitlines()[0]
        assert header.startswith("dataset,landmarks,sigma")
