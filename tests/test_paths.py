"""Tests for path reporting on HCL indexes."""

import random

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import (
    build_hcl,
    highway_path,
    label_path,
    landmark_constrained_path,
    shortest_path,
)
from repro.errors import LandmarkError, ReproError
from repro.graphs import single_source_distances


def path_weight(g, path):
    return sum(g.edge_weight(path[i], path[i + 1]) for i in range(len(path) - 1))


class TestLabelPath:
    def test_simple_chain(self):
        g = path_graph(5)
        index = build_hcl(g, [0])
        assert label_path(index, 0, 4) == [0, 1, 2, 3, 4]

    def test_self_path(self):
        index = build_hcl(path_graph(3), [1])
        assert label_path(index, 1, 1) == [1]

    def test_uncovered_vertex_rejected(self):
        g = path_graph(5)
        index = build_hcl(g, [1, 2])
        with pytest.raises(LandmarkError):
            label_path(index, 2, 0)  # 0 is not covered by 2

    @pytest.mark.parametrize("seed", range(5))
    def test_path_realizes_entry_distance(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        index = build_hcl(g, landmarks)
        for v in range(g.n):
            for r, d in index.labeling.label(v).items():
                p = label_path(index, r, v)
                assert p[0] == r and p[-1] == v
                assert path_weight(g, p) == d
                # internal vertices avoid other landmarks (canonical form)
                assert all(x not in set(landmarks) for x in p[1:-1])


class TestHighwayPath:
    def test_direct_leg(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0, 3])
        p = highway_path(index, 0, 3)
        assert p[0] == 0 and p[-1] == 3
        assert path_weight(g, p) == 3.0

    def test_decomposes_at_middle_landmark(self):
        g = path_graph(5)
        index = build_hcl(g, [0, 2, 4])
        p = highway_path(index, 0, 4)
        assert p == [0, 1, 2, 3, 4]

    def test_same_landmark(self):
        index = build_hcl(path_graph(3), [1])
        assert highway_path(index, 1, 1) == [1]

    def test_non_landmark_rejected(self):
        index = build_hcl(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            highway_path(index, 1, 0)

    def test_disconnected_landmarks_rejected(self):
        g = path_graph(2)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(2, 3, 1.0)
        index = build_hcl(g, [0, 3])
        with pytest.raises(ReproError):
            highway_path(index, 0, 3)


class TestConstrainedAndShortest:
    @pytest.mark.parametrize("seed", range(5))
    def test_constrained_path_realizes_query(self, seed):
        g = random_graph(seed)
        rng = random.Random(seed)
        landmarks = sorted(rng.sample(range(g.n), max(1, g.n // 4)))
        index = build_hcl(g, landmarks)
        for _ in range(10):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            q = index.query(s, t)
            if q == float("inf"):
                continue
            p = landmark_constrained_path(index, s, t)
            assert p[0] == s and p[-1] == t
            assert path_weight(g, p) == q
            assert any(v in set(landmarks) for v in p)

    @pytest.mark.parametrize("seed", range(5))
    def test_shortest_path_is_exact(self, seed):
        g = random_graph(seed)
        rng = random.Random(seed + 7)
        landmarks = sorted(rng.sample(range(g.n), max(1, g.n // 5)))
        index = build_hcl(g, landmarks)
        for _ in range(10):
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            d = single_source_distances(g, s)[t]
            if d == float("inf"):
                with pytest.raises(ReproError):
                    shortest_path(index, s, t)
                continue
            p = shortest_path(index, s, t)
            assert p[0] == s and p[-1] == t
            assert path_weight(g, p) == d

    def test_shortest_path_same_vertex(self):
        index = build_hcl(path_graph(3), [1])
        assert shortest_path(index, 2, 2) == [2]

    def test_no_constrained_path(self):
        g = path_graph(2)
        g.add_vertex()
        index = build_hcl(g, [1])
        with pytest.raises(ReproError):
            landmark_constrained_path(index, 0, 2)
