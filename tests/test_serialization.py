"""Tests for HCL index persistence (JSON and binary)."""

import io

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import build_hcl
from repro.core.serialization import (
    load_index_binary,
    load_index_json,
    save_index_binary,
    save_index_json,
)
from repro.errors import ParseError, VertexError


@pytest.mark.parametrize("fmt", ["json", "binary"])
class TestRoundTrips:
    def _roundtrip(self, index, graph, fmt, tmp_path):
        path = tmp_path / f"index.{fmt}"
        if fmt == "json":
            save_index_json(index, path)
            return load_index_json(graph, path)
        save_index_binary(index, path)
        return load_index_binary(graph, path)

    def test_simple(self, fmt, tmp_path):
        g = cycle_graph(8)
        index = build_hcl(g, [0, 4])
        loaded = self._roundtrip(index, g, fmt, tmp_path)
        assert loaded.structurally_equal(index)

    def test_empty_landmarks(self, fmt, tmp_path):
        g = path_graph(4)
        index = build_hcl(g, [])
        loaded = self._roundtrip(index, g, fmt, tmp_path)
        assert loaded.structurally_equal(index)

    def test_disconnected_inf_distances(self, fmt, tmp_path):
        g = path_graph(3)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(3, 4, 1.0)
        index = build_hcl(g, [1, 4])
        loaded = self._roundtrip(index, g, fmt, tmp_path)
        assert loaded.highway.distance(1, 4) == float("inf")
        assert loaded.structurally_equal(index)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, fmt, tmp_path, seed):
        g = random_graph(seed)
        index = build_hcl(g, [v for v in range(g.n) if v % 3 == 0])
        loaded = self._roundtrip(index, g, fmt, tmp_path)
        assert loaded.structurally_equal(index)

    def test_loaded_index_answers_queries(self, fmt, tmp_path):
        g = cycle_graph(10)
        index = build_hcl(g, [0, 5])
        loaded = self._roundtrip(index, g, fmt, tmp_path)
        for s in range(10):
            for t in range(10):
                assert loaded.query(s, t) == index.query(s, t)
                assert loaded.distance(s, t) == index.distance(s, t)


class TestValidation:
    def test_json_wrong_graph_size(self, tmp_path):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        path = tmp_path / "i.json"
        save_index_json(index, path)
        with pytest.raises(VertexError):
            load_index_json(cycle_graph(8), path)

    def test_binary_wrong_graph_size(self, tmp_path):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        path = tmp_path / "i.bin"
        save_index_binary(index, path)
        with pytest.raises(VertexError):
            load_index_binary(cycle_graph(8), path)

    def test_json_bad_schema(self):
        buf = io.StringIO('{"schema": "bogus/9"}')
        with pytest.raises(ParseError):
            load_index_json(cycle_graph(4), buf)

    def test_binary_bad_magic(self):
        buf = io.BytesIO(b"NOPE!")
        with pytest.raises(ParseError):
            load_index_binary(cycle_graph(4), buf)

    def test_binary_is_smaller_than_json(self, tmp_path):
        g = random_graph(5, n_lo=25, n_hi=30)
        index = build_hcl(g, [v for v in range(g.n) if v % 3 == 0])
        jpath, bpath = tmp_path / "i.json", tmp_path / "i.bin"
        save_index_json(index, jpath)
        save_index_binary(index, bpath)
        assert bpath.stat().st_size < jpath.stat().st_size


class TestStreams:
    def test_json_stream_roundtrip(self):
        g = cycle_graph(5)
        index = build_hcl(g, [2])
        buf = io.StringIO()
        save_index_json(index, buf)
        buf.seek(0)
        assert load_index_json(g, buf).structurally_equal(index)

    def test_binary_stream_roundtrip(self):
        g = cycle_graph(5)
        index = build_hcl(g, [2])
        buf = io.BytesIO()
        save_index_binary(index, buf)
        buf.seek(0)
        assert load_index_binary(g, buf).structurally_equal(index)
