"""Tests for the directed-HCL extension (future-work i)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_directed_hcl,
    downgrade_landmark_directed,
    upgrade_landmark_directed,
)
from repro.errors import LandmarkError, VertexError
from repro.graphs import DiGraph

INF = math.inf


def directed_path(n: int) -> DiGraph:
    g = DiGraph(n, unweighted=True)
    for i in range(n - 1):
        g.add_arc(i, i + 1, 1.0)
    return g


def directed_cycle(n: int) -> DiGraph:
    g = DiGraph(n, unweighted=True)
    for i in range(n):
        g.add_arc(i, (i + 1) % n, 1.0)
    return g


def random_digraph(seed: int, n_lo=5, n_hi=16) -> DiGraph:
    rng = random.Random(seed)
    n = rng.randint(n_lo, n_hi)
    g = DiGraph(n, unweighted=(rng.random() < 0.5))
    for _ in range(rng.randint(n, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not any(x == v for x, _ in g.out_neighbors(u)):
            w = 1.0 if g.unweighted else float(rng.randint(1, 5))
            g.add_arc(u, v, w)
    return g


def dijkstra_from(g: DiGraph, s: int) -> list[float]:
    import heapq

    dist = [INF] * g.n
    dist[s] = 0.0
    heap = [(0.0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in g.out_neighbors(u):
            if d + w < dist[v]:
                dist[v] = d + w
                heapq.heappush(heap, (d + w, v))
    return dist


class TestBuild:
    def test_asymmetric_labels_on_directed_path(self):
        g = directed_path(4)
        index = build_directed_hcl(g, [1])
        # forward coverage: 1 reaches 2, 3; backward coverage: 0 reaches 1.
        assert index.label_out(3) == {1: 2.0}
        assert index.label_in(0) == {1: 1.0}
        assert index.label_out(0) == {}  # 1 cannot reach 0
        assert index.label_in(3) == {}  # 3 cannot reach 1

    def test_highway_is_asymmetric(self):
        g = directed_cycle(5)
        index = build_directed_hcl(g, [0, 2])
        assert index.highway_distance(0, 2) == 2.0
        assert index.highway_distance(2, 0) == 3.0

    def test_landmark_self_entries(self):
        index = build_directed_hcl(directed_cycle(4), [1])
        assert index.label_out(1) == {1: 0.0}
        assert index.label_in(1) == {1: 0.0}

    def test_duplicate_landmark_rejected(self):
        with pytest.raises(LandmarkError):
            build_directed_hcl(directed_path(3), [1, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(VertexError):
            build_directed_hcl(directed_path(3), [9])


class TestQueries:
    def test_query_is_directional(self):
        g = directed_cycle(6)
        index = build_directed_hcl(g, [0])
        # 2 -> 4 through 0 must wrap around: 4 + 4 = 8.
        assert index.query(2, 4) == 8.0
        assert index.distance(2, 4) == 2.0

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_distance(self, seed):
        g = random_digraph(seed)
        rng = random.Random(seed)
        landmarks = sorted(rng.sample(range(g.n), max(1, g.n // 4)))
        index = build_directed_hcl(g, landmarks)
        for s in range(0, g.n, 2):
            dist = dijkstra_from(g, s)
            for t in range(g.n):
                assert index.distance(s, t) == dist[t], (s, t)

    @pytest.mark.parametrize("seed", range(4))
    def test_query_matches_bruteforce(self, seed):
        g = random_digraph(seed)
        rng = random.Random(seed + 9)
        landmarks = sorted(rng.sample(range(g.n), max(1, g.n // 4)))
        index = build_directed_hcl(g, landmarks)
        for s in range(g.n):
            dist_s = dijkstra_from(g, s)
            for t in range(0, g.n, 2):
                want = min(
                    (dist_s[r] + dijkstra_from(g, r)[t] for r in landmarks),
                    default=INF,
                )
                assert index.query(s, t) == want, (s, t)


class TestDynamics:
    def test_upgrade_errors(self):
        index = build_directed_hcl(directed_path(3), [1])
        with pytest.raises(LandmarkError):
            upgrade_landmark_directed(index, 1)
        with pytest.raises(VertexError):
            upgrade_landmark_directed(index, 42)

    def test_downgrade_errors(self):
        index = build_directed_hcl(directed_path(3), [1])
        with pytest.raises(LandmarkError):
            downgrade_landmark_directed(index, 0)

    def test_upgrade_matches_rebuild(self):
        g = directed_cycle(7)
        index = build_directed_hcl(g, [0])
        upgrade_landmark_directed(index, 3)
        assert index.structurally_equal(build_directed_hcl(g, [0, 3]))

    def test_downgrade_matches_rebuild(self):
        g = directed_cycle(7)
        index = build_directed_hcl(g, [0, 3])
        downgrade_landmark_directed(index, 0)
        assert index.structurally_equal(build_directed_hcl(g, [3]))

    def test_total_entries(self):
        index = build_directed_hcl(directed_path(3), [1])
        # L_out: {1: 0} at 1, {1: 1} at 2; L_in: {1: 1} at 0, {1: 0} at 1.
        assert index.total_entries() == 4


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_directed_updates_stay_canonical(seed):
    g = random_digraph(seed)
    rng = random.Random(seed + 1)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 4)))
    index = build_directed_hcl(g, sorted(landmarks))
    for _ in range(5):
        addable = [v for v in range(g.n) if v not in landmarks]
        if landmarks and (not addable or rng.random() < 0.5):
            v = rng.choice(sorted(landmarks))
            downgrade_landmark_directed(index, v)
            landmarks.discard(v)
        elif addable:
            v = rng.choice(addable)
            upgrade_landmark_directed(index, v)
            landmarks.add(v)
        fresh = build_directed_hcl(g, sorted(landmarks))
        assert index.structurally_equal(fresh)


class TestDirectedFacade:
    def test_build_and_query(self):
        from repro.core.directed import DirectedDynamicHCL

        g = directed_cycle(4)
        dyn = DirectedDynamicHCL.build(g, [1])
        assert dyn.landmarks == {1}
        assert dyn.query(0, 2) == 2.0
        assert dyn.distance(0, 2) == 2.0

    def test_add_remove_and_rebuild(self):
        from repro.core.directed import DirectedDynamicHCL

        g = directed_cycle(6)
        dyn = DirectedDynamicHCL.build(g, [0])
        dyn.add_landmark(3)
        dyn.remove_landmark(0)
        assert dyn.landmarks == {3}
        assert dyn.index.structurally_equal(dyn.rebuild())

    def test_doctest_scenario(self):
        from repro.core.directed import DirectedDynamicHCL

        g = directed_cycle(4)
        dyn = DirectedDynamicHCL.build(g, [1])
        dyn.add_landmark(3)
        assert dyn.query(0, 2) == 2.0
        dyn.remove_landmark(1)
        assert dyn.query(0, 2) == 6.0


class TestDirectedTopology:
    def test_insert_arc_creates_shortcut(self):
        from repro.core.directed import build_directed_hcl, insert_arc_directed

        g = directed_path(5)
        index = build_directed_hcl(g, [0])
        affected = insert_arc_directed(index, 0, 4, 1.0)
        assert affected == 1
        assert index.label_out(4)[0] == 1.0
        assert index.structurally_equal(build_directed_hcl(g, [0]))

    def test_irrelevant_arc_repairs_nothing(self):
        from repro.core.directed import build_directed_hcl, insert_arc_directed

        g = DiGraph(4)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            g.add_arc(u, v, 1.0)
        index = build_directed_hcl(g, [0])
        # heavy back-arc cannot shorten anything from 0
        affected = insert_arc_directed(index, 3, 1, 9.0)
        assert affected == 0
        assert index.structurally_equal(build_directed_hcl(g, [0]))

    def test_delete_arc_reroutes(self):
        from repro.core.directed import build_directed_hcl, delete_arc_directed

        g = directed_cycle(5)
        index = build_directed_hcl(g, [0])
        affected = delete_arc_directed(index, 0, 1)
        assert affected == 1
        assert index.label_out(1) == {}  # 1 is now unreachable from 0
        assert index.structurally_equal(build_directed_hcl(g, [0]))

    def test_delete_missing_arc_raises(self):
        from repro.core.directed import build_directed_hcl, delete_arc_directed
        from repro.errors import LandmarkError

        index = build_directed_hcl(directed_path(3), [1])
        with pytest.raises(LandmarkError):
            delete_arc_directed(index, 2, 0)

    def test_remove_arc_digraph_api(self):
        from repro.errors import EdgeError

        g = DiGraph(3)
        g.add_arc(0, 1, 2.5)
        assert g.remove_arc(0, 1) == 2.5
        assert g.m == 0
        with pytest.raises(EdgeError):
            g.remove_arc(0, 1)
