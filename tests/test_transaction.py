"""Tests for transactional (all-or-nothing) index mutations."""

import io

import pytest

from conftest import cycle_graph, grid_graph, random_graph
from repro.core import DynamicHCL, build_hcl
from repro.core.serialization import save_index_binary
from repro.core.transaction import IndexTransaction
from repro.core.upgrade import upgrade_landmark
from repro.errors import LandmarkError, TransactionError
from repro.testing import InjectedFault, fail_at_label_write, fail_at_phase


def serialized(index) -> bytes:
    buf = io.BytesIO()
    save_index_binary(index, buf)
    return buf.getvalue()


class TestIndexTransaction:
    def test_commit_keeps_changes(self):
        g = cycle_graph(8)
        index = build_hcl(g, [0])
        with IndexTransaction(index):
            upgrade_landmark(index, 4)
        assert index.landmarks == {0, 4}
        assert serialized(index) == serialized(build_hcl(g, [0, 4]))

    def test_rollback_restores_bytes(self):
        g = grid_graph(4, 5)
        index = build_hcl(g, [0, 7])
        before = serialized(index)
        with pytest.raises(TransactionError):
            with IndexTransaction(index):
                with fail_at_label_write(5):
                    upgrade_landmark(index, 13)
        assert serialized(index) == before

    def test_library_errors_keep_their_type(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        with pytest.raises(LandmarkError):
            with IndexTransaction(index):
                upgrade_landmark(index, 0)  # already a landmark

    def test_foreign_errors_wrapped_with_cause(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        try:
            with IndexTransaction(index):
                upgrade_landmark(index, 3)
                raise ValueError("boom")
        except TransactionError as exc:
            assert isinstance(exc.__cause__, ValueError)
        else:  # pragma: no cover
            pytest.fail("expected TransactionError")
        # the committed-inside-the-block upgrade was rolled back too
        assert index.landmarks == {0}

    def test_nested_transaction_joins_outer(self):
        g = cycle_graph(10)
        index = build_hcl(g, [0])
        before = serialized(index)
        with pytest.raises(TransactionError):
            with IndexTransaction(index):
                with IndexTransaction(index):  # no-op: joins the outer txn
                    upgrade_landmark(index, 5)
                raise InjectedFault("outer fails after inner committed")
        assert serialized(index) == before

    def test_journal_detached_after_exit(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        with IndexTransaction(index):
            upgrade_landmark(index, 2)
        assert index.labeling._journal is None
        assert index.highway._journal is None
        # post-transaction mutations are not journaled (and don't leak)
        upgrade_landmark(index, 4)
        assert index.landmarks == {0, 2, 4}


class TestMarchingFaults:
    """Sweep an injected crash through every write of an update."""

    @pytest.mark.parametrize("seed", range(3))
    def test_upgrade_rolls_back_at_every_write(self, seed):
        g = random_graph(seed, n_lo=10, n_hi=18)
        landmarks = [0, g.n - 1]
        new = g.n // 2
        nth = 0
        while True:
            nth += 1
            index = build_hcl(g, landmarks)
            before = serialized(index)
            try:
                with fail_at_label_write(nth) as state:
                    with IndexTransaction(index):
                        upgrade_landmark(index, new)
            except TransactionError:
                assert serialized(index) == before
                continue
            # fault count exceeded the update's writes: it ran clean
            assert state["writes"] < nth
            assert serialized(index) == serialized(
                build_hcl(g, sorted(landmarks + [new]))
            )
            break
        assert nth > 1  # the sweep exercised at least one failing position

    @pytest.mark.parametrize("seed", range(3))
    def test_downgrade_rolls_back_at_every_write(self, seed):
        g = random_graph(seed + 50, n_lo=10, n_hi=18)
        landmarks = sorted({0, g.n // 3, g.n - 1})
        victim = landmarks[1]
        nth = 0
        while True:
            nth += 1
            dyn = DynamicHCL.build(g, landmarks)
            before = serialized(dyn.index)
            try:
                with fail_at_label_write(nth):
                    dyn.remove_landmark(victim)
            except TransactionError:
                assert serialized(dyn.index) == before
                assert dyn.log.count == 0  # failed update leaves no record
                continue
            remaining = [r for r in landmarks if r != victim]
            assert serialized(dyn.index) == serialized(build_hcl(g, remaining))
            break
        assert nth > 1

    @pytest.mark.parametrize("phase", ["highway", "search"])
    def test_upgrade_phase_boundary_rolls_back(self, phase):
        g = grid_graph(4, 4)
        dyn = DynamicHCL.build(g, [0, 15])
        before = serialized(dyn.index)
        with pytest.raises(TransactionError):
            with fail_at_phase(phase):
                dyn.add_landmark(9)
        assert serialized(dyn.index) == before
        assert dyn.landmarks == {0, 15}

    def test_downgrade_phase_boundary_rolls_back(self):
        g = grid_graph(4, 4)
        dyn = DynamicHCL.build(g, [0, 5, 15])
        before = serialized(dyn.index)
        with pytest.raises(TransactionError):
            with fail_at_phase("sweep"):
                dyn.remove_landmark(5)
        assert serialized(dyn.index) == before
        assert dyn.landmarks == {0, 5, 15}


class TestDynamicHCLTransactions:
    def test_failed_update_appends_no_log_record(self):
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        with pytest.raises(TransactionError):
            with fail_at_label_write(2):
                dyn.add_landmark(4)
        assert dyn.log.count == 0
        dyn.add_landmark(4)
        assert dyn.log.count == 1

    def test_version_bumps_on_commit_only(self):
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        v0 = dyn.version
        with pytest.raises(TransactionError):
            with fail_at_label_write(2):
                dyn.add_landmark(4)
        assert dyn.version == v0  # rolled back to the identical state
        dyn.add_landmark(4)
        assert dyn.version == v0 + 1

    def test_truncate_log_bumps_version(self):
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        dyn.add_landmark(4)
        v = dyn.version
        dyn.truncate_log(0)
        assert dyn.log.count == 0
        assert dyn.version == v + 1
        with pytest.raises(TransactionError):
            dyn.truncate_log(5)

    def test_non_transactional_opt_out(self):
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        dyn.add_landmark(4, transactional=False)
        assert dyn.landmarks == {0, 4}
        with pytest.raises(InjectedFault):  # raw fault, no rollback wrapper
            with fail_at_label_write(2):
                dyn.remove_landmark(4, transactional=False)
