"""Operating under load: budgets, degraded answers, breaker, auditor.

The contract under test, end to end:

* a non-strict budgeted query returns either the exact answer or a
  flagged :class:`~repro.budget.DegradedResult` that is a sound upper
  bound on the true distance — never a silent wrong answer;
* with no budget every result is byte-identical to the unbudgeted
  engine;
* budgeted mutations cancel cleanly (rollback, retriable error);
* admission control sheds, the circuit breaker isolates write-path
  faults on an exact schedule, and the background auditor detects,
  quarantines and repairs silent index corruption.
"""

import io
import random
from contextlib import contextmanager

import pytest

from conftest import grid_graph, path_graph, random_graph
from repro.breaker import CircuitBreaker
from repro.budget import Budget, DegradedResult
from repro.core import IndexAuditor, build_hcl
from repro.core.dynhcl import DynamicHCL
from repro.core.invariants import find_cover_violations
from repro.core.serialization import save_index_binary
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    LandmarkError,
    Overloaded,
    RequestError,
    TransactionError,
)
from repro.graphs import single_source_distances
from repro.service import (
    AddLandmarkRequest,
    DistanceRequest,
    HCLService,
    RemoveLandmarkRequest,
)
from repro.testing import FakeClock, fail_at_label_write, slow_search
from repro.testing.faults import InjectedFault


@contextmanager
def label_device_down():
    """Every label write fails, for as long as the context is active.

    Unlike :func:`fail_at_label_write` (which fires once, so the
    auditor's same-tick escalation retry would succeed), this keeps the
    write path down — the shape of a genuinely unhealthy device.
    """
    from repro.core.labeling import Labeling

    orig = Labeling.add_entry

    def boom(self, *args, **kwargs):
        raise InjectedFault("label device down")

    Labeling.add_entry = boom
    try:
        yield
    finally:
        Labeling.add_entry = orig


def serialized(index) -> bytes:
    buf = io.BytesIO()
    save_index_binary(index, buf)
    return buf.getvalue()


def corrupt_label(index, value: float = 0.25) -> tuple[int, int]:
    """Silently corrupt one label entry; returns (vertex, landmark)."""
    for v in range(index.graph.n):
        if v in index.highway:
            continue
        for r, d in index.labeling.label(v).items():
            if d > value:
                index.labeling._labels[v][r] = value
                return v, r
    raise AssertionError("no corruptible label entry found")


@pytest.fixture
def dyn():
    return DynamicHCL.build(grid_graph(4, 5), [0, 19])


@pytest.fixture
def svc():
    return HCLService.build(grid_graph(4, 5), [0, 19])


# ----------------------------------------------------------------------
# Budget object
# ----------------------------------------------------------------------
class TestBudget:
    def test_validation(self):
        with pytest.raises(RequestError):
            Budget(seconds=-1.0)
        with pytest.raises(RequestError):
            Budget(seconds=float("nan"))
        with pytest.raises(RequestError):
            Budget(max_settled=-5)

    def test_unlimited_never_expires(self):
        b = Budget()
        assert b.unlimited
        assert not b.charge(10**9)
        assert not b.check()
        assert b.remaining_seconds() == float("inf")

    def test_step_budget_is_sticky(self):
        b = Budget(max_settled=3)
        assert not b.charge(3)
        assert b.charge(1)
        assert b.exceeded and b.reason == "steps"
        # once exceeded, always exceeded — even a zero charge reports it
        assert b.charge(0)
        with pytest.raises(DeadlineExceeded, match="steps"):
            b.raise_if_exceeded("UPGRADE-LMK")

    def test_wall_clock_with_fake_clock(self):
        clock = FakeClock()
        b = Budget(seconds=2.0, clock=clock)
        assert not b.check()
        assert b.remaining_seconds() == 2.0
        clock.advance(2.0)
        assert b.check()
        assert b.reason == "wall_clock"
        assert b.remaining_seconds() == 0.0

    def test_degrade_wraps_reason(self):
        b = Budget(max_settled=0)
        b.charge()
        out = b.degrade(7.5)
        assert isinstance(out, DegradedResult)
        assert out == 7.5 and out.value == 7.5
        assert out.is_upper_bound and out.reason == "steps"

    def test_degraded_result_behaves_like_float(self):
        d = DegradedResult(3.0, reason="steps")
        assert d + 1 == 4.0
        assert d < 3.5
        assert f"{d:.1f}" == "3.0"


# ----------------------------------------------------------------------
# Degradation soundness (differential against ground truth)
# ----------------------------------------------------------------------
class TestDegradedSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_budgeted_answers_are_exact_or_sound_upper_bounds(self, seed):
        g = random_graph(seed, n_lo=10, n_hi=25)
        rng = random.Random(seed)
        landmarks = rng.sample(range(g.n), 2)
        dyn = DynamicHCL.build(g, landmarks)
        truth = {s: single_source_distances(g, s) for s in range(g.n)}
        for s in range(g.n):
            for t in range(s + 1, g.n):
                exact = dyn.distance(s, t)
                assert exact == truth[s][t]
                for max_settled in (0, 1, 3, 10):
                    got = dyn.distance(
                        s, t, budget=Budget(max_settled=max_settled)
                    )
                    if isinstance(got, DegradedResult):
                        assert got.is_upper_bound
                        assert got.reason == "steps"
                        assert float(got) >= exact
                    else:
                        assert got == exact

    @pytest.mark.parametrize("seed", range(4))
    def test_generous_budget_matches_unbudgeted_exactly(self, seed):
        g = random_graph(seed + 50, n_lo=10, n_hi=25)
        dyn = DynamicHCL.build(g, [0, g.n - 1])
        big = Budget(max_settled=10**9)
        for s in range(0, g.n, 3):
            for t in range(1, g.n, 4):
                got = dyn.distance(s, t, budget=big)
                assert not isinstance(got, DegradedResult)
                assert got == dyn.distance(s, t)

    def test_strict_budget_raises_instead_of_degrading(self, dyn):
        with pytest.raises(DeadlineExceeded):
            dyn.distance(2, 17, budget=Budget(max_settled=0), strict=True)
        # the same exhausted budget degrades when not strict
        got = dyn.distance(2, 17, budget=Budget(max_settled=0))
        assert isinstance(got, DegradedResult)

    def test_query_is_the_anytime_floor_and_never_degrades(self, dyn):
        b = Budget(max_settled=0)
        got = dyn.query(2, 17, budget=b)
        assert not isinstance(got, DegradedResult)
        assert got == dyn.query(2, 17)
        assert b.settled > 0  # the label scan was still charged

    def test_degraded_value_is_the_constrained_bound(self, dyn):
        # budget exhausted before refinement: the answer is exactly QUERY
        b = Budget(max_settled=0)
        b.charge()
        got = dyn.distance(2, 17, budget=b)
        assert isinstance(got, DegradedResult)
        assert float(got) == dyn.query(2, 17)

    def test_batched_budget_is_shared_and_sound(self, svc):
        pairs = [(s, t) for s in range(4) for t in range(10, 14)]
        # ground truth straight from the index: going through the service
        # first would warm the cache and leave the budget nothing to do
        exact = [svc._dyn.distance(s, t) for s, t in pairs]
        degraded = svc.query_batch(
            pairs, exact=True, budget=Budget(max_settled=5)
        )
        assert len(degraded) == len(pairs)
        n_degraded = 0
        for (s, t), got, want in zip(pairs, degraded, exact):
            if isinstance(got, DegradedResult):
                n_degraded += 1
                assert float(got) >= want
            else:
                assert got == want
        # a 5-step budget over 16 refinement searches must degrade some
        assert n_degraded > 0
        assert svc.stats.degraded == n_degraded
        assert svc.metrics()["counters"]["service.degraded"] == n_degraded

    def test_batch_strict_aborts(self, svc):
        with pytest.raises(DeadlineExceeded):
            svc.query_batch(
                [(1, 17), (2, 16)],
                exact=True,
                budget=Budget(max_settled=0),
                strict=True,
            )

    def test_degraded_answers_never_poison_the_cache(self, svc):
        got = svc.submit(DistanceRequest(2, 17), budget=Budget(max_settled=0))
        assert isinstance(got, DegradedResult)
        again = svc.submit(DistanceRequest(2, 17))
        assert not isinstance(again, DegradedResult)
        assert again == svc._dyn.index.distance(2, 17)


# ----------------------------------------------------------------------
# Wall-clock deadlines on a deterministic schedule
# ----------------------------------------------------------------------
class TestWallClockDeadline:
    def test_slow_search_expires_mid_refinement(self):
        # 100-vertex grid: the bidirectional refinement settles far more
        # than CHECK_INTERVAL vertices, so the in-loop clock check fires.
        g = grid_graph(10, 10)
        dyn = DynamicHCL.build(g, [0, 99])
        clock = FakeClock()
        budget = Budget(seconds=10.0, clock=clock)
        with slow_search(clock, seconds_per_settle=1.0):
            got = dyn.distance(11, 88, budget=budget)
        assert isinstance(got, DegradedResult)
        assert got.reason == "wall_clock"
        assert budget.exceeded
        assert float(got) >= dyn.distance(11, 88)

    def test_unbudgeted_search_ignores_the_settle_seam(self, dyn):
        clock = FakeClock()
        with slow_search(clock, seconds_per_settle=1.0):
            got = dyn.distance(2, 17)
        assert clock() == 0.0  # production kernel never consulted the seam
        assert not isinstance(got, DegradedResult)

    def test_expired_deadline_degrades_before_refinement(self, dyn):
        clock = FakeClock()
        budget = Budget(seconds=1.0, clock=clock)
        clock.advance(5.0)
        got = dyn.distance(2, 17, budget=budget)
        assert isinstance(got, DegradedResult)
        assert got.reason == "wall_clock"
        assert float(got) == dyn.query(2, 17)


# ----------------------------------------------------------------------
# Budgeted mutations: clean, retriable cancellation
# ----------------------------------------------------------------------
class TestBudgetedMutations:
    def test_cancelled_upgrade_rolls_back(self, svc):
        before = serialized(svc._dyn.index)
        with pytest.raises(DeadlineExceeded):
            svc.submit(AddLandmarkRequest(9), budget=Budget(max_settled=1))
        assert serialized(svc._dyn.index) == before
        assert svc.audit[-1].error.startswith("DeadlineExceeded:")
        # the retry without a budget lands the canonical index
        svc.submit(AddLandmarkRequest(9))
        assert serialized(svc._dyn.index) == serialized(
            build_hcl(svc._dyn.index.graph, [0, 9, 19])
        )

    def test_cancelled_downgrade_rolls_back(self, svc):
        before = serialized(svc._dyn.index)
        with pytest.raises(DeadlineExceeded):
            svc.submit(RemoveLandmarkRequest(19), budget=Budget(max_settled=1))
        assert serialized(svc._dyn.index) == before

    def test_deadline_is_not_an_infrastructure_failure(self, svc):
        # budget cancellations must not march the breaker toward open
        for _ in range(CircuitBreaker().threshold + 1):
            with pytest.raises(DeadlineExceeded):
                svc.submit(
                    AddLandmarkRequest(9), budget=Budget(max_settled=0)
                )
        assert svc.breaker.state == "closed"

    def test_generous_budget_mutation_is_canonical(self, svc):
        svc.submit(AddLandmarkRequest(9), budget=Budget(max_settled=10**9))
        assert serialized(svc._dyn.index) == serialized(
            build_hcl(svc._dyn.index.graph, [0, 9, 19])
        )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_max_inflight_validation(self, dyn):
        with pytest.raises(RequestError):
            HCLService(dyn, max_inflight=0)

    def test_overload_sheds_with_retriable_error(self, dyn, monkeypatch):
        svc = HCLService(dyn, max_inflight=1)
        inner: list[Exception] = []

        def reentrant(s, t):
            # a second request arriving while this one is in flight
            try:
                svc.submit(DistanceRequest(1, 2))
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                inner.append(exc)
                raise
            return 0.0

        monkeypatch.setattr(svc._engine, "distance", reentrant)
        with pytest.raises(Overloaded):
            svc.submit(DistanceRequest(2, 17))
        assert len(inner) == 1 and isinstance(inner[0], Overloaded)
        assert inner[0].retriable
        assert svc.stats.shed == 1
        shed_records = [
            r
            for r in svc.audit
            if r.error and r.error.startswith("Overloaded") and "shed" in r.error
        ]
        assert len(shed_records) >= 1
        assert svc.metrics()["counters"]["service.shed"] == 1
        # the service is drained again: the next request is admitted
        monkeypatch.undo()
        assert svc.submit(DistanceRequest(2, 17)) == svc._dyn.distance(2, 17)
        assert svc.metrics()["gauges"]["service.inflight"] == 0

    def test_unbounded_by_default(self, svc):
        assert svc._max_inflight is None
        assert svc.health()["max_inflight"] is None


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreakerUnit:
    def test_exact_open_halfopen_close_schedule(self):
        clock = FakeClock()
        br = CircuitBreaker(
            threshold=3, base_delay=2.0, max_delay=60.0, jitter=0.0,
            clock=clock,
        )
        br.record_failure()
        br.record_failure()
        assert br.state == "closed" and br.consecutive_failures == 2
        br.record_failure()
        assert br.state == "open"
        assert br.retry_after() == 2.0
        assert not br.allow()
        clock.advance(1.999)
        assert not br.allow()
        clock.advance(0.001)
        assert br.allow()  # the single admitted probe
        assert br.state == "half_open"
        assert not br.allow()  # second caller is still rejected
        br.record_success()
        assert br.state == "closed"
        assert br.retry_after() == 0.0

    def test_reopen_doubles_backoff_up_to_cap(self):
        clock = FakeClock()
        br = CircuitBreaker(
            threshold=1, base_delay=1.0, max_delay=4.0, jitter=0.0,
            clock=clock,
        )
        delays = []
        for _ in range(4):
            br.record_failure()
            assert br.state == "open"
            delays.append(br.retry_after())
            clock.advance(br.retry_after())
            assert br.allow() and br.state == "half_open"
        assert delays == [1.0, 2.0, 4.0, 4.0]
        br.record_success()
        br.record_failure()
        assert br.retry_after() == 1.0  # a close resets the backoff ladder

    def test_jitter_stays_within_band(self):
        clock = FakeClock()
        for seed in range(20):
            br = CircuitBreaker(
                threshold=1, base_delay=10.0, jitter=0.25, clock=clock,
                rng=random.Random(seed),
            )
            br.record_failure()
            assert 7.5 <= br.retry_after() <= 12.5

    def test_validation(self):
        with pytest.raises(RequestError):
            CircuitBreaker(threshold=0)
        with pytest.raises(RequestError):
            CircuitBreaker(base_delay=0.0)
        with pytest.raises(RequestError):
            CircuitBreaker(base_delay=2.0, max_delay=1.0)
        with pytest.raises(RequestError):
            CircuitBreaker(jitter=1.0)


class TestCircuitBreakerService:
    @pytest.fixture
    def broken(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=2, base_delay=1.0, jitter=0.0, clock=clock
        )
        svc = HCLService(
            DynamicHCL.build(grid_graph(4, 5), [0, 19]), breaker=breaker
        )
        return svc, clock

    def trip(self, svc):
        for _ in range(svc.breaker.threshold):
            with pytest.raises(TransactionError):
                with fail_at_label_write(1):
                    svc.submit(AddLandmarkRequest(9))

    def test_mutation_faults_open_the_breaker(self, broken):
        svc, clock = broken
        before = serialized(svc._dyn.index)
        self.trip(svc)
        assert svc.breaker.state == "open"
        assert svc.health()["status"] == "failed"
        assert svc.metrics()["gauges"]["service.breaker_state"] == 2
        # mutations are rejected up front, retriably, without touching
        # the index...
        with pytest.raises(CircuitOpenError) as info:
            svc.submit(AddLandmarkRequest(9))
        assert info.value.retriable
        assert info.value.retry_after == pytest.approx(1.0)
        assert serialized(svc._dyn.index) == before
        # ...while queries keep serving the last-good index
        assert svc.submit(DistanceRequest(2, 17)) == svc._dyn.distance(2, 17)

    def test_halfopen_probe_success_closes(self, broken):
        svc, clock = broken
        self.trip(svc)
        clock.advance(1.0)
        result = svc.submit(AddLandmarkRequest(9))  # the probe, admitted
        assert result is not None
        assert svc.breaker.state == "closed"
        assert svc.health()["status"] == "ok"
        assert 9 in svc.landmarks

    def test_halfopen_probe_failure_reopens_with_longer_backoff(self, broken):
        svc, clock = broken
        self.trip(svc)
        clock.advance(1.0)
        with pytest.raises(TransactionError):
            with fail_at_label_write(1):
                svc.submit(AddLandmarkRequest(9))
        assert svc.breaker.state == "open"
        assert svc.breaker.retry_after() == pytest.approx(2.0)

    def test_noninfra_probe_failure_closes_instead_of_wedging(self, broken):
        # a probe rejected for a non-infrastructure reason (here: the
        # vertex is already a landmark) proves the write path is healthy;
        # the breaker must close, not stay half-open forever.
        svc, clock = broken
        self.trip(svc)
        clock.advance(1.0)
        with pytest.raises(LandmarkError):
            svc.submit(AddLandmarkRequest(0))
        assert svc.breaker.state == "closed"

    def test_breaker_rejections_are_audited_and_counted(self, broken):
        svc, clock = broken
        self.trip(svc)
        with pytest.raises(CircuitOpenError):
            svc.submit(RemoveLandmarkRequest(19))
        assert svc.audit[-1].error.startswith("CircuitOpenError:")
        counters = svc.metrics()["counters"]
        assert counters["service.breaker_rejections"] == 1


# ----------------------------------------------------------------------
# Self-healing auditor
# ----------------------------------------------------------------------
class TestAuditor:
    def make(self, **kw):
        dyn = DynamicHCL.build(grid_graph(4, 5), [0, 19])
        kw.setdefault("pairs_per_tick", 500)  # small graph: sample all pairs
        return dyn, IndexAuditor(dyn, **kw)

    def test_clean_index_audits_clean(self):
        dyn, auditor = self.make()
        for _ in range(3):
            report = auditor.tick()
            assert report.clean
            assert report.pairs_checked > 0
        assert auditor.violations_found == 0
        assert auditor.summary()["quarantined"] == ()

    def test_window_rotates_through_all_rows(self):
        dyn = DynamicHCL.build(grid_graph(4, 5), [0, 7, 12, 19])
        auditor = IndexAuditor(dyn, landmarks_per_tick=1, pairs_per_tick=2)
        seen = set()
        for _ in range(4):
            seen.update(auditor.tick().landmarks_checked)
        assert seen == {0, 7, 12, 19}

    def test_corruption_is_detected_and_repaired(self):
        dyn, auditor = self.make()
        index = dyn.index
        v, r = corrupt_label(index)
        version_before = dyn.version
        report = auditor.tick()
        assert report.violations > 0
        assert r in report.repaired
        assert report.quarantined == ()
        assert serialized(index) == serialized(
            build_hcl(index.graph, sorted(index.landmarks))
        )
        assert dyn.version > version_before  # caches invalidate
        assert not find_cover_violations(index)
        assert auditor.findings[-1].repaired

    def test_highway_corruption_is_detected_and_repaired(self):
        dyn, auditor = self.make()
        index = dyn.index
        true_cell = index.highway.distance(0, 19)
        index.highway.set_distance(0, 19, true_cell + 3.0)
        report = auditor.tick()
        assert report.violations > 0
        assert index.highway.distance(0, 19) == true_cell
        assert serialized(index) == serialized(
            build_hcl(index.graph, sorted(index.landmarks))
        )

    def test_failed_repair_quarantines_and_retries(self):
        dyn, auditor = self.make()
        index = dyn.index
        v, r = corrupt_label(index)
        with label_device_down():
            report = auditor.tick()
        assert not report.clean
        assert r in report.quarantined
        assert auditor.repair_failures >= 1
        # quarantined rows are re-verified on the very next tick
        report = auditor.tick()
        assert r in report.repaired
        assert report.quarantined == ()
        assert not find_cover_violations(index)

    def test_unrepairable_rows_feed_the_breaker(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, jitter=0.0, clock=clock)
        dyn = DynamicHCL.build(grid_graph(4, 5), [0, 19])
        auditor = IndexAuditor(dyn, pairs_per_tick=500, breaker=breaker)
        corrupt_label(dyn.index)
        with label_device_down():
            auditor.tick()
        assert breaker.state == "open"

    def test_tick_never_raises(self):
        dyn, auditor = self.make()
        corrupt_label(dyn.index)
        with label_device_down():
            report = auditor.tick()  # repair fault is absorbed, not raised
        assert report.violations > 0

    def test_empty_landmark_set_ticks_clean(self):
        g = path_graph(5)
        dyn = DynamicHCL.build(g, [0])
        dyn.remove_landmark(0)
        report = IndexAuditor(dyn).tick()
        assert report.clean and report.pairs_checked == 0


class TestAuditorThroughService:
    def test_audit_tick_surfaces_in_health_and_metrics(self):
        dyn = DynamicHCL.build(grid_graph(4, 5), [0, 19])
        svc = HCLService(
            dyn, auditor=IndexAuditor(dyn, pairs_per_tick=500)
        )
        assert svc.health()["status"] == "ok"
        corrupt_label(dyn.index)
        with label_device_down():
            svc.audit_tick()
        health = svc.health()
        assert health["status"] == "degraded"
        assert health["auditor"]["quarantined"] != ()
        assert svc.metrics()["gauges"]["audit.quarantined"] == 1
        svc.audit_tick()
        health = svc.health()
        assert health["status"] == "ok"
        assert health["auditor"]["repairs"] >= 1
        counters = svc.metrics()["counters"]
        assert counters["audit.ticks"] == 2
        assert counters["audit.violations"] >= 1
        assert counters["audit.repairs"] >= 1

    def test_repair_invalidates_the_query_cache(self):
        dyn = DynamicHCL.build(grid_graph(4, 5), [0, 19])
        svc = HCLService(dyn, auditor=IndexAuditor(dyn, pairs_per_tick=500))
        truth = svc.submit(DistanceRequest(1, 2))
        v, r = corrupt_label(dyn.index)
        svc.audit_tick()
        # a stale cache would replay the pre-repair answer; the version
        # bump forces re-resolution against the healed index
        assert svc.submit(DistanceRequest(1, 2)) == truth

    def test_recover_probe_agrees_with_auditor(self, tmp_path):
        g = path_graph(8)
        dyn = DynamicHCL.build(g, [0, 7])
        corrupt_label(dyn.index)
        ckpt = tmp_path / "index.ckpt"
        HCLService(dyn).checkpoint(ckpt)
        report = HCLService.recover(g, ckpt)
        assert not report.probe_ok
        assert "constrained distance" in report.probe_error
        # the auditor grades the same corruption the same way, then heals
        svc = report.service
        svc.auditor.pairs_per_tick = 500
        tick = svc.audit_tick()
        assert tick.violations > 0
        assert svc.health()["status"] == "ok"
        # a post-repair checkpoint recovers clean
        healed = tmp_path / "healed.ckpt"
        svc.checkpoint(healed)
        assert HCLService.recover(g, healed).probe_ok


# ----------------------------------------------------------------------
# Randomized fault sweep (nightly chaos lane)
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(5))
def test_chaos_faults_never_corrupt_answers(seed):
    g = random_graph(seed, n_lo=12, n_hi=24)
    rng = random.Random(seed * 7919)
    dyn = DynamicHCL.build(g, rng.sample(range(g.n), 2))
    # A live breaker on a FakeClock: injected write-path faults trip it
    # for real, and an open breaker is cleared by *advancing fake time*
    # past retry_after — the half-open probe machinery runs under chaos
    # without this lane ever sleeping.
    clock = FakeClock()
    svc = HCLService(
        dyn,
        breaker=CircuitBreaker(
            threshold=3, base_delay=1.0, max_delay=8.0, jitter=0.0,
            clock=clock,
        ),
        auditor=IndexAuditor(dyn, pairs_per_tick=500),
    )
    truth = {s: single_source_distances(g, s) for s in range(g.n)}

    def submit_mutation(request):
        """Submit, riding through an open breaker on fake time.

        The retry after the advance is the single admitted half-open
        probe; it either closes the breaker (success) or re-opens it
        with the next backoff step (the raised failure propagates to
        the caller's assertions, like any mutation failure).
        """
        try:
            return svc.submit(request)
        except CircuitOpenError as exc:
            clock.advance(exc.retry_after + 1e-9)
            return svc.submit(request)

    for _ in range(60):
        op = rng.random()
        s, t = rng.randrange(g.n), rng.randrange(g.n)
        if op < 0.45:
            assert svc.submit(DistanceRequest(s, t)) == truth[s][t]
        elif op < 0.65:
            got = svc.submit(
                DistanceRequest(s, t),
                budget=Budget(max_settled=rng.randrange(0, 20)),
            )
            if isinstance(got, DegradedResult):
                assert float(got) >= truth[s][t]
            else:
                assert got == truth[s][t]
        elif op < 0.85:
            v = rng.randrange(g.n)
            is_add = v not in svc.landmarks
            request = (
                AddLandmarkRequest(v) if is_add else RemoveLandmarkRequest(v)
            )
            if len(svc.landmarks) <= 1 and not is_add:
                continue
            if rng.random() < 0.5:
                # the fault may land past the mutation's last label write,
                # in which case the mutation simply commits — both
                # outcomes must leave a consistent index
                before = serialized(dyn.index)
                try:
                    with fail_at_label_write(rng.randrange(1, 6)):
                        submit_mutation(request)
                except TransactionError:
                    assert serialized(dyn.index) == before
            else:
                submit_mutation(request)
        else:
            if rng.random() < 0.5:
                corrupt_label(dyn.index)
            assert svc.audit_tick() is not None
            svc.audit_tick()
            assert not find_cover_violations(dyn.index)

    # whatever the fault schedule did, the surviving index is canonical
    assert serialized(dyn.index) == serialized(
        build_hcl(g, sorted(svc.landmarks))
    )
    for s in range(0, g.n, 3):
        for t in range(1, g.n, 3):
            assert svc.submit(DistanceRequest(s, t)) == truth[s][t]
