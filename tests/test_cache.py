"""Tests for the version-invalidated query cache."""

import pytest

from conftest import cycle_graph, path_graph
from repro.core import DynamicHCL
from repro.core.cache import CachedQueryEngine


class TestBasics:
    def test_hit_after_miss(self):
        engine = CachedQueryEngine(DynamicHCL.build(path_graph(5), [2]))
        first = engine.query(0, 4)
        second = engine.query(0, 4)
        assert first == second == 4.0
        assert engine.stats.misses == 1
        assert engine.stats.hits == 1

    def test_symmetric_key(self):
        engine = CachedQueryEngine(DynamicHCL.build(path_graph(5), [2]))
        engine.query(0, 4)
        engine.query(4, 0)  # same undirected pair -> cache hit
        assert engine.stats.hits == 1

    def test_distance_cached_separately(self):
        engine = CachedQueryEngine(DynamicHCL.build(cycle_graph(6), [0]))
        q = engine.query(2, 4)
        d = engine.distance(2, 4)
        assert q == 4.0 and d == 2.0
        assert engine.stats.misses == 2

    def test_hit_rate(self):
        engine = CachedQueryEngine(DynamicHCL.build(path_graph(4), [1]))
        engine.query(0, 3)
        engine.query(0, 3)
        engine.query(0, 3)
        assert engine.stats.hit_rate == pytest.approx(2 / 3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CachedQueryEngine(DynamicHCL.build(path_graph(3), [1]), capacity=0)


class TestInvalidation:
    def test_landmark_update_flushes(self):
        g = cycle_graph(8)
        engine = CachedQueryEngine(DynamicHCL.build(g, [0]))
        assert engine.query(3, 5) == 6.0
        engine.add_landmark(4)  # landmark-constrained distances change
        assert engine.query(3, 5) == 2.0  # fresh, not the stale 6.0
        assert engine.stats.invalidations == 1

    def test_external_update_also_detected(self):
        """Updates applied directly on the wrapped DynamicHCL count too."""
        g = cycle_graph(8)
        dyn = DynamicHCL.build(g, [0])
        engine = CachedQueryEngine(dyn)
        assert engine.query(3, 5) == 6.0
        dyn.add_landmark(4)  # bypasses the cache wrapper
        assert engine.query(3, 5) == 2.0

    def test_remove_landmark_flushes(self):
        g = cycle_graph(8)
        engine = CachedQueryEngine(DynamicHCL.build(g, [0, 4]))
        assert engine.query(3, 5) == 2.0
        engine.remove_landmark(4)
        assert engine.query(3, 5) == 6.0

    def test_stats_survive_version_flush(self):
        # A version bump clears the cached *answers*, never the counters:
        # long-run hit rates must span reconfigurations.
        g = cycle_graph(8)
        engine = CachedQueryEngine(DynamicHCL.build(g, [0]))
        engine.query(3, 5)
        engine.query(3, 5)
        hits, misses = engine.stats.hits, engine.stats.misses
        assert (hits, misses) == (1, 1)
        engine.add_landmark(4)
        engine.query(3, 5)  # recompute after the flush
        assert engine.stats.hits == hits
        assert engine.stats.misses == misses + 1
        assert engine.stats.invalidations == 1
        assert len(engine) == 1  # answers were flushed, counters were not


class TestEviction:
    def test_lru_respects_capacity(self):
        g = path_graph(10)
        engine = CachedQueryEngine(DynamicHCL.build(g, [5]), capacity=3)
        for t in range(1, 8):
            engine.query(0, t)
        assert len(engine) <= 3

    def test_evicted_entries_recompute(self):
        g = path_graph(10)
        engine = CachedQueryEngine(DynamicHCL.build(g, [5]), capacity=2)
        engine.query(0, 9)
        engine.query(0, 8)
        engine.query(0, 7)  # evicts (0, 9)
        engine.query(0, 9)  # must recompute, still correct
        assert engine.stats.misses == 4
