"""End-to-end scenario tests exercising several subsystems together."""

import io
import random

from conftest import random_graph
from repro.beer import BeerDistanceIndex, BeerGraph, beer_distance_baseline
from repro.core import (
    DynamicHCL,
    assert_canonical,
    apply_batch,
    build_hcl,
    load_index_binary,
    save_index_binary,
)
from repro.core.advisor import suggest_addition, suggest_removal
from repro.core.metrics import quality_report
from repro.core.topology import FullyDynamicHCL
from repro.workloads import Trace, mixed_update_sequence, replay
from repro.baselines import CHGSP


class TestLifecycleScenario:
    """Build -> churn -> checkpoint -> restore -> keep churning."""

    def test_full_lifecycle(self):
        rng = random.Random(1234)
        g = random_graph(99, n_lo=30, n_hi=40)
        landmarks = sorted(rng.sample(range(g.n), 6))
        dyn = DynamicHCL.build(g, landmarks)

        updates = mixed_update_sequence(g.n, landmarks, sigma=4, seed=5)
        dyn.apply_sequence(updates)
        assert_canonical(dyn.index)

        blob = io.BytesIO()
        save_index_binary(dyn.index, blob)
        blob.seek(0)
        restored = DynamicHCL(load_index_binary(g, blob))
        assert restored.index.structurally_equal(dyn.index)

        # keep mutating the restored copy; it must stay canonical
        more = mixed_update_sequence(g.n, sorted(restored.landmarks), sigma=4, seed=6)
        restored.apply_sequence(more)
        assert_canonical(restored.index)


class TestAdvisorDrivenReconfiguration:
    """Advisor output must be applicable and improve the hot workload."""

    def test_advice_applies_cleanly(self):
        rng = random.Random(5)
        g = random_graph(7, n_lo=30, n_hi=40)
        landmarks = sorted(rng.sample(range(g.n), 5))
        index = build_hcl(g, landmarks)
        queries = [
            (rng.randrange(g.n), rng.randrange(g.n)) for _ in range(30)
        ]
        adds = [v for v, _ in suggest_addition(index, queries, top=2)]
        removes = [
            v for v, usage in suggest_removal(index, queries, top=2) if usage == 0
        ]
        removes = removes[: max(0, len(landmarks) - 1)]
        before = [index.query(s, t) for s, t in queries]
        apply_batch(index, adds=adds, removes=removes)
        assert_canonical(index)
        if adds and not removes:
            after = [index.query(s, t) for s, t in queries]
            assert all(a <= b for a, b in zip(after, before))


class TestTraceComparison:
    """DYN-HCL and CH-GSP must answer identical traces identically."""

    def test_random_trace_agreement(self):
        rng = random.Random(31)
        g = random_graph(77, n_lo=20, n_hi=30)
        landmarks = sorted(rng.sample(range(g.n), 4))

        trace = Trace()
        current = set(landmarks)
        for _ in range(25):
            roll = rng.random()
            if roll < 0.15 and len(current) < g.n - 1:
                v = rng.choice([x for x in range(g.n) if x not in current])
                trace.add_landmark(v)
                current.add(v)
            elif roll < 0.3 and len(current) > 1:
                v = rng.choice(sorted(current))
                trace.remove_landmark(v)
                current.discard(v)
            else:
                trace.query(rng.randrange(g.n), rng.randrange(g.n))

        dyn = DynamicHCL.build(g, landmarks)
        gsp = CHGSP(g, landmarks)
        assert replay(trace, dyn).answers == replay(trace, gsp).answers


class TestBeerOnEvolvingCity:
    """Beer oracle stays exact while both stores and roads change."""

    def test_city_evolution(self):
        rng = random.Random(55)
        g = random_graph(13, n_lo=25, n_hi=35, weighted=True)
        beer = sorted(rng.sample(range(g.n), 4))
        oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=beer))
        fully = FullyDynamicHCL(oracle.dynamic_index.index)

        for step in range(6):
            if step % 3 == 0:
                # open a store
                v = rng.choice(
                    [x for x in range(g.n) if not oracle.beer_graph.is_beer_vertex(x)]
                )
                oracle.open_beer_vertex(v)
            elif step % 3 == 1:
                # a road closes
                edges = list(g.edges())
                u, v, _ = rng.choice(edges)
                fully.delete_edge(u, v)
            else:
                # a new road opens
                for _ in range(30):
                    u, v = rng.randrange(g.n), rng.randrange(g.n)
                    if u != v and not g.has_edge(u, v):
                        fully.insert_edge(u, v, float(rng.randint(1, 5)))
                        break
            # oracle answers must match the brute-force baseline
            reference = BeerGraph(g, beer_vertices=sorted(oracle.beer_graph.beer_vertices))
            s, t = rng.randrange(g.n), rng.randrange(g.n)
            want = beer_distance_baseline(reference, s, t)
            if not (
                oracle.beer_graph.is_beer_vertex(s)
                or oracle.beer_graph.is_beer_vertex(t)
            ):
                assert oracle.beer_distance(s, t) == want

        report = quality_report(oracle.dynamic_index.index)
        assert report.landmarks == len(oracle.beer_graph.beer_vertices)
        assert_canonical(oracle.dynamic_index.index)
