"""Unit tests for DOWNGRADE-LMK (Algorithm 2)."""

import math

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro.core import (
    assert_canonical,
    build_hcl,
    downgrade_landmark,
    upgrade_landmark,
)
from repro.errors import LandmarkError


class TestBasics:
    def test_downgrade_on_path(self):
        g = path_graph(5)
        index = build_hcl(g, [1, 3])
        stats = downgrade_landmark(index, 1)
        assert index.landmarks == {3}
        assert stats.removed_landmark == 1
        assert_canonical(index)

    def test_demoted_vertex_gets_label(self):
        g = path_graph(5)
        index = build_hcl(g, [1, 3])
        downgrade_landmark(index, 1)
        assert index.labeling.label(1) == {3: 2.0}

    def test_highway_entries_dropped(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0, 2, 4])
        downgrade_landmark(index, 2)
        assert 2 not in index.highway
        assert 2 not in index.highway.row(0)

    def test_recover_extends_coverage_through_hole(self):
        # 0 -1- 1 -1- 2: with R={1,2}, vertex 0 is covered only by 1.
        # Removing 1 must re-cover 0 by 2 (path through the demoted 1).
        g = path_graph(3)
        index = build_hcl(g, [1, 2])
        downgrade_landmark(index, 1)
        assert index.labeling.label(0) == {2: 2.0}
        assert_canonical(index)

    def test_remove_last_landmark(self):
        g = path_graph(4)
        index = build_hcl(g, [2])
        downgrade_landmark(index, 2)
        assert index.landmarks == set()
        assert index.labeling.total_entries() == 0
        assert index.query(0, 3) == math.inf

    def test_disconnected_component_untouched(self):
        g = path_graph(3)
        g.add_vertex()
        g.add_vertex()
        g.add_edge(3, 4, 1.0)
        index = build_hcl(g, [1, 4])
        downgrade_landmark(index, 4)
        # other component's labels unaffected
        assert index.labeling.label(0) == {1: 1.0}
        assert_canonical(index)


class TestErrors:
    def test_non_landmark_rejected(self):
        index = build_hcl(path_graph(3), [1])
        with pytest.raises(LandmarkError):
            downgrade_landmark(index, 0)


class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(5))
    def test_upgrade_then_downgrade_is_identity(self, seed):
        g = random_graph(seed)
        landmarks = [v for v in range(g.n) if v % 4 == 0]
        index = build_hcl(g, landmarks)
        reference = index.copy()
        v = next(x for x in range(g.n) if x not in set(landmarks))
        upgrade_landmark(index, v)
        downgrade_landmark(index, v)
        assert index.structurally_equal(reference)

    @pytest.mark.parametrize("seed", range(5))
    def test_decremental_chain_stays_canonical(self, seed):
        g = random_graph(seed)
        landmarks = sorted(v for v in range(g.n) if v % 3 == 0)
        index = build_hcl(g, landmarks)
        for v in landmarks:
            downgrade_landmark(index, v)
            assert_canonical(index)
        assert index.landmarks == set()


class TestStats:
    def test_counters_plausible(self):
        g = cycle_graph(8)
        index = build_hcl(g, [0, 4])
        stats = downgrade_landmark(index, 4)
        assert stats.entries_removed > 0
        assert stats.recover_searches == 1  # only landmark 0 covers 4
        assert stats.entries_added > 0
