"""Tests for :mod:`repro.obs`: primitives, spans, exporters, and the
guarantee that matters most — instrumentation that is invisible when off.

The determinism class pins the strongest form of "invisible": with the
global tracer disabled, a build + reconfiguration + batch-query run
produces byte-identical serialized indexes and identical answers whether
or not an observed run happened in between.
"""

from __future__ import annotations

import io
import json
import math

import pytest

from conftest import cycle_graph, path_graph, random_graph
from repro import obs
from repro.core import DynamicHCL, build_hcl, query_batch
from repro.core.serialization import save_index_binary
from repro.obs import (
    LATENCY_BOUNDS,
    SIZE_BOUNDS,
    Histogram,
    MetricsRegistry,
    Tracer,
    merge_snapshots,
    render_json,
    render_prometheus,
)
from repro.workloads import random_query_pairs


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        reg.gauge("g").set(0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.b": 5}
        assert snap["gauges"] == {"g": 0.25}

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h", SIZE_BOUNDS)
        assert reg.histogram("h").bounds == LATENCY_BOUNDS  # first wins

    def test_histogram_bucketing(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)
        # v <= bound lands in that bucket; 100.0 overflows to +Inf.
        assert h.bucket_counts == [2, 0, 1, 1]
        assert h.cumulative_buckets() == [
            (1.0, 2),
            (2.0, 2),
            (4.0, 3),
            (math.inf, 4),
        ]

    def test_snapshot_sparse_buckets_round_trip_json(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0, 4.0)).observe(0.5)
        reg.histogram("h").observe(8.0)
        snap = reg.snapshot()
        # Only non-empty buckets appear, plus the +Inf total.
        assert snap["histograms"]["h"]["buckets"] == [[1.0, 1], ["+Inf", 2]]
        assert json.loads(json.dumps(snap)) == snap


class TestSpans:
    def test_disabled_tracer_hands_out_shared_null_span(self):
        tracer = Tracer()  # disabled: no registry
        a = tracer.span("x")
        b = tracer.span("y")
        assert a is b  # one shared object: zero allocation when off
        with a as sp:
            pass
        assert sp.duration == 0.0 and sp.self_seconds == 0.0

    def test_disabled_tracer_records_nothing(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg, enabled=False)
        tracer.count("c")
        tracer.observe("h", 1.0)
        with tracer.span("s"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_nested_spans_decompose_wall_clock(self):
        tracer = Tracer(MetricsRegistry(), enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("child") as c1:
                sum(range(1000))
            with tracer.span("child") as c2:
                sum(range(1000))
        assert outer.duration > 0.0
        assert 0.0 <= outer.self_seconds <= outer.duration
        parts = c1.duration + c2.duration + outer.self_seconds
        assert math.isclose(parts, outer.duration, rel_tol=1e-12)
        hist = tracer.registry.snapshot()["histograms"]
        assert hist["span.outer.seconds"]["count"] == 1
        assert hist["span.child.seconds"]["count"] == 2

    def test_observed_scope_restores_previous_state(self):
        assert not obs.OBS.enabled
        with pytest.raises(RuntimeError):
            with obs.observed() as reg:
                assert obs.OBS.enabled and obs.OBS.registry is reg
                raise RuntimeError("boom")
        assert not obs.OBS.enabled  # exception-safe restore


class TestKernelCounters:
    def test_build_and_reconfigure_populate_counters(self):
        g = random_graph(3, n_lo=30, n_hi=40)
        with obs.observed() as reg:
            dyn = DynamicHCL.build(g, [0, 5, 9])
            dyn.add_landmark(2)
            dyn.remove_landmark(5)
        snap = reg.snapshot()
        c = snap["counters"]
        assert c["build.calls"] == 1
        assert c["build.label_writes"] > 0
        assert c["upgrade.calls"] == 1 and c["upgrade.settled"] > 0
        assert c["downgrade.calls"] == 1 and c["downgrade.swept"] > 0
        assert c["search.settled"] > 0 and c["search.heap_pushes"] > 0
        assert snap["histograms"]["span.build_hcl.seconds"]["count"] == 1

    def test_pqueue_counters(self):
        from repro.graphs import AddressableHeap, LazyHeap

        with obs.observed() as reg:
            heap = AddressableHeap()
            heap.enqueue(1, 5.0)
            heap.enqueue(2, 3.0)
            heap.decrease_key(1, 1.0)
            assert heap.dequeue_min()[0] == 1
            lazy = LazyHeap()
            lazy.enqueue_or_decrease(7, 2.0)
            lazy.enqueue_or_decrease(7, 1.0)  # stale entry, one live pop
            assert lazy.dequeue_min()[0] == 7
        c = reg.snapshot()["counters"]
        assert c["pqueue.enqueues"] == 4
        assert c["pqueue.decrease_keys"] == 1
        assert c["pqueue.dequeues"] == 2  # stale pops are not counted

    def test_downgrade_affected_set_is_strict_subset_of_v(self):
        # Paper claim (Table 2's intuition): DOWNGRADE-LMK touches only the
        # vertices whose labels actually reference the removed landmark —
        # a strict subset of V on any graph where coverage is shared.
        g = random_graph(11, n_lo=40, n_hi=60)
        dyn = DynamicHCL.build(g, [0, 7, 13, 21])
        with obs.observed() as reg:
            dyn.remove_landmark(13)
        snap = reg.snapshot()
        swept = snap["counters"]["downgrade.swept"]
        assert 0 < swept < g.n
        hist = snap["histograms"]["downgrade.affected_set_size"]
        assert hist["count"] == 1 and hist["sum"] == swept

    def test_pruning_counters_are_consistent(self):
        g = random_graph(5, n_lo=30, n_hi=40)
        dyn = DynamicHCL.build(g, [0, 3])
        with obs.observed() as reg:
            dyn.add_landmark(8)
        c = reg.snapshot()["counters"]
        assert c["upgrade.pruning_tests"] == (
            c["upgrade.settled"] + c["upgrade.pruned"] - 1
        )


GOLDEN_PROMETHEUS = """\
# TYPE repro_cache_hits_total counter
repro_cache_hits_total 3
# TYPE repro_cache_hit_rate gauge
repro_cache_hit_rate 0.75
# TYPE repro_wal_fsync_seconds histogram
repro_wal_fsync_seconds_bucket{le="0.001"} 2
repro_wal_fsync_seconds_bucket{le="+Inf"} 3
repro_wal_fsync_seconds_sum 2.5005
repro_wal_fsync_seconds_count 3
"""

GOLDEN_JSON = """\
{
  "counters": {
    "cache.hits": 3
  },
  "gauges": {
    "cache.hit_rate": 0.75
  },
  "histograms": {
    "wal.fsync.seconds": {
      "buckets": [
        [
          0.001,
          2
        ],
        [
          "+Inf",
          3
        ]
      ],
      "count": 3,
      "sum": 2.5005
    }
  }
}
"""


def golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("cache.hits").inc(3)
    reg.gauge("cache.hit_rate").set(0.75)
    h = reg.histogram("wal.fsync.seconds", (0.001, 0.1))
    h.observe(0.0002)
    h.observe(0.0003)
    h.observe(2.5)
    return reg


class TestExporters:
    def test_prometheus_golden(self):
        assert render_prometheus(golden_registry().snapshot()) == GOLDEN_PROMETHEUS

    def test_json_golden(self):
        assert render_json(golden_registry().snapshot()) == GOLDEN_JSON

    def test_rendering_is_deterministic(self):
        a, b = golden_registry(), golden_registry()
        assert render_prometheus(a.snapshot()) == render_prometheus(b.snapshot())
        assert render_json(a.snapshot()) == render_json(b.snapshot())

    def test_merge_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc(1)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b.histogram("h", (1.0, 2.0)).observe(1.5)
        b.histogram("h").observe(99.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"] == {"c": 5, "only_b": 1}
        assert merged["gauges"]["g"] == 9.0  # last write wins
        h = merged["histograms"]["h"]
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(101.0)
        assert h["buckets"] == [[1.0, 1], [2.0, 2], ["+Inf", 3]]


def reference_run(g, landmarks, to_remove, pairs):
    """Build → upgrade → downgrade → batch query; return (bytes, answers)."""
    dyn = DynamicHCL.build(g, landmarks)
    dyn.add_landmark(to_remove + 1)
    dyn.remove_landmark(to_remove)
    buf = io.BytesIO()
    save_index_binary(dyn.index, buf)
    return buf.getvalue(), query_batch(dyn.index, pairs)


class TestDisabledTracingDeterminism:
    def test_observed_run_leaves_disabled_runs_bit_identical(self):
        g = random_graph(9, n_lo=30, n_hi=50)
        landmarks, victim = [0, 4, 11], 4
        pairs = random_query_pairs(g.n, 80, seed=1)
        before_bytes, before_answers = reference_run(g, landmarks, victim, pairs)
        # An observed run in between must not perturb later disabled runs.
        with obs.observed():
            reference_run(g, landmarks, victim, pairs)
        after_bytes, after_answers = reference_run(g, landmarks, victim, pairs)
        assert after_bytes == before_bytes  # byte-identical checkpoint
        assert after_answers == before_answers

    def test_observed_run_computes_the_same_index(self):
        # Instrumented kernel twins must be behaviourally identical to the
        # fast-path originals, not just "close".
        g = random_graph(12, n_lo=30, n_hi=50)
        pairs = random_query_pairs(g.n, 60, seed=2)
        plain_bytes, plain_answers = reference_run(g, [1, 6, 17], 6, pairs)
        with obs.observed():
            obs_bytes, obs_answers = reference_run(g, [1, 6, 17], 6, pairs)
        assert obs_bytes == plain_bytes
        assert obs_answers == plain_answers


class TestHarnessDecomposition:
    def test_g2_parts_sum_to_wall_clock(self):
        from repro.experiments.harness import run_g2

        g = cycle_graph(40)
        r = run_g2(g, "cycle40", landmark_count=4, queries=50, seed=0)
        assert r.cmt_fdyn > 0 and r.cmt_chgsp > 0
        assert math.isclose(
            r.cmt_fdyn,
            r.t_build + r.t_maintain + r.t_queries + r.t_overhead,
            rel_tol=1e-9,
        )
        assert math.isclose(
            r.cmt_chgsp,
            r.t_chgsp_pre
            + r.t_chgsp_maintain
            + r.t_chgsp_queries
            + r.t_chgsp_overhead,
            rel_tol=1e-9,
        )
        assert r.t_overhead >= 0.0 and r.t_chgsp_overhead >= 0.0


class TestServiceMetrics:
    def test_mixed_workload_yields_nontrivial_metrics(self):
        from repro.service import (
            AddLandmarkRequest,
            BatchQueryRequest,
            ConstrainedDistanceRequest,
            HCLService,
        )

        g = path_graph(12)
        svc = HCLService.build(g, [3])
        svc.submit(ConstrainedDistanceRequest(0, 9))
        svc.submit(ConstrainedDistanceRequest(0, 9))  # cache hit
        svc.submit(AddLandmarkRequest(7))
        svc.submit(BatchQueryRequest(((0, 9), (1, 4), (2, 11))))
        snap = svc.metrics()
        c = snap["counters"]
        assert c["service.requests"] == 4
        assert c["service.queries"] == 5  # 2 per-pair + 3 batched
        assert c["service.mutations"] == 1
        assert c["cache.hits"] >= 1 and c["cache.misses"] >= 1
        assert c["cache.invalidations"] == 1
        assert 0.0 < snap["gauges"]["cache.hit_rate"] < 1.0
        assert snap["histograms"]["service.request.seconds"]["count"] == 4
        assert snap["histograms"]["service.batch_size"]["sum"] == 3
        # Both export formats render the same snapshot non-trivially.
        text = svc.metrics_prometheus()
        assert "repro_service_requests_total 4" in text
        parsed = json.loads(svc.metrics_json())
        assert parsed["counters"]["service.requests"] == 4
