"""The paper's Figure 1 worked example, asserted end to end.

Every fact the paper's §3 narrative states about the example is checked
against the implementation, with one documented exception (the removal of
the landmark-5 entry from L(10), which contradicts Algorithm 1's own
keep-test; see the module docstring of repro.workloads.figure1_graph).
"""

import pytest

from repro.core import (
    assert_canonical,
    build_hcl,
    downgrade_landmark,
    upgrade_landmark,
)
from repro.workloads import FIGURE1_INITIAL_LANDMARKS, figure1_graph


@pytest.fixture
def initial_index():
    return build_hcl(figure1_graph(), FIGURE1_INITIAL_LANDMARKS)


class TestInitialIndex:
    def test_highway(self, initial_index):
        assert initial_index.highway.distance(5, 7) == 2.0

    def test_labels_from_figure(self, initial_index):
        L = initial_index.labeling
        assert L.label(1) == {5: 2.0, 7: 1.0}
        assert L.label(6) == {5: 1.0, 7: 1.0}
        # "L(8) contains only an entry associated with landmark 5, since
        # the 7-constrained shortest path from 7 to 8 traverses 5."
        assert L.label(8) == {5: 1.0}
        assert L.label(11) == {7: 1.0}
        assert L.label(3) == {5: 1.0, 7: 2.0}

    def test_is_canonical(self, initial_index):
        assert_canonical(initial_index)


class TestUpgradeVertex3:
    @pytest.fixture
    def upgraded(self, initial_index):
        stats = upgrade_landmark(initial_index, 3)
        return initial_index, stats

    def test_highway_from_label_scan(self, upgraded):
        index, _ = upgraded
        # "scanning L(3) = {(5,1), (7,2)} ... sets δ_H(3,5)=1, δ_H(3,7)=2"
        assert index.highway.distance(3, 5) == 1.0
        assert index.highway.distance(3, 7) == 2.0

    def test_distance_one_vertices_labelled(self, upgraded):
        index, _ = upgraded
        for v in (1, 2, 4, 6):
            assert index.labeling.entry(v, 3) == 1.0

    def test_vertices_9_and_10(self, upgraded):
        index, _ = upgraded
        assert index.labeling.entry(9, 3) == 2.0
        assert index.labeling.entry(10, 3) == 3.0

    def test_search_pruned_on_8(self, upgraded):
        index, _ = upgraded
        # "the visit is pruned on 8 ... QUERY(3, 8) returns 2"
        assert index.query_from_landmark(3, 8) == 2.0
        assert 3 not in index.labeling.label(8)

    def test_both_landmarks_reached(self, upgraded):
        _, stats = upgraded
        assert stats.reached_landmarks == 2  # landmarks 5 and 7

    def test_superfluous_entries_for_5_removed(self, upgraded):
        index, _ = upgraded
        # "(5, 2) is removed from L(v) for v in {1, 2, 4}" — all shortest
        # paths to 5 now pass the new landmark 3.
        for v in (1, 2, 4):
            assert 5 not in index.labeling.label(v), v

    def test_entries_for_5_kept_at_6_and_9(self, upgraded):
        index, _ = upgraded
        # "vertices 9 and 6 ... (5, 1) is not deleted"
        assert index.labeling.entry(6, 5) == 1.0
        assert index.labeling.entry(9, 5) == 1.0

    def test_documented_discrepancy_vertex_10(self, upgraded):
        """The paper also removes (5, 2) from L(10); the path 5-9-10 avoids
        landmark 3, so Algorithm 1's keep-test (line 34, certified by
        neighbor 9) retains it — as does the canonical index."""
        index, _ = upgraded
        assert index.labeling.entry(10, 5) == 2.0
        assert_canonical(index)


class TestDowngradeVertex7:
    @pytest.fixture
    def final_index(self, initial_index):
        upgrade_landmark(initial_index, 3)
        stats = downgrade_landmark(initial_index, 7)
        return initial_index, stats

    def test_entries_for_7_all_removed(self, final_index):
        index, _ = final_index
        for v in range(1, 12):
            assert 7 not in index.labeling.label(v) or v == 7

    def test_label_of_demoted_7(self, final_index):
        index, _ = final_index
        # "adding entries (3, 2) and (5, 2) to L(7)"
        assert index.labeling.label(7) == {3: 2.0, 5: 2.0}

    def test_recover_reaches_11(self, final_index):
        index, _ = final_index
        # "this yields the addition of entries (3,3) and (5,3) to L(11)"
        assert index.labeling.label(11) == {3: 3.0, 5: 3.0}

    def test_vertex_8_untouched(self, final_index):
        index, _ = final_index
        # "The only vertex whose label is unchanged is 8."
        assert index.labeling.label(8) == {5: 1.0}

    def test_highway_shrunk(self, final_index):
        index, _ = final_index
        assert index.landmarks == {3, 5}
        assert index.highway.distance(3, 5) == 1.0

    def test_two_recover_searches(self, final_index):
        _, stats = final_index
        # REACHED-ENT = {(3, 2), (5, 2)}
        assert stats.recover_searches == 2

    def test_final_index_canonical(self, final_index):
        index, _ = final_index
        assert_canonical(index)
