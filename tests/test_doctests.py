"""Execute the doctest examples embedded in the public modules.

Keeps every usage example in the docstrings honest — if an API changes,
the documented snippets fail here before a user finds out.
"""

import doctest

import pytest

import repro
import repro.baselines.pll
import repro.breaker
import repro.budget
import repro.core.build
import repro.core.cache
import repro.core.dynhcl
import repro.core.multicategory
import repro.core.topology
import repro.graphs.graph
import repro.graphs.pqueue
import repro.beer.queries
import repro.baselines.ch.gsp
import repro.service
import repro.testing.faults

MODULES = [
    repro,
    repro.budget,
    repro.breaker,
    repro.testing.faults,
    repro.graphs.graph,
    repro.graphs.pqueue,
    repro.core.build,
    repro.core.dynhcl,
    repro.core.topology,
    repro.core.cache,
    repro.core.multicategory,
    repro.beer.queries,
    repro.baselines.ch.gsp,
    repro.baselines.pll,
    repro.service,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
