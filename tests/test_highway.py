"""Unit tests for the Highway (R, δ_H) structure."""

import math

import pytest

from repro.core import Highway
from repro.errors import LandmarkError


class TestLandmarkSet:
    def test_add_and_contains(self):
        h = Highway()
        h.add_landmark(3)
        assert 3 in h
        assert h.size == 1
        assert h.landmarks == {3}

    def test_duplicate_add_rejected(self):
        h = Highway()
        h.add_landmark(1)
        with pytest.raises(LandmarkError):
            h.add_landmark(1)

    def test_remove(self):
        h = Highway()
        h.add_landmark(1)
        h.add_landmark(2)
        h.remove_landmark(1)
        assert h.landmarks == {2}
        assert 1 not in h.row(2)

    def test_remove_missing_rejected(self):
        with pytest.raises(LandmarkError):
            Highway().remove_landmark(5)


class TestDistances:
    def test_self_distance_zero(self):
        h = Highway()
        h.add_landmark(4)
        assert h.distance(4, 4) == 0.0

    def test_new_pairs_start_infinite(self):
        h = Highway()
        h.add_landmark(1)
        h.add_landmark(2)
        assert h.distance(1, 2) == math.inf

    def test_set_distance_is_symmetric(self):
        h = Highway()
        h.add_landmark(1)
        h.add_landmark(2)
        h.set_distance(1, 2, 7.0)
        assert h.distance(2, 1) == 7.0

    def test_non_landmark_pair_rejected(self):
        h = Highway()
        h.add_landmark(1)
        with pytest.raises(LandmarkError):
            h.distance(1, 9)
        with pytest.raises(LandmarkError):
            h.set_distance(1, 9, 1.0)


class TestCopyEquality:
    def test_copy_independent(self):
        h = Highway()
        h.add_landmark(1)
        h.add_landmark(2)
        h.set_distance(1, 2, 3.0)
        c = h.copy()
        c.set_distance(1, 2, 9.0)
        assert h.distance(1, 2) == 3.0
        assert h != c

    def test_equality(self):
        a, b = Highway(), Highway()
        for h in (a, b):
            h.add_landmark(0)
            h.add_landmark(1)
            h.set_distance(0, 1, 2.0)
        assert a == b
