"""Tests for the fully dynamic setting (future-work iii)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import cycle_graph, path_graph, random_graph
from repro.core import (
    FullyDynamicHCL,
    assert_canonical,
    build_hcl,
    delete_edge,
    insert_edge,
    set_edge_weight,
)
from repro.errors import EdgeError


class TestInsert:
    def test_shortcut_updates_labels(self):
        g = path_graph(5)
        index = build_hcl(g, [0])
        stats = insert_edge(index, 0, 4, 1.0)
        assert index.labeling.entry(4, 0) == 1.0
        assert stats.affected_landmarks == 1
        assert_canonical(index)

    def test_irrelevant_edge_touches_nothing(self):
        from repro.graphs import Graph

        g = Graph(6)  # weighted cycle
        for i in range(6):
            g.add_edge(i, (i + 1) % 6, 1.0)
        index = build_hcl(g, [0])
        # chord 2-4 (weight 5) cannot shorten any path from 0
        stats = insert_edge(index, 2, 4, 5.0)
        assert stats.affected_landmarks == 0
        assert_canonical(index)

    def test_tie_creating_edge_is_affected(self):
        g = path_graph(4, weights=[1.0, 1.0, 1.0])
        index = build_hcl(g, [0])
        # 0-2 with weight 2 ties the existing distance: flags may change.
        stats = insert_edge(index, 0, 2, 2.0)
        assert stats.affected_landmarks == 1
        assert_canonical(index)


class TestDelete:
    def test_delete_on_shortest_path(self):
        g = cycle_graph(6)
        index = build_hcl(g, [0])
        delete_edge(index, 0, 1)
        assert index.labeling.entry(1, 0) == 5.0  # all the way around
        assert_canonical(index)

    def test_delete_bridge_disconnects(self):
        g = path_graph(4)
        index = build_hcl(g, [0])
        delete_edge(index, 1, 2)
        assert index.labeling.label(3) == {}
        assert index.query(0, 3) == float("inf")
        assert_canonical(index)

    def test_delete_missing_edge_raises(self):
        index = build_hcl(path_graph(3), [0])
        with pytest.raises(EdgeError):
            delete_edge(index, 0, 2)


class TestReweight:
    def test_weight_increase(self):
        g = path_graph(3, weights=[1.0, 1.0])
        index = build_hcl(g, [0])
        set_edge_weight(index, 1, 2, 5.0)
        assert index.labeling.entry(2, 0) == 6.0
        assert_canonical(index)

    def test_weight_decrease(self):
        g = path_graph(3, weights=[1.0, 5.0])
        index = build_hcl(g, [0])
        set_edge_weight(index, 1, 2, 1.0)
        assert index.labeling.entry(2, 0) == 2.0
        assert_canonical(index)

    def test_noop_reweight(self):
        g = path_graph(3, weights=[1.0, 2.0])
        index = build_hcl(g, [0])
        stats = set_edge_weight(index, 1, 2, 2.0)
        assert stats.affected_landmarks == 0


class TestFacade:
    def test_mixed_topology_and_landmark_updates(self):
        dyn = FullyDynamicHCL.build(cycle_graph(8), [0])
        dyn.insert_edge(2, 6, 1.0)
        dyn.add_landmark(4)
        dyn.delete_edge(0, 7)
        dyn.remove_landmark(0)
        assert_canonical(dyn.index)

    def test_add_vertex(self):
        dyn = FullyDynamicHCL.build(path_graph(3), [1])
        v = dyn.add_vertex()
        assert v == 3
        dyn.insert_edge(2, 3, 1.0)
        assert dyn.distance(0, 3) == 3.0
        assert_canonical(dyn.index)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_fully_dynamic_stays_canonical(seed):
    g = random_graph(seed, n_lo=6, n_hi=18)
    rng = random.Random(seed + 4)
    landmarks = set(rng.sample(range(g.n), max(1, g.n // 4)))
    dyn = FullyDynamicHCL.build(g, sorted(landmarks))
    for _ in range(6):
        op = rng.random()
        if op < 0.25 and len(landmarks) < g.n:
            v = rng.choice([x for x in range(g.n) if x not in landmarks])
            dyn.add_landmark(v)
            landmarks.add(v)
        elif op < 0.5 and landmarks:
            v = rng.choice(sorted(landmarks))
            dyn.remove_landmark(v)
            landmarks.discard(v)
        elif op < 0.75:
            for _ in range(20):
                u, v = rng.randrange(g.n), rng.randrange(g.n)
                if u != v and not g.has_edge(u, v):
                    w = 1.0 if g.unweighted else float(rng.randint(1, 5))
                    dyn.insert_edge(u, v, w)
                    break
        else:
            edges = list(g.edges())
            if edges:
                u, v, _ = rng.choice(edges)
                dyn.delete_edge(u, v)
    assert_canonical(dyn.index)
