#!/usr/bin/env python3
"""Telecom overlay monitoring: routers fail, links flap, queries continue.

The paper's second motivating scenario (§1): routing packets through
designated network nodes (monitors / scrubbing centers) whose availability
fluctuates.  Monitors are HCL landmarks; a monitor going offline is a
``DOWNGRADE-LMK``, one coming back an ``UPGRADE-LMK``, and a fiber cut is a
topology update handled by the fully dynamic extension.

Run:  python examples/network_monitoring.py
"""

import random
import time

from repro.core import FullyDynamicHCL, select_landmarks
from repro.graphs import barabasi_albert


def main() -> None:
    rng = random.Random(99)

    # An AS-like overlay: preferential attachment, a few well-connected hubs.
    net = barabasi_albert(3000, 3, seed=17)
    print(f"overlay network: {net.n} routers, {net.m} links")

    # The operator designates the 20 best-connected routers as monitors.
    monitors = select_landmarks(net, 20, policy="degree")
    dyn = FullyDynamicHCL.build(net, monitors)
    print(f"monitors online: {sorted(monitors)[:8]} ...")

    def constrained_latency(src: int, dst: int) -> float:
        """Latency of the best path forced through at least one monitor."""
        return dyn.query(src, dst)

    flows = [(rng.randrange(net.n), rng.randrange(net.n)) for _ in range(4)]
    print("\nmonitored-path latencies (hops):")
    for src, dst in flows:
        print(f"  {src:4d} -> {dst:4d}: {constrained_latency(src, dst):g}")

    # --- incident 1: a monitor goes offline ---------------------------
    failed = monitors[0]
    start = time.perf_counter()
    dyn.remove_landmark(failed)
    print(
        f"\n[incident] monitor {failed} offline — index repaired in "
        f"{(time.perf_counter() - start) * 1000:.1f} ms"
    )
    for src, dst in flows[:2]:
        print(f"  {src:4d} -> {dst:4d}: {constrained_latency(src, dst):g}")

    # --- incident 2: a fiber cut near a hub ----------------------------
    hub = max(net.vertices(), key=net.degree)
    victim, _ = net.neighbors(hub)[0]
    start = time.perf_counter()
    stats = dyn.delete_edge(hub, victim)
    print(
        f"[incident] link {hub}-{victim} cut — {stats.affected_landmarks}/"
        f"{stats.total_landmarks} monitor rows repaired in "
        f"{(time.perf_counter() - start) * 1000:.1f} ms"
    )

    # --- recovery: a standby monitor is promoted -----------------------
    standby = next(v for v in range(net.n) if not dyn.index.is_landmark(v))
    start = time.perf_counter()
    dyn.add_landmark(standby)
    print(
        f"[recovery] standby router {standby} promoted to monitor in "
        f"{(time.perf_counter() - start) * 1000:.1f} ms"
    )

    # --- a new peering link comes up ------------------------------------
    while True:
        a, b = rng.randrange(net.n), rng.randrange(net.n)
        if a != b and not net.has_edge(a, b):
            break
    stats = dyn.insert_edge(a, b, 1.0)
    print(
        f"[recovery] new peering {a}-{b} — {stats.affected_landmarks} "
        f"monitor rows refreshed"
    )

    print("\npost-incident latencies:")
    for src, dst in flows:
        print(f"  {src:4d} -> {dst:4d}: {constrained_latency(src, dst):g}")

    # The index is still exactly what a full rebuild would produce.
    assert dyn.index.structurally_equal(dyn.rebuild())
    print("\nindex verified canonical after the whole incident sequence ✓")


if __name__ == "__main__":
    main()
