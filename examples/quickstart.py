#!/usr/bin/env python3
"""Quickstart: build an HCL index, query it, and reconfigure landmarks.

Walks through the library's core loop on a small road-like network:

1. generate a graph and pick landmarks with the paper's selection policy;
2. build the static index with ``BUILDHCL``;
3. answer landmark-constrained and exact distance queries;
4. add and remove landmarks with ``UPGRADE-LMK`` / ``DOWNGRADE-LMK``
   (via the :class:`~repro.core.dynhcl.DynamicHCL` facade) and compare the
   per-update cost against a full rebuild.

Run:  python examples/quickstart.py
"""

import time

from repro import DynamicHCL, build_hcl, select_landmarks
from repro.graphs import assign_uniform_integer_weights, road_grid


def main() -> None:
    # -- 1. a weighted road-like network -------------------------------
    graph = assign_uniform_integer_weights(
        road_grid(40, 30, seed=7), low=1, high=10, seed=7
    )
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    landmarks = select_landmarks(graph, 24, seed=7)
    print(f"landmarks (approx-betweenness policy): {landmarks[:6]} ...")

    # -- 2. static BUILDHCL --------------------------------------------
    start = time.perf_counter()
    dyn = DynamicHCL.build(graph, landmarks)
    build_time = time.perf_counter() - start
    stats = dyn.index.stats()
    print(
        f"BUILDHCL: {build_time:.3f}s, {stats.label_entries} label entries, "
        f"avg label size {stats.average_label_size:.1f}"
    )

    # -- 3. queries -----------------------------------------------------
    s, t = 3, graph.n - 4
    print(f"QUERY({s}, {t})      = {dyn.query(s, t):g}   (landmark-constrained)")
    print(f"distance({s}, {t})   = {dyn.distance(s, t):g}   (exact)")

    # -- 4. dynamic landmark reconfiguration ----------------------------
    newcomer = next(v for v in range(graph.n) if not dyn.index.is_landmark(v))
    veteran = landmarks[0]

    start = time.perf_counter()
    up = dyn.add_landmark(newcomer)  # UPGRADE-LMK
    t_up = time.perf_counter() - start
    print(
        f"UPGRADE-LMK({newcomer}): {t_up * 1000:.1f} ms "
        f"(settled {up.settled}, +{up.entries_added}/-{up.entries_removed} entries)"
    )

    start = time.perf_counter()
    down = dyn.remove_landmark(veteran)  # DOWNGRADE-LMK
    t_down = time.perf_counter() - start
    print(
        f"DOWNGRADE-LMK({veteran}): {t_down * 1000:.1f} ms "
        f"(swept {down.swept}, -{down.entries_removed}/+{down.entries_added} entries)"
    )

    # -- 5. the paper's headline comparison ------------------------------
    start = time.perf_counter()
    rebuilt = build_hcl(graph, sorted(dyn.landmarks))
    t_rebuild = time.perf_counter() - start
    per_update = (t_up + t_down) / 2
    print(
        f"full rebuild: {t_rebuild:.3f}s -> speed-up over rebuild: "
        f"{t_rebuild / per_update:.0f}x per update"
    )
    assert dyn.index.structurally_equal(rebuilt), "dynamic index must be canonical"
    print("dynamic index is bit-for-bit identical to a fresh BUILDHCL ✓")


if __name__ == "__main__":
    main()
