#!/usr/bin/env python3
"""Batch landmark reconfiguration and the rebuild cutoff.

Demonstrates the paper's future-work item (ii): applying many landmark
changes at once.  The batch processor cancels opposing updates, orders
insertions before deletions, and switches to one full ``BUILDHCL`` when the
batch approaches the landmark-set size — whichever way it goes, the result
is the same canonical index.

Run:  python examples/batch_reconfiguration.py
"""

import random
import time

from repro.core import DynamicHCL, build_hcl, select_landmarks
from repro.core.batch import batch_reconfigure
from repro.graphs import barabasi_albert


def main() -> None:
    rng = random.Random(5)
    graph = barabasi_albert(4000, 3, seed=11)
    initial = select_landmarks(graph, 48, policy="degree")
    print(f"graph: {graph.n} vertices, {graph.m} edges; |R| = {len(initial)}")

    for batch_size in (6, 24, 64):
        adds = rng.sample(
            [v for v in range(graph.n) if v not in set(initial)], batch_size // 2
        )
        removes = rng.sample(initial, batch_size // 2)

        # naive: replay one update at a time
        dyn = DynamicHCL.build(graph, initial)
        start = time.perf_counter()
        for v in removes:
            dyn.remove_landmark(v)
        for v in adds:
            dyn.add_landmark(v)
        t_seq = time.perf_counter() - start

        # batched: cancellation + ordering + rebuild cutoff
        index = build_hcl(graph, initial)
        start = time.perf_counter()
        result = batch_reconfigure(index, add=adds, remove=removes)
        t_batch = time.perf_counter() - start

        assert index.structurally_equal(dyn.index)
        print(
            f"σ = {batch_size:3d}: sequential {t_seq:6.2f}s | "
            f"batch {t_batch:6.2f}s ({result.strategy:8s}) | outputs identical ✓"
        )

    # Opposing updates cancel for free.
    index = build_hcl(graph, initial)
    flip = initial[0]
    result = batch_reconfigure(index, add=[flip], remove=[flip])
    print(
        f"\nadd+remove of landmark {flip} in one batch: "
        f"{result.cancelled} operation pair cancelled, zero work done"
    )


if __name__ == "__main__":
    main()
