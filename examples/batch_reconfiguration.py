#!/usr/bin/env python3
"""Batch-dynamic maintenance: merged landmark swaps + edge reweights.

Demonstrates the paper's future-work items (ii) and (iii) together:
``apply_batch`` applies many landmark changes — and edge-weight updates —
as ONE merged batch: opposing updates cancel, demotions share a single
union repair sweep, edge repairs run one pass per affected landmark row,
and the whole batch commits under one transaction.  When the batch
approaches the landmark-set size it switches to one full ``BUILDHCL``
instead — whichever way it goes, the result is the same canonical index
the sequential replay produces.

Run:  python examples/batch_reconfiguration.py
"""

import random
import time

from repro.core import DynamicHCL, apply_batch, build_hcl, select_landmarks
from repro.core.topology import FullyDynamicHCL
from repro.graphs import assign_uniform_integer_weights, barabasi_albert


def main() -> None:
    rng = random.Random(5)
    graph = barabasi_albert(4000, 3, seed=11)
    initial = select_landmarks(graph, 48, policy="degree")
    print(f"graph: {graph.n} vertices, {graph.m} edges; |R| = {len(initial)}")

    for batch_size in (6, 24, 64):
        adds = rng.sample(
            [v for v in range(graph.n) if v not in set(initial)], batch_size // 2
        )
        removes = rng.sample(initial, batch_size // 2)

        # naive: replay one update at a time
        dyn = DynamicHCL.build(graph, initial)
        start = time.perf_counter()
        for v in removes:
            dyn.remove_landmark(v)
        for v in adds:
            dyn.add_landmark(v)
        t_seq = time.perf_counter() - start

        # batched: cancellation + merged sweep + rebuild cutoff
        index = build_hcl(graph, initial)
        start = time.perf_counter()
        result = apply_batch(index, adds=adds, removes=removes)
        t_batch = time.perf_counter() - start

        assert index.structurally_equal(dyn.index)
        print(
            f"σ = {batch_size:3d}: sequential {t_seq:6.2f}s | "
            f"batch {t_batch:6.2f}s ({result.strategy:8s}) | outputs identical ✓"
        )

    # Edge-weight updates ride the same batch (and the same transaction).
    wgraph = assign_uniform_integer_weights(graph, 1, 7, seed=2)
    edge_ups = [
        (u, v, w + 1.0)
        for u, v, w in rng.sample(
            [e for _, e in zip(range(2000), wgraph.edges())], 8
        )
    ]
    seq = FullyDynamicHCL.build(wgraph.copy(), initial)
    start = time.perf_counter()
    for u, v, w in edge_ups:
        seq.set_edge_weight(u, v, w)
    t_seq = time.perf_counter() - start

    index = build_hcl(wgraph.copy(), initial)
    start = time.perf_counter()
    result = apply_batch(index, edge_updates=edge_ups)
    t_batch = time.perf_counter() - start
    assert index.structurally_equal(seq.index)
    print(
        f"8 edge reweights: sequential {t_seq:6.2f}s | batch {t_batch:6.2f}s "
        f"({result.edge_affected} affected rows) | outputs identical ✓"
    )

    # Opposing updates cancel for free.
    index = build_hcl(graph, initial)
    flip = initial[0]
    result = apply_batch(index, adds=[flip], removes=[flip])
    print(
        f"\nadd+remove of landmark {flip} in one batch: "
        f"{result.cancelled} operation pair cancelled, zero work done"
    )


if __name__ == "__main__":
    main()
