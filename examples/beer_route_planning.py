#!/usr/bin/env python3
"""Shortest beer paths with opening and closing stores.

The paper's motivating application (§1): route planning where every trip
must pass a point of interest — a gas station, a package-inspection depot,
a bar.  Beer vertices map to HCL landmarks, so store churn maps to
``UPGRADE-LMK`` / ``DOWNGRADE-LMK``, and a beer-distance query is a pure
index lookup with no graph traversal.

The script simulates a day in a delivery fleet's life on a city-scale road
network: queries keep flowing while stores open in the morning, a few close
for lunch, and the index follows along in milliseconds.

Run:  python examples/beer_route_planning.py
"""

import random
import time

from repro.beer import BeerDistanceIndex, BeerGraph, beer_distance_baseline
from repro.core.paths import landmark_constrained_path
from repro.graphs import assign_uniform_integer_weights, road_grid


def main() -> None:
    rng = random.Random(2024)

    # A city: 50x40 road grid with travel times 1..10 minutes per segment.
    city = assign_uniform_integer_weights(
        road_grid(50, 40, seed=3), low=1, high=10, seed=3
    )
    print(f"city road network: {city.n} intersections, {city.m} road segments")

    # Morning: 15 coffee stops are open.
    stores = rng.sample(range(city.n), 15)
    oracle = BeerDistanceIndex(BeerGraph(city, beer_vertices=stores))
    print(f"{len(stores)} stores open; index ready")

    def plan(courier: int, customer: int) -> None:
        start = time.perf_counter()
        detour = oracle.beer_distance(courier, customer)
        micros = (time.perf_counter() - start) * 1e6
        direct = oracle.distance(courier, customer)
        print(
            f"  courier {courier:4d} -> customer {customer:4d}: "
            f"direct {direct:5.0f} min, via store {detour:5.0f} min "
            f"(+{detour - direct:.0f})  [{micros:.0f} µs]"
        )

    print("\nmorning deliveries (coffee pickup required):")
    jobs = [(rng.randrange(city.n), rng.randrange(city.n)) for _ in range(5)]
    for courier, customer in jobs:
        plan(courier, customer)

    # A new store opens downtown.
    new_store = next(
        v for v in range(city.n) if not oracle.beer_graph.is_beer_vertex(v)
    )
    start = time.perf_counter()
    oracle.open_beer_vertex(new_store)  # UPGRADE-LMK under the hood
    print(
        f"\nstore opens at intersection {new_store} "
        f"(index updated in {(time.perf_counter() - start) * 1000:.1f} ms)"
    )
    for courier, customer in jobs[:2]:
        plan(courier, customer)

    # Two stores close for lunch.
    closing = stores[:2]
    start = time.perf_counter()
    for store in closing:
        oracle.close_beer_vertex(store)  # DOWNGRADE-LMK under the hood
    print(
        f"\nstores {closing} close for lunch "
        f"(index updated in {(time.perf_counter() - start) * 1000:.1f} ms)"
    )
    for courier, customer in jobs[:2]:
        plan(courier, customer)

    # Route reporting: the actual street-level path through the best store.
    courier, customer = jobs[0]
    route = landmark_constrained_path(oracle.dynamic_index.index, courier, customer)
    open_stores = oracle.beer_graph.beer_vertices
    stop = next(v for v in route if v in open_stores)
    print(
        f"\nfull route for courier {courier}: {len(route)} intersections, "
        f"coffee stop at {stop}"
    )
    print(f"  route head: {route[:8]} ...")

    # Sanity: the indexed answer equals the textbook two-tree baseline.
    want = beer_distance_baseline(oracle.beer_graph, courier, customer)
    got = oracle.beer_distance(courier, customer)
    assert got == want, (got, want)
    print("indexed beer distance matches the baseline ✓")


if __name__ == "__main__":
    main()
