#!/usr/bin/env python3
"""Adaptive landmark placement driven by an evolving query workload.

The paper's introduction motivates landmark reconfiguration with *evolving
query patterns*.  This example closes that loop end to end with the
operational layer:

1. an :class:`~repro.service.HCLService` fields typed distance requests;
2. the workload shifts to a hot region of the graph;
3. the :mod:`~repro.core.advisor` ranks reconfiguration candidates from
   the audited queries;
4. ``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` apply the advice in milliseconds;
5. the reconfigured index is checkpointed and restored without a rebuild.

Run:  python examples/adaptive_indexing.py
"""

import io
import random

from repro.core.advisor import suggest_addition, suggest_removal
from repro.graphs import assign_uniform_integer_weights, road_grid
from repro.service import (
    AddLandmarkRequest,
    ConstrainedDistanceRequest,
    HCLService,
    RemoveLandmarkRequest,
)


def main() -> None:
    rng = random.Random(77)
    graph = assign_uniform_integer_weights(
        road_grid(45, 35, seed=9), low=1, high=10, seed=9
    )
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    # Start with landmarks spread uniformly.
    initial = list(range(0, graph.n, graph.n // 16))[:16]
    svc = HCLService.build(graph, initial)
    print(f"service up with {len(svc.landmarks)} landmarks")

    # Phase 1: uniform workload.
    uniform = [
        (rng.randrange(graph.n), rng.randrange(graph.n)) for _ in range(200)
    ]
    for s, t in uniform:
        svc.submit(ConstrainedDistanceRequest(s, t))
    print(f"served {svc.stats.queries} uniform queries "
          f"(cache hit rate {svc.metrics()['gauges']['cache.hit_rate']:.0%})")

    # Phase 2: the workload shifts to a hot corner of the map.
    hot = [
        (rng.randrange(graph.n // 8), rng.randrange(graph.n // 8))
        for _ in range(300)
    ]
    mean_before = sum(
        svc.submit(ConstrainedDistanceRequest(s, t)) for s, t in hot
    ) / len(hot)
    print(f"hot-region constrained distances average {mean_before:.1f}")

    # Phase 3: ask the advisor what to change.
    additions = suggest_addition(svc._dyn.index, hot, top=2)
    removals = suggest_removal(svc._dyn.index, hot, top=2)
    print(f"advisor: promote {[v for v, _ in additions]}, "
          f"demote {[v for v, _ in removals]} "
          f"(usage {[u for _, u in removals]})")

    for v, _ in additions:
        svc.submit(AddLandmarkRequest(v))
    for v, usage in removals:
        if usage == 0 and len(svc.landmarks) > 2:
            svc.submit(RemoveLandmarkRequest(v))

    mean_after = sum(
        svc.submit(ConstrainedDistanceRequest(s, t)) for s, t in hot
    ) / len(hot)
    print(
        f"after reconfiguration: {mean_after:.1f} "
        f"({(1 - mean_after / mean_before):.0%} tighter bounds on the hot set)"
    )
    assert mean_after <= mean_before

    # Phase 4: checkpoint and restore without rebuilding.
    snapshot = io.BytesIO()
    svc.checkpoint(snapshot)
    snapshot.seek(0)
    restored = HCLService.restore(graph, snapshot)
    s, t = hot[0]
    assert restored.submit(ConstrainedDistanceRequest(s, t)) == svc.submit(
        ConstrainedDistanceRequest(s, t)
    )
    print(
        f"checkpoint is {len(snapshot.getvalue()):,} bytes; restored service "
        "answers identically ✓"
    )


if __name__ == "__main__":
    main()
