#!/usr/bin/env python3
"""Ordered multi-stop logistics with categorized, fluctuating facilities.

Implements the paper's last future-work idea (§5, item iv): landmark sets
with *categories*.  A parcel run must visit, in order, a warehouse (pick
up), an inspection point (customs), and a fuel stop — each category's
facilities open and close during the day.  The
:class:`~repro.core.multicategory.MultiCategoryHCL` answers each ordered
generalized-shortest-path query as a small dynamic program over ``δ_H``,
with no graph traversal, and tracks facility churn via UPGRADE/DOWNGRADE
on the union landmark set.

Run:  python examples/multicategory_logistics.py
"""

import random
import time

from repro.core.multicategory import MultiCategoryHCL
from repro.graphs import assign_uniform_integer_weights, road_grid


def main() -> None:
    rng = random.Random(11)
    city = assign_uniform_integer_weights(
        road_grid(40, 40, seed=21), low=1, high=9, seed=21
    )
    print(f"road network: {city.n} intersections, {city.m} segments")

    spots = rng.sample(range(city.n), 12)
    categories = {
        "warehouse": spots[:4],
        "inspection": spots[4:8],
        "fuel": spots[8:12],
    }
    mc = MultiCategoryHCL(city, categories)
    for name, members in mc.categories.items():
        print(f"  {name:10s}: {sorted(members)}")

    depot, customer = 3, city.n - 7
    itinerary = ["warehouse", "inspection", "fuel"]

    def quote() -> float:
        start = time.perf_counter()
        cost = mc.ordered_category_distance(depot, customer, itinerary)
        micros = (time.perf_counter() - start) * 1e6
        print(
            f"  {depot} -> {' -> '.join(itinerary)} -> {customer}: "
            f"{cost:g} min  [{micros:.0f} µs]"
        )
        return cost

    print("\nmorning quote (warehouse -> inspection -> fuel):")
    baseline = quote()

    direct = mc.distance(depot, customer)
    print(f"  (unconstrained direct drive would be {direct:g} min)")
    assert baseline >= direct

    # Midday: the nearest inspection point closes; quotes must lengthen
    # (or stay equal) because a minimum lost an option.
    victim = sorted(mc.categories["inspection"])[0]
    start = time.perf_counter()
    mc.remove_member("inspection", victim)
    print(
        f"\ninspection point {victim} closes "
        f"(index updated in {(time.perf_counter() - start) * 1000:.1f} ms)"
    )
    after_close = quote()
    assert after_close >= baseline

    # A new fuel station opens right on the customer's block.
    new_fuel = customer - 1
    start = time.perf_counter()
    mc.add_member("fuel", new_fuel)
    print(
        f"\nfuel station opens at {new_fuel} "
        f"(index updated in {(time.perf_counter() - start) * 1000:.1f} ms)"
    )
    after_open = quote()
    assert after_open <= after_close

    # Different stop orders price differently — the ordered semantics.
    print("\nall stop orders:")
    import itertools

    for order in itertools.permutations(itinerary):
        cost = mc.ordered_category_distance(depot, customer, list(order))
        print(f"  {' -> '.join(order):38s} {cost:g} min")

    print("\nordered multi-category quotes stayed consistent ✓")


if __name__ == "__main__":
    main()
