"""Observability benchmark: regression + disabled-tracing overhead gates.

Runs a pinned, CPU-bound DYN-HCL workload (build, batched queries, a run
of UPGRADE-LMK / DOWNGRADE-LMK, and a mixed service session with a WAL)
with tracing *disabled* — the production configuration — and compares the
segment timings against the committed ``BENCH_baseline.json``, which was
recorded from the pre-instrumentation tree.  Two gates:

* **latency regression**: any gated segment > ``1 + --tol-regression``
  (default 20%) over the baseline fails;
* **disabled-tracing overhead**: the same comparison at
  ``--tol-overhead`` (default 2%) — the observability seams must be free
  when off.  The same gate covers the *budget* seams: every gated
  segment runs with ``budget=None`` (the production configuration), so
  the deadline checkpoints threaded through the query and update paths
  must also be free when unarmed.  ``distance_exact`` pins the exact
  serving path (constrained bound + bounded bidirectional refinement)
  where the budgeted-twin dispatch lives; the budgeted variant is
  re-run with an unlimited budget and reported (ungated) as the cost of
  *arming* a budget.

The compiled-plan serving path gets its own segments
(``query_batch_plan``, ``distance_plan``, and the ungated
``plan_compile`` amortization cost) measured on the same index and query
pairs as their dict twins.  Besides the absolute baseline gates, each
plan segment must beat its dict twin *within the same run* by
``PLAN_SPEEDUP_MIN`` — a machine-independent relative gate, so the
speedup the plan exists for can never silently rot away.

``query_mvcc`` times the same batch served through a pinned MVCC epoch
(``plan="epoch"``): identical plan arrays, minus the per-batch
revision-stamp revalidation, plus one refcount pin/release.  Its
relative gate (``MVCC_SPEEDUP_MIN``) asserts parity with
``query_batch_plan`` within noise — epoch pinning must never make
serving slower than the revalidating path it replaces.

``query_sharded`` serves the same batch through a local 2-shard
:class:`~repro.shard.ShardedService` fleet; its relative gate
(``SHARD_SPEEDUP_MIN``) bounds the scatter-gather tax — pipes, pickling
and routing must keep the fleet within 2x of the in-process plan path.

``query_batch_vec`` and ``distance_vec`` serve the same batch and exact
pairs through the numpy :class:`~repro.core.planvec.VectorBackend`; the
flat twins pin ``backend="flat"`` so the comparison survives the
``"auto"`` default now resolving to the vectorized backend.  The batch
segment carries the headline relative gate (``VEC_SPEEDUP_MIN``): the
vectorized reduction must beat the interpreted flat kernel >= 1.5x
in-run, on top of bitwise-identical answers.  The exact path is
refinement-dominated, so ``distance_vec`` gates at parity-within-noise.
Both segments (and their gates) are skipped with a notice when numpy is
unavailable — the flat kernel is the portable serving path.

``batch_reconfigure`` applies one merged σ=8 landmark batch (4
promotions + 4 demotions) through :meth:`DynamicHCL.apply_batch` —
one transaction, one union repair sweep, one epoch publish — and
``batch_sequential`` replays the same swap one single-update at a time
(σ transactions, σ publishes) on an identical index copy.
``batch_edge_update`` does the same for 8 edge reweights on a weighted
copy of the instance versus per-edge transactional
``set_edge_weight`` replay.  Both batch segments carry the issue's
acceptance gate (``BATCH_SPEEDUP_MIN``): merging must beat replay
>= 1.5x in-run, on top of bitwise-identical final indexes, exactly one
epoch publish per batch, and exactly one WAL ``BATCH`` record
(asserted untimed against a throwaway service).

Wall-clock numbers are not portable between machines, so every timing is
normalized by an in-run *calibration* score (a fixed arithmetic loop) the
baseline also stores; the gates compare normalized values.  Fsync-bound
work (the service segment) is reported but never gated — filesystem
latency is not a property of this code.

After the gates, the workload runs once more with tracing *enabled* and
the full metrics snapshot (search counters, affected-set sizes, cache hit
rates, WAL fsync latencies, request histograms) is written to ``--out``
as the CI build artifact.

Usage::

    python benchmarks/bench_obs.py --check BENCH_baseline.json --out m.json
    python benchmarks/bench_obs.py --write-baseline BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.budget import Budget  # noqa: E402
from repro.core import (  # noqa: E402
    DynamicHCL,
    build_hcl,
    downgrade_landmark,
    select_landmarks,
    upgrade_landmark,
)
from repro.core.batchquery import query_batch  # noqa: E402
from repro.core.index import HCLIndex  # noqa: E402
from repro.core.topology import FullyDynamicHCL  # noqa: E402
from repro.core.transaction import IndexTransaction  # noqa: E402
from repro.graphs import (  # noqa: E402
    assign_uniform_integer_weights,
    barabasi_albert,
)
from repro.service import (  # noqa: E402
    AddLandmarkRequest,
    BatchQueryRequest,
    ConstrainedDistanceRequest,
    DistanceRequest,
    HCLService,
    RemoveLandmarkRequest,
)
from repro.workloads import zipf_query_pairs  # noqa: E402

try:  # absent only in the pre-instrumentation tree the baseline came from
    from repro import obs
except ImportError:  # pragma: no cover
    obs = None

REPS = 3
GATED_SEGMENTS = (
    "build",
    "query_batch",
    "distance_exact",
    "upgrade",
    "downgrade",
    "query_batch_plan",
    "distance_plan",
    "query_mvcc",
    "query_batch_vec",
    "distance_vec",
    "batch_reconfigure",
    "batch_edge_update",
)

# Relative gate: the compiled-plan serving path must actually beat its
# dict twin *within the same run* (machine-independent, so it needs no
# baseline entry).  Measured headroom is ~1.75x / ~1.58x; the gate is
# set conservatively below that so CI noise cannot flake it.
PLAN_TWINS = {
    "query_batch_plan": "query_batch",
    "distance_plan": "distance_exact",
}
PLAN_SPEEDUP_MIN = 1.25

# Epoch-pinned MVCC serving runs the same plan arrays as
# ``query_batch_plan`` minus the revision-stamp check, so the gate is
# parity-within-noise rather than a speedup claim: pinning an epoch must
# never cost more than the revalidating path it replaces.  The two
# segments are timed interleaved in the same rep loop, but batch-to-batch
# variance on shared runners still reaches ~15%, hence the floor.
MVCC_TWINS = {"query_mvcc": "query_batch_plan"}
MVCC_SPEEDUP_MIN = 0.85

# Scatter-gather over a local 2-shard fleet serves the same batch through
# pipes, pickling and the routing loop — a tax, not a win, on one
# machine (sharding exists for capacity and fault isolation).  The gate
# bounds the tax: the fleet must stay within 2x of the in-process plan
# path (measured ~0.75x on the pinned workload).
SHARD_TWINS = {"query_sharded": "query_batch_plan"}
SHARD_SPEEDUP_MIN = 0.5
SHARD_NSHARDS = 2

# The vectorized backend exists to beat the interpreted flat kernel on
# the constrained batch path (measured ~2.5x); the gate is set at the
# issue's acceptance floor.  The exact path spends its time in the
# bidirectional refinement either way, so its vec segment gates at
# parity-within-noise like MVCC.
VEC_TWINS = {"query_batch_vec": "query_batch_plan"}
VEC_SPEEDUP_MIN = 1.5
DIST_VEC_TWINS = {"distance_vec": "distance_plan"}
DIST_VEC_SPEEDUP_MIN = 0.85

# One merged batch vs its sequential single-update replay, both through
# the transactional, epoch-serving path on identical index copies.
# Merging pays once for the transaction snapshot, the repair sweep over
# the *union* affected set and the epoch recompile where the replay pays
# σ times over; the gate is the issue's acceptance floor.
BATCH_TWINS = {
    "batch_reconfigure": "batch_sequential",
    "batch_edge_update": "edge_sequential",
}
BATCH_SPEEDUP_MIN = 1.5
BATCH_SWAPS = 4  # σ = 8: 4 promotions + 4 demotions
BATCH_EDGES = 8

# Attach-time CRC verification (``shm_attach_verify`` vs the unchecked
# ``shm_attach``).  Attaching happens once per worker per publish — never
# per query — so the integrity pass is gated *relative to one serving
# batch*: the full verifying attach must cost < 2% of ``query_batch_plan``
# in the same run.  Both segments are skipped (with a notice) when shared
# memory is unavailable.
SHM_VERIFY_TWIN = ("shm_attach_verify", "query_batch_plan")
SHM_VERIFY_MAX_FRACTION = 0.02

# Pinned workload: a ~20k-vertex power-law graph, 32 landmarks.
GRAPH_N, GRAPH_M, GRAPH_SEED = 20000, 3, 11
LANDMARKS, LANDMARK_SEED = 32, 1
QUERY_PAIRS, QUERY_SEED = 60000, 3
EXACT_PAIRS = 3000
UPDATES = 6


def calibration_score() -> float:
    """Seconds for a fixed arithmetic loop (machine-speed proxy)."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(2_000_000):
            acc += i * i
        best = min(best, time.perf_counter() - start)
    assert acc  # keep the loop honest
    return best


def make_instance():
    graph = barabasi_albert(GRAPH_N, GRAPH_M, seed=GRAPH_SEED)
    landmarks = select_landmarks(graph, LANDMARKS, seed=LANDMARK_SEED)
    return graph, landmarks


def update_vertices(graph, landmarks) -> list[int]:
    rng = random.Random(42)
    pool = [v for v in range(graph.n) if v not in set(landmarks)]
    rng.shuffle(pool)
    return pool[:UPDATES]


def run_workload() -> dict[str, float]:
    """One full pass over every segment; returns min-of-REPS seconds."""
    graph, landmarks = make_instance()
    pairs = zipf_query_pairs(graph.n, QUERY_PAIRS, alpha=1.0, seed=QUERY_SEED)
    ups = None
    times: dict[str, list[float]] = {}

    def record(name: str, seconds: float) -> None:
        times.setdefault(name, []).append(seconds)

    # Untimed warmup: first-touch costs (imports, allocator growth, page
    # cache) land here instead of skewing the first timed rep.
    build_hcl(graph, landmarks)

    index = None
    for _ in range(REPS):
        start = time.perf_counter()
        index = build_hcl(graph, landmarks)
        record("build", time.perf_counter() - start)
    # Pin every dict-path segment: the baseline numbers predate the
    # compiled plan, so auto-compilation mid-segment would compare a
    # different algorithm against them.  The plan gets its own segments.
    index.plan_mode = "off"
    ups = update_vertices(graph, landmarks)

    for _ in range(REPS):
        start = time.perf_counter()
        answers = query_batch(index, pairs, workers=1, plan="off")
        record("query_batch", time.perf_counter() - start)
    assert len(answers) == len(pairs)

    exact_pairs = pairs[:EXACT_PAIRS]
    for _ in range(REPS):
        distance = index.distance
        start = time.perf_counter()
        for s, t in exact_pairs:
            distance(s, t)
        record("distance_exact", time.perf_counter() - start)
    for _ in range(REPS):
        budget = Budget()  # armed but unlimited: the budgeted-twin cost
        distance = index.distance
        start = time.perf_counter()
        for s, t in exact_pairs:
            distance(s, t, budget=budget)
        record("distance_exact_budgeted", time.perf_counter() - start)

    for _ in range(REPS):
        work = index.copy()
        start = time.perf_counter()
        for v in ups:
            upgrade_landmark(work, v)
        record("upgrade", time.perf_counter() - start)
        start = time.perf_counter()
        for v in ups:
            downgrade_landmark(work, v)
        record("downgrade", time.perf_counter() - start)

    with tempfile.TemporaryDirectory() as tmp:
        svc = HCLService(
            DynamicHCL(index.copy()), wal=Path(tmp) / "bench.wal"
        )
        requests = [DistanceRequest(1, 2), ConstrainedDistanceRequest(3, 4)]
        requests += [AddLandmarkRequest(v) for v in ups[:2]]
        requests += [BatchQueryRequest(tuple(pairs[:2000]), workers=1)]
        requests += [RemoveLandmarkRequest(v) for v in ups[:2]]
        start = time.perf_counter()
        for request in requests:
            svc.submit(request)
        record("service", time.perf_counter() - start)

    # Batch-dynamic maintenance: one merged apply_batch versus the
    # sequential single-update replay of the same σ=8 mixed swap, each
    # through the full transactional, epoch-serving path on identical
    # index copies.  The epoch-publish counters assert the contract the
    # speedup comes from: the batch pays one publish, the replay pays σ.
    swap_adds = ups[:BATCH_SWAPS]
    swap_rng = random.Random(7)
    swap_removes = sorted(swap_rng.sample(sorted(landmarks), BATCH_SWAPS))
    for _ in range(REPS):
        batched = DynamicHCL(index.copy())
        registry = batched.enable_plan_epochs()
        batched.query(0, 1)  # materialize the first epoch, untimed
        pubs = registry.summary()["publishes"]
        start = time.perf_counter()
        batched.apply_batch(adds=swap_adds, removes=swap_removes)
        record("batch_reconfigure", time.perf_counter() - start)
        assert registry.summary()["publishes"] == pubs + 1

        seq = DynamicHCL(index.copy())
        registry = seq.enable_plan_epochs()
        seq.query(0, 1)
        pubs = registry.summary()["publishes"]
        start = time.perf_counter()
        for v in swap_adds:
            seq.add_landmark(v)
        for v in swap_removes:
            seq.remove_landmark(v)
        record("batch_sequential", time.perf_counter() - start)
        assert registry.summary()["publishes"] == pubs + 2 * BATCH_SWAPS
        assert batched.index.structurally_equal(seq.index)

    # Edge-weight batches need a weighted instance (the pinned BA graph
    # is unweighted).  Highway and labeling are shared via copies of one
    # base build; each twin reweights its *own* graph copy so the
    # updates cannot leak between measurements.
    wgraph = assign_uniform_integer_weights(graph, 1, 7, seed=5)
    base_widx = build_hcl(wgraph, landmarks)
    edge_rng = random.Random(13)
    edge_pool = [e for _, e in zip(range(4000), wgraph.edges())]
    edge_ups = [
        (u, v, w + 1.0)
        for u, v, w in edge_rng.sample(edge_pool, BATCH_EDGES)
    ]
    for _ in range(REPS):
        batched = DynamicHCL(
            HCLIndex(
                wgraph.copy(),
                base_widx.highway.copy(),
                base_widx.labeling.copy(),
            )
        )
        registry = batched.enable_plan_epochs()
        batched.query(0, 1)
        pubs = registry.summary()["publishes"]
        start = time.perf_counter()
        batched.apply_batch(edge_updates=edge_ups)
        record("batch_edge_update", time.perf_counter() - start)
        assert registry.summary()["publishes"] == pubs + 1

        seq = FullyDynamicHCL(
            HCLIndex(
                wgraph.copy(),
                base_widx.highway.copy(),
                base_widx.labeling.copy(),
            )
        )
        registry = seq.enable_plan_epochs()
        seq.query(0, 1)
        start = time.perf_counter()
        for u, v, w in edge_ups:
            with IndexTransaction(seq.index):
                seq.set_edge_weight(u, v, w)
        record("edge_sequential", time.perf_counter() - start)
        assert batched.index.structurally_equal(seq.index)

    # Durability contract, untimed (fsync-bound): the whole batch lands
    # as exactly one WAL BATCH record.
    with tempfile.TemporaryDirectory() as tmp:
        svcb = HCLService(
            DynamicHCL(index.copy()), wal=Path(tmp) / "batch.wal"
        )
        svcb.submit_batch_reconfigure(
            adds=swap_adds, removes=swap_removes
        )
        assert svcb.wal.last_seq == 1

    # Compiled-plan serving path, on the same index and pairs as the
    # dict twins above so the PLAN_TWINS gate is apples-to-apples.
    plan = None
    for _ in range(REPS):
        start = time.perf_counter()
        plan = index.compile_plan()
        record("plan_compile", time.perf_counter() - start)

    # MVCC epoch serving reuses the same pairs; the initial epoch
    # compiles outside the timers (it is the plan_compile cost again).
    # The revalidating and epoch-pinned batches are timed back-to-back
    # inside one rep loop so their parity gate compares timings taken
    # under the same machine conditions.
    index.plan_mode = "epoch"
    index.epoch_registry().head_plan()
    from repro.core.planvec import numpy_available

    have_numpy = numpy_available()
    if have_numpy:
        # One-time g-matrix factorization; amortized like plan_compile,
        # reported ungated.
        start = time.perf_counter()
        plan.vector_backend().g_matrix()
        record("vec_build", time.perf_counter() - start)
    else:
        print(
            "[bench_obs] numpy unavailable: skipping query_batch_vec / "
            "distance_vec segments and their gates"
        )
    vec_answers = None
    for _ in range(REPS):
        start = time.perf_counter()
        plan_answers = query_batch(
            index, pairs, workers=1, plan=plan, backend="flat"
        )
        record("query_batch_plan", time.perf_counter() - start)
        start = time.perf_counter()
        mvcc_answers = query_batch(
            index, pairs, workers=1, plan="epoch", backend="flat"
        )
        record("query_mvcc", time.perf_counter() - start)
        if have_numpy:
            start = time.perf_counter()
            vec_answers = query_batch(
                index, pairs, workers=1, plan=plan, backend="vector"
            )
            record("query_batch_vec", time.perf_counter() - start)
    assert plan_answers == answers  # bitwise-identical serving
    assert mvcc_answers == answers  # snapshot serving stays bitwise-identical
    if have_numpy:
        assert vec_answers == answers  # vectorized serving, same bits

    index.plan_mode = "auto"  # adopt the compiled plan for distance()
    for _ in range(REPS):
        distance = index.distance
        start = time.perf_counter()
        for s, t in exact_pairs:
            distance(s, t)
        record("distance_plan", time.perf_counter() - start)
    if have_numpy:
        for _ in range(REPS):
            pdist = plan.distance
            start = time.perf_counter()
            for s, t in exact_pairs:
                pdist(s, t, backend="vector")
            record("distance_vec", time.perf_counter() - start)

    # Attach-time integrity: one unchecked attach vs one verifying
    # attach of the same live segment (header + five CRC32 passes over
    # the canonical arrays).  Segment creation stays untimed — it is the
    # plan_compile-style amortized cost.
    from repro.core.shm import shm_available

    if shm_available():
        shared = plan.shared_buffers()
        for _ in range(REPS):
            start = time.perf_counter()
            attachment = shared.ref.attach(verify=False)
            attachment.close()
            record("shm_attach", time.perf_counter() - start)
            start = time.perf_counter()
            attachment = shared.ref.attach()  # verify=True: full CRC pass
            attachment.close()
            record("shm_attach_verify", time.perf_counter() - start)
    else:
        print(
            "[bench_obs] shared memory unavailable: skipping shm_attach / "
            "shm_attach_verify segments and the CRC gate"
        )

    # Sharded scatter-gather over the same plan and pairs; spawn/load and
    # one warmup batch (worker first-touch, g-row heating) stay untimed.
    from repro.shard import ShardedService

    svc = ShardedService(plan, nshards=SHARD_NSHARDS, rpc_timeout=30.0)
    try:
        sharded_answers = svc.query_batch(pairs)
        for _ in range(REPS):
            start = time.perf_counter()
            sharded_answers = svc.query_batch(pairs)
            record("query_sharded", time.perf_counter() - start)
    finally:
        svc.close()
    assert sharded_answers == answers  # scatter-gather stays bitwise-identical

    return {name: min(vals) for name, vals in times.items()}


def observed_snapshot(out_path: str | None) -> dict:
    """Run a compact enabled-tracing pass and return the metrics snapshot."""
    if obs is None:  # pre-instrumentation tree
        return {}
    registry = obs.MetricsRegistry()
    graph = barabasi_albert(4000, GRAPH_M, seed=GRAPH_SEED)
    landmarks = select_landmarks(graph, 16, seed=LANDMARK_SEED)
    pairs = zipf_query_pairs(graph.n, 4000, alpha=1.0, seed=QUERY_SEED)
    with tempfile.TemporaryDirectory() as tmp:
        with obs.observed(registry):
            index = build_hcl(graph, landmarks)
            svc = HCLService(
                DynamicHCL(index), wal=Path(tmp) / "bench.wal"
            )
            for v in update_vertices(graph, landmarks)[:3]:
                svc.submit(AddLandmarkRequest(v))
                svc.submit(RemoveLandmarkRequest(v))
            svc.query_batch(pairs, workers=1)
            svc.query_batch(pairs[:500], workers=1)  # warm-cache pass
            snapshot = svc.metrics()
    if out_path:
        Path(out_path).write_text(json.dumps(snapshot, indent=2))
    return snapshot


def result_payload(segments: dict[str, float], calibration: float) -> dict:
    return {
        "schema": "bench-obs/1",
        "calibration_seconds": calibration,
        "segments": segments,
        "workload": {
            "graph": [GRAPH_N, GRAPH_M, GRAPH_SEED],
            "landmarks": [LANDMARKS, LANDMARK_SEED],
            "query_pairs": [QUERY_PAIRS, QUERY_SEED],
            "updates": UPDATES,
            "reps": REPS,
        },
        "python": platform.python_version(),
    }


def plan_speedups(
    segments: dict[str, float], twins: dict[str, str] = PLAN_TWINS
) -> dict[str, float]:
    """twin time / segment time for every measured twinned segment."""
    return {
        name: segments[twin] / segments[name]
        for name, twin in twins.items()
        if name in segments and twin in segments
    }


def check(baseline: dict, current: dict, tol_reg: float, tol_over: float) -> int:
    scale = current["calibration_seconds"] / baseline["calibration_seconds"]
    failures = []
    print(f"[bench_obs] calibration scale vs baseline: {scale:.3f}x")
    for name, t_cur in current["segments"].items():
        t_base = baseline["segments"].get(name)
        if t_base is None:
            print(f"[bench_obs] {name}: {t_cur:.3f}s (no baseline; skipped)")
            continue
        norm = t_cur / (t_base * scale)
        gated = name in GATED_SEGMENTS
        verdict = "ok"
        if gated and norm > 1 + tol_reg:
            verdict = f"REGRESSION (> {tol_reg:.0%})"
            failures.append(name)
        elif gated and norm > 1 + tol_over:
            verdict = f"OVERHEAD (> {tol_over:.0%})"
            failures.append(name)
        print(
            f"[bench_obs] {name}: {t_cur:.3f}s vs baseline "
            f"{t_base:.3f}s -> normalized {norm:.3f} "
            f"({'gated' if gated else 'ungated'}) {verdict}"
        )
    relative_gates = (
        (PLAN_TWINS, PLAN_SPEEDUP_MIN),
        (MVCC_TWINS, MVCC_SPEEDUP_MIN),
        (SHARD_TWINS, SHARD_SPEEDUP_MIN),
        (VEC_TWINS, VEC_SPEEDUP_MIN),
        (DIST_VEC_TWINS, DIST_VEC_SPEEDUP_MIN),
        (BATCH_TWINS, BATCH_SPEEDUP_MIN),
    )
    for twins, minimum in relative_gates:
        for name, speedup in plan_speedups(current["segments"], twins).items():
            verdict = "ok"
            if speedup < minimum:
                verdict = f"TOO SLOW (< {minimum:.2f}x)"
                failures.append(name)
            print(
                f"[bench_obs] {name}: {speedup:.2f}x over {twins[name]} "
                f"(relative gate, >= {minimum:.2f}x) {verdict}"
            )
    name, twin = SHM_VERIFY_TWIN
    if name in current["segments"] and twin in current["segments"]:
        fraction = current["segments"][name] / current["segments"][twin]
        verdict = "ok"
        if fraction > SHM_VERIFY_MAX_FRACTION:
            verdict = f"TOO EXPENSIVE (> {SHM_VERIFY_MAX_FRACTION:.0%})"
            failures.append(name)
        print(
            f"[bench_obs] {name}: {fraction:.4f} of {twin} "
            f"(CRC gate, <= {SHM_VERIFY_MAX_FRACTION:.0%}) {verdict}"
        )
    if failures:
        print(f"[bench_obs] FAILED segments: {', '.join(failures)}")
        return 1
    print("[bench_obs] all gates passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-baseline", metavar="PATH")
    parser.add_argument("--check", metavar="PATH")
    parser.add_argument("--out", metavar="PATH", help="metrics JSON artifact")
    parser.add_argument("--tol-regression", type=float, default=0.20)
    parser.add_argument("--tol-overhead", type=float, default=0.02)
    args = parser.parse_args(argv)

    if obs is not None:
        assert not obs.OBS.enabled, "tracing must be disabled for the gates"
    calibration = calibration_score()
    segments = run_workload()
    payload = result_payload(segments, calibration)
    for name, seconds in segments.items():
        print(f"[bench_obs] measured {name}: {seconds:.3f}s")
    if "distance_exact" in segments:
        ratio = segments["distance_exact_budgeted"] / segments["distance_exact"]
        print(
            f"[bench_obs] armed-budget cost on the exact path: "
            f"{ratio:.3f}x (ungated; production serves budget=None)"
        )
    for twins in (
        PLAN_TWINS,
        MVCC_TWINS,
        SHARD_TWINS,
        VEC_TWINS,
        DIST_VEC_TWINS,
        BATCH_TWINS,
    ):
        for name, speedup in plan_speedups(segments, twins).items():
            print(
                f"[bench_obs] relative speedup {name}: {speedup:.2f}x over "
                f"{twins[name]}"
            )
    if "shm_attach_verify" in segments:
        fraction = segments["shm_attach_verify"] / segments["query_batch_plan"]
        print(
            f"[bench_obs] verifying attach: "
            f"{segments['shm_attach_verify'] * 1000:.2f}ms "
            f"({fraction:.4f} of one query_batch_plan batch)"
        )

    status = 0
    if args.write_baseline:
        Path(args.write_baseline).write_text(json.dumps(payload, indent=2))
        print(f"[bench_obs] baseline written to {args.write_baseline}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        status = check(
            baseline, payload, args.tol_regression, args.tol_overhead
        )
    if args.out:
        snapshot = observed_snapshot(args.out)
        if snapshot:
            print(f"[bench_obs] metrics artifact written to {args.out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
