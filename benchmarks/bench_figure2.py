"""Figure 2 bench — cumulative-cost scaling over the road-graph family.

The figure's claim: both engines scale roughly linearly in graph size with
DYN-HCL's constants at least an order of magnitude lower.  Each benchmark
here is one point of the DYN-HCL series (build + σ updates + queries) at a
small scale; the CH-GSP series point rides along for the smallest graph.
The full series is `python -m repro.experiments figure2`.
"""

import pytest

from repro.baselines import CHGSP
from repro.core import DynamicHCL, select_landmarks
from repro.workloads import make_dataset, mixed_update_sequence, random_query_pairs

SCALES = {"LUX": 0.25, "NW": 0.25, "ITA": 0.25}


def dyn_hcl_point(graph, landmarks, updates, pairs):
    dyn = DynamicHCL.build(graph, landmarks)
    dyn.apply_sequence(updates)
    q = dyn.index.query
    for s, t in pairs:
        q(s, t)
    return dyn


@pytest.mark.parametrize("name", sorted(SCALES))
def test_dynhcl_cumulative_point(benchmark, name):
    graph = make_dataset(name, scale=SCALES[name], seed=1)
    landmarks = select_landmarks(graph, 30, seed=1)
    updates = mixed_update_sequence(graph.n, landmarks, seed=2)
    pairs = random_query_pairs(graph.n, 300, seed=3)
    dyn = benchmark.pedantic(
        dyn_hcl_point, args=(graph, landmarks, updates, pairs), rounds=3
    )
    assert dyn.index.highway.size == len(landmarks)


def test_chgsp_cumulative_point(benchmark):
    graph = make_dataset("LUX", scale=0.25, seed=1)
    landmarks = select_landmarks(graph, 30, seed=1)
    updates = mixed_update_sequence(graph.n, landmarks, seed=2)
    pairs = random_query_pairs(graph.n, 300, seed=3)

    def chgsp_point():
        engine = CHGSP(graph, landmarks)
        for u in updates:
            if u.kind == "add":
                engine.add_landmark(u.vertex)
            else:
                engine.remove_landmark(u.vertex)
        q = engine.landmark_constrained_distance
        for s, t in pairs:
            q(s, t)
        return engine

    benchmark.pedantic(chgsp_point, rounds=3)
