"""CSR snapshot benches: flat-array sweeps vs adjacency-list sweeps."""

import pytest

from repro.core import build_hcl, select_landmarks
from repro.graphs import dijkstra_distances
from repro.graphs.csr import CSRGraph, csr_dijkstra
from repro.workloads import make_dataset


@pytest.fixture(scope="module")
def csr_instance():
    graph = make_dataset("USA", scale=0.5, seed=1)
    return graph, CSRGraph(graph)


def test_adjacency_dijkstra(benchmark, csr_instance):
    graph, _ = csr_instance
    benchmark(dijkstra_distances, graph, 0)


def test_csr_dijkstra(benchmark, csr_instance):
    _, csr = csr_instance
    benchmark(csr_dijkstra, csr, 0)


def test_csr_snapshot_cost(benchmark, csr_instance):
    graph, _ = csr_instance
    csr = benchmark(CSRGraph, graph)
    assert csr.n == graph.n


def test_buildhcl_on_csr(benchmark, csr_instance):
    graph, csr = csr_instance
    landmarks = select_landmarks(graph, 20, seed=1)
    index = benchmark.pedantic(build_hcl, args=(csr, landmarks), rounds=3)
    assert index.highway.size == 20
