"""Micro-benchmarks for the hot kernels underneath every experiment."""

import pytest

from repro.baselines import build_contraction_hierarchy, ch_distance
from repro.core.paths import landmark_constrained_path, shortest_path
from repro.graphs import (
    bounded_bidirectional_distance,
    dijkstra_distances,
    flagged_single_source,
)
from repro.workloads import random_query_pairs


def test_dijkstra_sweep(benchmark, bench_instance):
    _, graph, _, _ = bench_instance
    dist = benchmark(dijkstra_distances, graph, 0)
    assert dist[0] == 0.0


def test_flagged_sweep(benchmark, bench_instance):
    """The BUILDHCL kernel: Dijkstra + landmark-avoidance flags."""
    _, graph, landmarks, _ = bench_instance
    blocked = set(landmarks[1:])
    dist, clear = benchmark(flagged_single_source, graph, landmarks[0], blocked)
    assert clear[landmarks[0]]


def test_hcl_query(benchmark, bench_instance):
    _, graph, _, index = bench_instance
    pairs = random_query_pairs(graph.n, 500, seed=9)

    def run():
        q = index.query
        return [q(s, t) for s, t in pairs]

    benchmark(run)


def test_exact_distance_query(benchmark, bench_instance):
    """QUERY upper bound + bounded bidirectional refinement."""
    _, graph, _, index = bench_instance
    pairs = random_query_pairs(graph.n, 100, seed=10)

    def run():
        d = index.distance
        return [d(s, t) for s, t in pairs]

    benchmark(run)


def test_bounded_bidirectional(benchmark, bench_instance):
    _, graph, landmarks, index = bench_instance
    s, t = 1, graph.n - 2
    ub = index.query(s, t)
    benchmark(bounded_bidirectional_distance, graph, s, t, ub, set(landmarks))


def test_path_reporting(benchmark, bench_instance):
    _, graph, _, index = bench_instance
    pairs = [
        (s, t)
        for s, t in random_query_pairs(graph.n, 50, seed=11)
        if index.query(s, t) != float("inf")
    ]

    def run():
        return [landmark_constrained_path(index, s, t) for s, t in pairs[:20]]

    benchmark(run)


def test_exact_path(benchmark, bench_instance):
    _, graph, _, index = bench_instance
    pairs = random_query_pairs(graph.n, 20, seed=12)

    def run():
        out = []
        for s, t in pairs:
            try:
                out.append(shortest_path(index, s, t))
            except Exception:
                pass
        return out

    benchmark(run)


@pytest.fixture(scope="module")
def road_ch():
    from repro.workloads import make_dataset

    graph = make_dataset("LUX", scale=0.4, seed=1)
    return graph, build_contraction_hierarchy(graph)


def test_ch_construction(benchmark):
    from repro.workloads import make_dataset

    graph = make_dataset("LUX", scale=0.25, seed=1)
    ch = benchmark(build_contraction_hierarchy, graph)
    assert ch.n == graph.n


def test_ch_point_to_point(benchmark, road_ch):
    graph, ch = road_ch
    pairs = random_query_pairs(graph.n, 100, seed=13)

    def run():
        return [ch_distance(ch, s, t) for s, t in pairs]

    benchmark(run)
