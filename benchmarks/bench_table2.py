"""Table 2 bench — UPGRADE/DOWNGRADE-LMK vs full BUILDHCL.

The paper's headline comparison (goal G1): per-update dynamic maintenance
must beat full recomputation by orders of magnitude.  The three benchmarks
here measure the exact quantities of Table 2 (``T_BUILD`` and the two
halves of ``T_FDYN``) on a road and a power-law instance; the full sweep is
`python -m repro.experiments table2`.
"""

from repro.core import build_hcl, downgrade_landmark, upgrade_landmark


def test_buildhcl_from_scratch(benchmark, bench_instance):
    """T_BUILD: the full-recomputation baseline."""
    _, graph, landmarks, _ = bench_instance
    index = benchmark(build_hcl, graph, landmarks)
    assert index.highway.size == len(landmarks)


def test_upgrade_lmk(benchmark, bench_instance):
    """T_FDYN, insertion half: promote a fresh vertex."""
    _, graph, landmarks, index = bench_instance
    lmk_set = set(landmarks)
    newcomer = next(v for v in range(graph.n) if v not in lmk_set)

    def setup():
        return (index.copy(), newcomer), {}

    benchmark.pedantic(upgrade_landmark, setup=setup, rounds=15)


def test_downgrade_lmk(benchmark, bench_instance):
    """T_FDYN, deletion half: demote an existing landmark."""
    _, _, landmarks, index = bench_instance
    victim = landmarks[len(landmarks) // 2]

    def setup():
        return (index.copy(), victim), {}

    benchmark.pedantic(downgrade_landmark, setup=setup, rounds=15)


def test_speedup_shape(bench_instance):
    """Not a timing bench: asserts the paper's qualitative claim locally —
    one dynamic update must be much cheaper than one rebuild."""
    import time

    _, graph, landmarks, index = bench_instance
    lmk_set = set(landmarks)
    newcomer = next(v for v in range(graph.n) if v not in lmk_set)

    clone = index.copy()
    start = time.perf_counter()
    upgrade_landmark(clone, newcomer)
    t_update = time.perf_counter() - start

    start = time.perf_counter()
    build_hcl(graph, landmarks + [newcomer])
    t_build = time.perf_counter() - start

    assert t_build > 2 * t_update, (t_build, t_update)
