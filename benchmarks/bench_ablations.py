"""Ablation benches — the design choices DESIGN.md calls out.

A1: UPGRADE-LMK's superfluous-entry cleanup (on/off).
A2: batch reconfiguration vs sequential replay.
A3: landmark selection policies' effect on build cost.
"""

import pytest

from repro.core import DynamicHCL, build_hcl, select_landmarks, upgrade_landmark
from repro.core.batch import batch_reconfigure
from repro.workloads import make_dataset, mixed_update_sequence


@pytest.fixture(scope="module")
def ablation_instance():
    graph = make_dataset("U-BAR", scale=0.15, seed=1)
    landmarks = select_landmarks(graph, 40, seed=1)
    index = build_hcl(graph, landmarks)
    return graph, landmarks, index


@pytest.mark.parametrize("cleanup", [True, False], ids=["cleanup-on", "cleanup-off"])
def test_a1_upgrade_cleanup(benchmark, ablation_instance, cleanup):
    graph, landmarks, index = ablation_instance
    lmk_set = set(landmarks)
    newcomer = next(v for v in range(graph.n) if v not in lmk_set)

    def setup():
        return (index.copy(), newcomer), {"remove_superfluous": cleanup}

    benchmark.pedantic(upgrade_landmark, setup=setup, rounds=10)


@pytest.mark.parametrize("mode", ["sequential", "batch"])
def test_a2_batch_vs_sequential(benchmark, ablation_instance, mode):
    graph, landmarks, _ = ablation_instance
    updates = mixed_update_sequence(graph.n, landmarks, sigma=20, seed=4)
    adds = [u.vertex for u in updates if u.kind == "add"]
    removes = [u.vertex for u in updates if u.kind == "remove"]

    if mode == "sequential":

        def run():
            dyn = DynamicHCL.build(graph, landmarks)
            dyn.apply_sequence(updates)
            return dyn.index

    else:

        def run():
            index = build_hcl(graph, landmarks)
            batch_reconfigure(index, add=adds, remove=removes)
            return index

    benchmark.pedantic(run, rounds=3)


@pytest.mark.parametrize("policy", ["degree", "betweenness", "random"])
def test_a3_selection_policy_build(benchmark, policy):
    graph = make_dataset("NW", scale=0.3, seed=1)
    landmarks = select_landmarks(graph, 30, policy=policy, seed=1)
    index = benchmark(build_hcl, graph, landmarks)
    assert index.highway.size == 30
