"""Table 3 bench — landmark-constrained queries: DYN-HCL vs CH-GSP.

Measures the per-query cost of the two engines of goal (G2) on the same
instance and landmark set: the HCL ``QUERY`` (a label join against ``δ_H``)
versus the CH-GSP bucket-join query.  The cumulative/amortized sweep is
`python -m repro.experiments table3`.
"""

import random

import pytest

from repro.baselines import CHGSP
from repro.baselines.naive import multi_dijkstra_landmark_constrained
from repro.workloads import make_dataset, random_query_pairs
from repro.core import build_hcl, select_landmarks


@pytest.fixture(scope="module")
def g2_instance():
    graph = make_dataset("LUX", scale=0.5, seed=1)
    landmarks = select_landmarks(graph, 40, seed=1)
    index = build_hcl(graph, landmarks)
    engine = CHGSP(graph, landmarks)
    pairs = random_query_pairs(graph.n, 200, seed=2)
    return graph, landmarks, index, engine, pairs


def test_hcl_query_batch(benchmark, g2_instance):
    _, _, index, _, pairs = g2_instance

    def run():
        q = index.query
        return [q(s, t) for s, t in pairs]

    results = benchmark(run)
    assert len(results) == len(pairs)


def test_chgsp_query_batch(benchmark, g2_instance):
    _, _, _, engine, pairs = g2_instance

    def run():
        q = engine.landmark_constrained_distance
        return [q(s, t) for s, t in pairs]

    results = benchmark(run)
    assert len(results) == len(pairs)


def test_multi_dijkstra_query_batch(benchmark, g2_instance):
    """The no-preprocessing baseline (much slower; 20 queries only)."""
    graph, landmarks, _, _, pairs = g2_instance

    def run():
        return [
            multi_dijkstra_landmark_constrained(graph, landmarks, s, t)
            for s, t in pairs[:20]
        ]

    benchmark(run)


def test_chgsp_landmark_update(benchmark, g2_instance):
    """CH-GSP's landmark maintenance: one upward search per insertion."""
    graph, landmarks, _, engine, _ = g2_instance
    rng = random.Random(3)
    lmk_set = set(landmarks)
    fresh = [v for v in range(graph.n) if v not in lmk_set]

    def round():
        v = rng.choice(fresh)
        if v in engine.landmarks:
            engine.remove_landmark(v)
        else:
            engine.add_landmark(v)

    benchmark(round)


def test_engines_agree(g2_instance):
    """Correctness cross-check riding along with the benchmarks."""
    _, _, index, engine, pairs = g2_instance
    for s, t in pairs[:50]:
        assert index.query(s, t) == engine.landmark_constrained_distance(s, t)
