"""PLL vs HCL — the space/time trade-off HCL was designed around.

Farhan et al. motivate HCL as a 2-hop-cover (PLL) customization with far
smaller labels at slightly higher query cost.  These benches reproduce
that trade-off in miniature: PLL's pure label-join queries against HCL's
bound-plus-refinement queries, next to their construction costs; label
sizes are asserted, not timed.
"""

import pytest

from repro.baselines.pll import PrunedLandmarkLabeling
from repro.core import build_hcl, select_landmarks
from repro.workloads import make_dataset, random_query_pairs


@pytest.fixture(scope="module")
def instance():
    graph = make_dataset("LUX", scale=0.35, seed=1)
    landmarks = select_landmarks(graph, 30, seed=1)
    hcl = build_hcl(graph, landmarks)
    pll = PrunedLandmarkLabeling(graph)
    pairs = random_query_pairs(graph.n, 200, seed=4)
    return graph, hcl, pll, pairs


def test_pll_construction(benchmark):
    graph = make_dataset("LUX", scale=0.2, seed=1)
    pll = benchmark.pedantic(PrunedLandmarkLabeling, args=(graph,), rounds=3)
    assert pll.total_entries() > 0


def test_hcl_construction(benchmark):
    graph = make_dataset("LUX", scale=0.2, seed=1)
    landmarks = select_landmarks(graph, 30, seed=1)
    benchmark.pedantic(build_hcl, args=(graph, landmarks), rounds=3)


def test_pll_exact_queries(benchmark, instance):
    _, _, pll, pairs = instance

    def run():
        d = pll.distance
        return [d(s, t) for s, t in pairs]

    benchmark(run)


def test_hcl_exact_queries(benchmark, instance):
    _, hcl, _, pairs = instance

    def run():
        d = hcl.distance
        return [d(s, t) for s, t in pairs]

    benchmark(run)


def test_space_tradeoff(instance):
    """HCL labels must be substantially smaller than PLL's."""
    _, hcl, pll, _ = instance
    assert hcl.labeling.total_entries() < pll.total_entries()


def test_query_agreement(instance):
    _, hcl, pll, pairs = instance
    for s, t in pairs[:50]:
        assert hcl.distance(s, t) == pll.distance(s, t)
