"""Figure 1 bench — the worked example's update operations.

Figure 1 is illustrative rather than evaluative, but benchmarking its two
reconfigurations keeps the smallest end of the update-cost spectrum under
regression watch (both must be microsecond-scale).
"""

from repro.core import build_hcl, downgrade_landmark, upgrade_landmark
from repro.workloads import FIGURE1_INITIAL_LANDMARKS, figure1_graph


def test_figure1_upgrade(benchmark):
    graph = figure1_graph()

    def setup():
        return (build_hcl(graph, FIGURE1_INITIAL_LANDMARKS), 3), {}

    benchmark.pedantic(upgrade_landmark, setup=setup, rounds=50)


def test_figure1_downgrade(benchmark):
    graph = figure1_graph()

    def setup():
        index = build_hcl(graph, FIGURE1_INITIAL_LANDMARKS)
        upgrade_landmark(index, 3)
        return (index, 7), {}

    benchmark.pedantic(downgrade_landmark, setup=setup, rounds=50)


def test_figure1_full_scenario(benchmark):
    """Build + upgrade(3) + downgrade(7), end to end."""
    graph = figure1_graph()

    def scenario():
        index = build_hcl(graph, FIGURE1_INITIAL_LANDMARKS)
        upgrade_landmark(index, 3)
        downgrade_landmark(index, 7)
        return index

    index = benchmark(scenario)
    assert index.landmarks == {3, 5}
