"""Table 1 bench — dataset stand-in generation throughput.

Regenerating Table 1 is `python -m repro.experiments table1`; this bench
tracks the cost of materializing representative stand-ins from each
topology class so generator regressions are caught.
"""

import pytest

from repro.workloads import make_dataset


@pytest.mark.parametrize("name", ["ERD", "LUX", "CAI", "YAH", "U-BAR"])
def test_dataset_generation(benchmark, name):
    graph = benchmark(make_dataset, name, 0.2, 1)
    assert graph.n > 0
    assert graph.m > 0
