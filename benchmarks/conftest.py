"""Shared fixtures for the benchmark suite.

Benchmark instances are smaller than the experiment-harness defaults so
that ``pytest benchmarks/ --benchmark-only`` completes in minutes; the
full paper-shaped sweeps live in ``python -m repro.experiments``.
"""

from __future__ import annotations

import pytest

from repro.core import build_hcl, select_landmarks
from repro.workloads import make_dataset

#: (dataset, scale, |R|) per benchmark class: one road, one power-law.
BENCH_CONFIGS = {
    "road": ("LUX", 0.5, 40),
    "powerlaw": ("U-BAR", 0.15, 40),
}


@pytest.fixture(scope="session", params=sorted(BENCH_CONFIGS))
def bench_instance(request):
    """A prepared (name, graph, landmarks, index) tuple, session-cached."""
    name, scale, k = BENCH_CONFIGS[request.param]
    graph = make_dataset(name, scale=scale, seed=1)
    landmarks = select_landmarks(graph, k, seed=1)
    index = build_hcl(graph, landmarks)
    return request.param, graph, landmarks, index
