"""Benches for the multi-core build and the batched query path.

Run with ``pytest benchmarks/bench_parallel.py -q -s``.  Two measurements:

* serial ``build_hcl`` vs ``build_hcl_parallel`` (speedup tracks the
  machine's core count; on a single-core box the parallel path pays pure
  pool overhead, which is exactly why both numbers are recorded);
* a serial per-pair ``index.query`` loop vs one ``query_batch`` call over
  the same Zipf workload on a ≥10k-vertex generated graph — the batch path
  must clear 2x throughput, which it achieves algorithmically (dedup +
  shared landmark rows), before any process fan-out.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import build_hcl, build_hcl_parallel, select_landmarks
from repro.core.batchquery import query_batch
from repro.experiments import run_parallel
from repro.graphs import barabasi_albert
from repro.workloads import zipf_query_pairs

WORKERS = 4


@pytest.fixture(scope="module")
def large_instance():
    """A ≥10k-vertex power-law graph with a standard landmark set."""
    graph = barabasi_albert(12000, 2, seed=7)
    landmarks = select_landmarks(graph, 40, seed=1)
    index = build_hcl(graph, landmarks)
    return graph, landmarks, index


def test_parallel_build_report(large_instance, capsys):
    """Record serial vs parallel build time; verify identical output."""
    graph, landmarks, serial_index = large_instance
    start = time.perf_counter()
    parallel_index = build_hcl_parallel(graph, landmarks, workers=WORKERS)
    t_parallel = time.perf_counter() - start
    start = time.perf_counter()
    rebuilt = build_hcl(graph, landmarks)
    t_serial = time.perf_counter() - start
    assert parallel_index.structurally_equal(serial_index)
    assert rebuilt.structurally_equal(serial_index)
    with capsys.disabled():
        print(
            f"\n[bench_parallel] build: serial {t_serial:.2f}s, "
            f"parallel(w={WORKERS}) {t_parallel:.2f}s, "
            f"speedup {t_serial / t_parallel:.2f}x"
        )


def test_batch_query_throughput(large_instance, capsys):
    """The acceptance gate: batched serving >= 2x the per-pair loop."""
    graph, _, index = large_instance
    pairs = zipf_query_pairs(graph.n, 20000, alpha=1.0, seed=3)

    query = index.query
    start = time.perf_counter()
    serial_answers = [query(s, t) for s, t in pairs]
    t_serial = time.perf_counter() - start

    # A 4-worker run, clamped to the cores actually present — the same
    # no-oversubscription rule the service layer applies.  The >= 2x gate
    # therefore holds even on a single-core box, where the whole speedup is
    # algorithmic (dedup + shared landmark rows).
    start = time.perf_counter()
    batch_answers = query_batch(
        index, pairs, workers=min(WORKERS, os.cpu_count() or 1)
    )
    t_batch = time.perf_counter() - start

    assert batch_answers == serial_answers
    speedup = t_serial / t_batch
    throughput = len(pairs) / t_batch
    with capsys.disabled():
        print(
            f"\n[bench_parallel] {len(pairs)} queries: per-pair loop "
            f"{t_serial:.2f}s, batch {t_batch:.2f}s, speedup {speedup:.2f}x, "
            f"{throughput:,.0f} q/s"
        )
    assert speedup >= 2.0


def test_run_parallel_harness(capsys):
    """The experiments-harness wiring end to end (smaller instance)."""
    graph = barabasi_albert(2000, 2, seed=5)
    result = run_parallel(
        graph, "BA-2k", landmark_count=24, workers=WORKERS, queries=4000
    )
    with capsys.disabled():
        print(
            f"\n[bench_parallel] harness: build {result.t_build_serial:.2f}s "
            f"-> {result.t_build_parallel:.2f}s, batch speedup "
            f"{result.batch_speedup:.2f}x, {result.batch_throughput:,.0f} q/s"
        )
    assert result.queries == 4000
    assert result.t_query_batch > 0
