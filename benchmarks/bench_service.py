"""Benches for the operational layer: persistence and query caching."""

import io

import pytest

from repro.core import DynamicHCL, build_hcl, select_landmarks
from repro.core.cache import CachedQueryEngine
from repro.core.serialization import (
    load_index_binary,
    load_index_json,
    save_index_binary,
    save_index_json,
)
from repro.workloads import make_dataset, random_query_pairs


@pytest.fixture(scope="module")
def persisted_instance():
    graph = make_dataset("NW", scale=0.4, seed=1)
    landmarks = select_landmarks(graph, 40, seed=1)
    index = build_hcl(graph, landmarks)
    binary = io.BytesIO()
    save_index_binary(index, binary)
    return graph, index, binary.getvalue()


def test_save_binary(benchmark, persisted_instance):
    _, index, _ = persisted_instance

    def run():
        buf = io.BytesIO()
        save_index_binary(index, buf)
        return buf

    benchmark(run)


def test_load_binary(benchmark, persisted_instance):
    graph, index, blob = persisted_instance

    def run():
        return load_index_binary(graph, io.BytesIO(blob))

    loaded = benchmark(run)
    assert loaded.structurally_equal(index)


def test_save_load_json(benchmark, persisted_instance):
    graph, index, _ = persisted_instance

    def run():
        buf = io.StringIO()
        save_index_json(index, buf)
        buf.seek(0)
        return load_index_json(graph, buf)

    loaded = benchmark(run)
    assert loaded.structurally_equal(index)


def test_load_beats_rebuild(persisted_instance):
    """The reason persistence exists: loading must crush BUILDHCL."""
    import time

    graph, index, blob = persisted_instance
    start = time.perf_counter()
    load_index_binary(graph, io.BytesIO(blob))
    t_load = time.perf_counter() - start
    start = time.perf_counter()
    build_hcl(graph, sorted(index.landmarks))
    t_build = time.perf_counter() - start
    assert t_load < t_build


@pytest.mark.parametrize("cached", [False, True], ids=["uncached", "cached"])
def test_query_cache_effect(benchmark, cached):
    graph = make_dataset("LUX", scale=0.3, seed=1)
    landmarks = select_landmarks(graph, 30, seed=1)
    dyn = DynamicHCL.build(graph, landmarks)
    # A skewed workload: 50 hot pairs queried over and over.
    pairs = random_query_pairs(graph.n, 50, seed=5) * 10
    engine = CachedQueryEngine(dyn) if cached else dyn

    def run():
        q = engine.query
        return [q(s, t) for s, t in pairs]

    benchmark(run)
