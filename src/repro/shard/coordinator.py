"""Scatter-gather coordinator: fault-tolerant serving over shard workers.

:class:`ShardedService` fronts a fleet of shard worker processes
(:mod:`repro.shard.worker`) holding a partitioned
:class:`~repro.core.plan.QueryPlan` (:mod:`repro.shard.partition`) with
``replication_factor`` replicas per shard (:mod:`repro.shard.replication`).
It serves the landmark-constrained ``QUERY`` — single pairs and batches —
with answers **bitwise-equal** to the unsharded plan, and it is built to
keep answering while workers die:

* **Routing.**  Each pair goes to the shard owning its *outer* endpoint
  (the one the plan scans outer: smaller label row, ties keep ``s`` —
  re-derived from the replicated ``row_lengths``, because float addition
  is not associative and the endpoint choice is part of the bitwise
  contract).  When the inner endpoint lives on another shard, its label
  row is fetched from the owning shard first (phase A) and shipped
  inline with the combine request (phase B) — rows are a few dozen
  floats, far cheaper than shipping ``k``-wide partial minima.
* **Retry + failover.**  Every shard RPC walks the shard's replicas in
  round-robin rotation under a deadline; failures trip the per-replica
  :class:`~repro.breaker.CircuitBreaker`, and attempts are spaced by the
  shared :class:`~repro.retry.BackoffPolicy` (jittered exponential),
  with every wait clamped to the request's remaining
  :class:`~repro.budget.Budget`.
* **Self-healing.**  A shard whose replicas are all dead is restarted
  *in-call* (bounded to one restart per RPC) from the coordinator's
  pinned slice cache; ``restart_dead()`` / post-batch auto-restart bring
  the fleet back to full strength.
* **Graceful degradation.**  A shard unreachable past the budget yields
  :class:`~repro.budget.DegradedResult` upper bounds (``inf`` — sound,
  never below the true distance) for its pairs, or the request sheds
  with :class:`~repro.errors.Overloaded` at admission; the coordinator
  never hangs: every wait is bounded by ``rpc_timeout``, ``max_attempts``
  and the budget.
* **Atomic epoch cutover.**  :meth:`publish` stages the next plan's
  slices on every shard under a fresh version number while in-flight
  batches keep reading the old one (workers hold ``{version: slice}``),
  then flips the coordinator's version pointer in one assignment and
  garbage-collects the old version.  Attached to a
  :class:`~repro.core.epoch.PlanRegistry`, the registry's publish
  listener marks the fleet stale and the next request refreshes —
  readers are always bitwise-consistent with *some* published epoch,
  never a mix.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor

from ..breaker import CircuitBreaker
from ..budget import Budget, DegradedResult
from ..errors import Overloaded, RequestError, ShardUnavailable
from ..obs import MetricsRegistry
from ..retry import BackoffPolicy
from . import worker as worker_mod
from .partition import partition_plan
from .replication import (
    ReplicaCallError,
    ReplicaDown,
    ReplicaSet,
    ReplicaTimeout,
)

INF = math.inf

__all__ = ["ShardedService"]

#: Slice loads move whole label arrays; give them more room than the
#: per-query RPC timeout (scaled, so tiny test timeouts stay tiny-ish).
_LOAD_TIMEOUT_FACTOR = 20.0


class ShardedService:
    """Sharded, replicated serving tier over one compiled plan.

    Parameters
    ----------
    plan:
        The :class:`~repro.core.plan.QueryPlan` to serve (version 1).
    nshards:
        Worker shards (contiguous vertex ranges).
    replication_factor:
        Replicas per shard (>= 1).  With 1 there is no failover target —
        a dead worker costs an in-call restart.
    rpc_timeout:
        Per-RPC reply deadline in seconds; also the breaker's base
        backoff.
    max_attempts:
        Full replica-rotation sweeps per RPC before the shard is
        declared unavailable.
    backoff:
        Shared :class:`~repro.retry.BackoffPolicy` pacing the sweeps
        (default: base ``rpc_timeout/4`` capped at ``rpc_timeout``).
    max_inflight:
        Admission bound on concurrent ``query``/``query_batch`` calls;
        excess requests shed with :class:`~repro.errors.Overloaded`.
    auto_restart:
        Restart dead replicas after each batch (best-effort).
    registry:
        Always-on :class:`~repro.obs.MetricsRegistry` (fresh by default);
        per-shard counters live under ``shard.<i>.``.

    Examples
    --------
    ::

        svc = ShardedService(index.compile_plan(), nshards=4,
                             replication_factor=2)
        try:
            answers = svc.query_batch(pairs)      # == plan.query per pair
        finally:
            svc.close()
    """

    def __init__(
        self,
        plan,
        nshards: int = 2,
        replication_factor: int = 1,
        *,
        rpc_timeout: float = 1.0,
        max_attempts: int = 3,
        backoff: BackoffPolicy | None = None,
        max_inflight: int = 64,
        breaker_threshold: int = 3,
        auto_restart: bool = True,
        registry: MetricsRegistry | None = None,
    ):
        if replication_factor < 1:
            raise RequestError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if max_attempts < 1:
            raise RequestError(f"max_attempts must be >= 1, got {max_attempts}")
        if rpc_timeout <= 0:
            raise RequestError(f"rpc_timeout must be > 0, got {rpc_timeout}")
        if max_inflight < 1:
            raise RequestError(f"max_inflight must be >= 1, got {max_inflight}")
        self.nshards = nshards
        self.replication_factor = replication_factor
        self.rpc_timeout = rpc_timeout
        self.max_attempts = max_attempts
        self.max_inflight = max_inflight
        self.auto_restart = auto_restart
        self._backoff = backoff if backoff is not None else BackoffPolicy(
            base_delay=rpc_timeout / 4.0, max_delay=rpc_timeout, jitter=0.1
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._refresh_lock = threading.Lock()
        self._inflight = 0
        self._version = 0
        self._parts: dict = {}  # version -> Partition (the pinned slices)
        self._stale = False
        self._plan_registry = None
        self._listener = None
        self._closed = False
        self._supervisor = None  # attached FleetSupervisor, if any

        def _breaker():
            return CircuitBreaker(
                threshold=breaker_threshold,
                base_delay=rpc_timeout,
                max_delay=rpc_timeout * 16.0,
            )

        self._sets = [
            ReplicaSet(i, replication_factor, _breaker)
            for i in range(nshards)
        ]
        for rset in self._sets:
            stale_counter = self.registry.counter(
                f"shard.{rset.shard_id}.stale_replies"
            )
            for replica in rset.replicas:
                replica.on_stale = stale_counter.inc
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, nshards), thread_name_prefix="shard-rpc"
        )
        try:
            for rset in self._sets:
                for replica in rset.replicas:
                    replica.spawn(fault=worker_mod._SHARD_FAULT)
            self.publish(plan)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Construction from MVCC epochs
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, plan_registry, **kwargs) -> "ShardedService":
        """Build a fleet serving ``plan_registry``'s head epoch and keep
        it current: every epoch publish marks the fleet stale, and the
        next request (or an explicit :meth:`refresh`) broadcasts the new
        snapshot with atomic cutover.

        Because :func:`repro.core.batch.apply_batch` commits a whole
        batch of landmark swaps and edge-weight changes under a *single*
        epoch publish, a batch of σ operations costs the fleet exactly
        one broadcast and one cutover — not σ of them.  The
        ``fleet.publishes`` counter makes this observable (and is
        asserted by the batch differential tests)."""
        svc = cls(plan_registry.head_plan(), **kwargs)
        svc._plan_registry = plan_registry

        def _on_publish(_epoch):
            svc._stale = True

        svc._listener = _on_publish
        plan_registry.add_publish_listener(_on_publish)
        return svc

    # ------------------------------------------------------------------
    # Epoch broadcast + atomic cutover
    # ------------------------------------------------------------------
    def publish(self, plan) -> int:
        """Partition ``plan``, stage it fleet-wide, cut over atomically.

        Returns the new version number.  Staging is parallel per shard;
        a replica that fails to stage is marked dead (it would serve
        version errors otherwise) and restarted lazily.  The cutover —
        one pointer assignment under the lock — only happens once *every*
        shard staged on at least one live replica; on failure the staged
        version is dropped and :class:`~repro.errors.ShardUnavailable`
        raised, leaving the old version serving untouched.
        """
        part = partition_plan(plan, self.nshards)
        # Transport tally: "shm" broadcasts ship only ShardSliceRefs
        # (the workers attach the plan's segment by name), "pickle"
        # broadcasts ship the label arrays over every worker pipe.
        self.registry.counter(f"fleet.transport.{part.transport}").inc()
        with self._lock:
            version = self._version + 1
        load_timeout = self.rpc_timeout * _LOAD_TIMEOUT_FACTOR

        def _stage(shard_id: int) -> bool:
            ok = False
            for replica in self._sets[shard_id].replicas:
                if not replica.alive:
                    continue
                payload = part.slices[shard_id]
                try:
                    replica.call("load", (version, payload), load_timeout)
                    ok = True
                    continue
                except ReplicaCallError as exc:
                    if not str(exc).startswith("PlanIntegrityError"):
                        replica.mark_dead()
                        self._scount(shard_id, "stage_failures")
                        continue
                    # The worker's attach-time CRC check caught segment
                    # corruption.  The worker is *healthy* — do not kill
                    # it; quarantine the segment coordinator-side (so
                    # the owner republishes) and re-stage this shard
                    # over the pickle transport from the canonical
                    # arrays, which corruption cannot touch.
                    self._quarantine_from_error(str(exc))
                    self.registry.counter("fleet.integrity_fallbacks").inc()
                except (ReplicaDown, ReplicaTimeout):
                    replica.mark_dead()
                    self._scount(shard_id, "stage_failures")
                    continue
                try:
                    replica.call(
                        "load",
                        (version, part.restart_slice(shard_id)),
                        load_timeout,
                    )
                    ok = True
                except (ReplicaDown, ReplicaTimeout, ReplicaCallError):
                    replica.mark_dead()
                    self._scount(shard_id, "stage_failures")
            return ok

        staged = list(self._executor.map(_stage, range(self.nshards)))
        if not all(staged):
            self._broadcast_drop(version)
            bad = [i for i, ok in enumerate(staged) if not ok]
            raise ShardUnavailable(
                f"epoch broadcast failed: no live replica staged version "
                f"{version} on shards {bad}",
                shard=bad[0],
            )
        with self._lock:
            old = self._version
            self._parts[version] = part
            self._version = version  # the atomic cutover
            self._stale = False
            self._parts.pop(old, None)
        if old:
            self._broadcast_drop(old)
        self.registry.counter("fleet.publishes").inc()
        self.registry.gauge("fleet.version").set(version)
        return version

    def _broadcast_drop(self, version: int) -> None:
        for rset in self._sets:
            for replica in rset.replicas:
                if replica.alive:
                    try:
                        replica.call("drop", (version,), self.rpc_timeout)
                    except (ReplicaDown, ReplicaTimeout, ReplicaCallError):
                        pass  # GC is best-effort; restarts start clean

    def refresh(self) -> bool:
        """Re-broadcast the attached registry's head epoch if stale.

        Returns True when a new version was published.  Serialized so
        concurrent readers noticing staleness broadcast once, not N
        times.
        """
        plan_registry = self._plan_registry
        if plan_registry is None or not self._stale:
            return False
        with self._refresh_lock:
            if not self._stale:
                return False
            self.publish(plan_registry.head_plan())
            return True

    # ------------------------------------------------------------------
    # RPC with retry, failover and in-call restart
    # ------------------------------------------------------------------
    def _scount(self, shard_id: int, name: str, n: int = 1) -> None:
        self.registry.counter(f"shard.{shard_id}.{name}").inc(n)

    def _rpc(self, shard_id: int, op: str, payload, budget: Budget | None):
        """One logical shard call; survives replica death and hangs.

        Raises :class:`ShardUnavailable` only after ``max_attempts``
        rotation sweeps (with backoff between them) plus at most one
        in-call restart have all failed, or the budget ran dry.
        """
        rset = self._sets[shard_id]
        restarted = False
        for attempt in range(self.max_attempts):
            if budget is not None and budget.check():
                break
            candidates = [
                r for r in rset.rotation() if r.alive and r.breaker.allow()
            ]
            if not candidates and not restarted:
                restarted = True
                revived = self._restart_one(rset)
                if revived is not None:
                    candidates = [revived]
            for replica in candidates:
                timeout = self.rpc_timeout
                if budget is not None:
                    timeout = budget.clamp(timeout)
                    if timeout <= 0:
                        break
                self._scount(shard_id, "rpc.calls")
                try:
                    result = replica.call(op, payload, timeout)
                except ReplicaTimeout:
                    self._scount(shard_id, "rpc.timeouts")
                    replica.breaker.record_failure()
                except ReplicaDown:
                    self._scount(shard_id, "rpc.deaths")
                    replica.breaker.record_failure()
                except ReplicaCallError:
                    self._scount(shard_id, "rpc.errors")
                    replica.breaker.record_failure()
                else:
                    replica.breaker.record_success()
                    return result
                self._scount(shard_id, "rpc.failovers")
            if attempt + 1 < self.max_attempts:
                self._scount(shard_id, "rpc.retries")
                cap = budget.remaining_seconds() if budget is not None else None
                self._backoff.pause(attempt, cap=cap)
        self._scount(shard_id, "unavailable")
        raise ShardUnavailable(
            f"shard {shard_id}: no replica answered {op!r} after "
            f"{self.max_attempts} attempts",
            shard=shard_id,
        )

    @staticmethod
    def _quarantine_from_error(message: str) -> None:
        """Quarantine the segment a worker's integrity error names.

        Worker error replies are strings (``"PlanIntegrityError: segment
        'psm_...' ..."``); the quoted name is all the coordinator needs
        to bar its own side from the segment and trigger republish.
        """
        import re

        from ..core.shm import quarantine

        match = re.search(r"segment '([^']+)'", message)
        if match:
            quarantine(match.group(1))

    def _restart_one(self, rset: ReplicaSet, replica=None):
        """Respawn one dead replica from the pinned slices; None on failure.

        ``replica`` picks a specific dead member (the supervisor's
        targeted repair); by default the first dead one is revived.
        """
        if replica is None:
            dead = rset.dead()
            if not dead:
                return None
            replica = dead[0]
        elif replica.alive:
            return None
        with self._lock:
            parts = dict(self._parts)
        load_timeout = self.rpc_timeout * _LOAD_TIMEOUT_FACTOR
        try:
            replica.spawn(fault=worker_mod._SHARD_FAULT)
            for version, part in parts.items():
                # Always a concrete slice: a ref would race epoch
                # retirement — the plan may have unlinked its segment
                # since this version was published.
                replica.call(
                    "load",
                    (version, part.restart_slice(rset.shard_id)),
                    load_timeout,
                )
        except (ReplicaDown, ReplicaTimeout, ReplicaCallError):
            replica.mark_dead()
            self._scount(rset.shard_id, "restart_failures")
            return None
        replica.breaker.record_success()  # fresh process: close the breaker
        self._scount(rset.shard_id, "restarts")
        self.registry.counter("fleet.restarts").inc()
        return replica

    def restart_dead(self) -> int:
        """Respawn every dead replica from the pinned slices; returns the
        number revived."""
        revived = 0
        for rset in self._sets:
            while rset.dead():
                if self._restart_one(rset) is None:
                    break
                revived += 1
        return revived

    # ------------------------------------------------------------------
    # Supervisor surface
    # ------------------------------------------------------------------
    @property
    def replica_sets(self) -> tuple:
        """The per-shard :class:`ReplicaSet`\\ s (read-only view) — the
        surface the :class:`~repro.shard.supervisor.FleetSupervisor`
        heartbeats and repairs through."""
        return tuple(self._sets)

    def restart_replica(self, rset: ReplicaSet, replica=None) -> bool:
        """Restart one dead replica of ``rset`` from the pinned slices.

        Replays **every** pinned version into the fresh process (the
        epoch re-broadcast) and closes its breaker.  Returns ``True`` on
        success; ``False`` when nothing was dead or the restart failed
        (the supervisor's backoff ladder decides when to try again).
        """
        return self._restart_one(rset, replica) is not None

    def attach_supervisor(self, supervisor) -> None:
        """Roll ``supervisor``'s verdict into :meth:`health` from now on."""
        self._supervisor = supervisor

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _admit(self):
        with self._lock:
            if self._closed:
                raise RequestError("ShardedService is closed")
            if self._inflight >= self.max_inflight:
                self.registry.counter("fleet.shed").inc()
                raise Overloaded(
                    f"sharded fleet at max_inflight={self.max_inflight}"
                )
            self._inflight += 1

    def _release(self):
        with self._lock:
            self._inflight -= 1

    def query(self, s: int, t: int, budget: Budget | None = None) -> float:
        """``QUERY(s, t)`` — bitwise-equal to the unsharded plan, or a
        :class:`~repro.budget.DegradedResult` ``inf`` upper bound when the
        owning shard is unreachable within budget."""
        return self.query_batch([(s, t)], budget)[0]

    def query_batch(self, pairs, budget: Budget | None = None) -> list[float]:
        """Scatter-gather ``QUERY`` over ``pairs``; never hangs.

        Answers are positionally aligned with ``pairs``.  Every answer is
        either bitwise-equal to ``plan.query(s, t)`` or a
        :class:`~repro.budget.DegradedResult` (``reason`` =
        ``"shard_unavailable"`` / the budget's expiry reason).
        """
        pairs = list(pairs)
        self._admit()
        try:
            if self._stale:
                self.refresh()
            with self._lock:
                version = self._version
                part = self._parts[version]
            self.registry.counter("fleet.batches").inc()
            self.registry.counter("fleet.queries").inc(len(pairs))
            return self._run_batch(pairs, version, part, budget)
        finally:
            self._release()
            if self.auto_restart and any(r.dead() for r in self._sets):
                self.restart_dead()

    def _run_batch(self, pairs, version, part, budget):
        n = part.n
        rl = part.row_lengths
        results: list = [None] * len(pairs)
        per_shard: dict[int, list] = {}
        remote_needs: dict[int, set] = {}
        for idx, (s, t) in enumerate(pairs):
            if not (0 <= s < n and 0 <= t < n):
                raise RequestError(
                    f"query pair ({s}, {t}) outside vertex range [0, {n})"
                )
            if not rl[s] or not rl[t]:
                results[idx] = INF  # what the plan answers, shard-free
                continue
            if budget is not None:
                budget.charge(min(rl[s], rl[t]))
            # The plan's outer/inner selection, replicated (see module doc).
            if rl[s] > rl[t]:
                outer_v, inner_v = t, s
            else:
                outer_v, inner_v = s, t
            home = part.shard_of(outer_v)
            inner_home = part.shard_of(inner_v)
            if inner_home != home:
                remote_needs.setdefault(inner_home, set()).add(inner_v)
                per_shard.setdefault(home, []).append((idx, s, t, inner_v))
            else:
                per_shard.setdefault(home, []).append((idx, s, t, None))

        # Phase A: fetch cross-shard inner rows from their owners.
        rows_cache: dict[int, tuple] = {}
        lost_rows: set[int] = set()
        if remote_needs:
            def _fetch(item):
                owner, vs = item
                vs = sorted(vs)
                try:
                    got = self._rpc(owner, "rows", (version, vs), budget)
                    return vs, got
                except ShardUnavailable:
                    return vs, None

            for vs, got in self._executor.map(
                _fetch, remote_needs.items()
            ):
                if got is None:
                    lost_rows.update(vs)
                else:
                    rows_cache.update(zip(vs, got))

        # Phase B: per-shard combine with inner rows inlined when remote.
        def _combine(item):
            shard_id, entries = item
            items = []
            live_idx = []
            for idx, s, t, inner_v in entries:
                if inner_v is not None and inner_v in lost_rows:
                    continue  # degraded below
                items.append(
                    (s, t, rows_cache[inner_v] if inner_v is not None else None)
                )
                live_idx.append(idx)
            if not items:
                return [], []
            try:
                values = self._rpc(
                    shard_id, "combine", (version, items), budget
                )
            except ShardUnavailable:
                return live_idx, None
            return live_idx, values

        for (shard_id, entries), (live_idx, values) in zip(
            per_shard.items(),
            self._executor.map(_combine, per_shard.items()),
        ):
            if values is not None:
                for idx, value in zip(live_idx, values):
                    results[idx] = value

        # Anything still unanswered degrades: a sound (infinite) upper
        # bound tagged with why, never a hang and never a wrong number.
        reason = "shard_unavailable"
        if budget is not None and budget.exceeded:
            reason = budget.reason
        degraded = 0
        for idx, value in enumerate(results):
            if value is None:
                results[idx] = DegradedResult(
                    INF, is_upper_bound=True, reason=reason
                )
                degraded += 1
        if degraded:
            self.registry.counter("fleet.degraded").inc(degraded)
        return results

    # ------------------------------------------------------------------
    # Health + lifecycle
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Fleet-level roll-up: per-shard replica/breaker state + totals.

        Per-replica snapshots carry breaker ``state`` and
        ``breaker_retry_after`` (seconds until a tripped breaker next
        admits a probe) plus ``stale_replies``.  With a
        :class:`~repro.shard.supervisor.FleetSupervisor` attached the
        top-level ``status`` is the *supervised* verdict — hysteresis
        included, so a fleet that just finished a restart storm reports
        ``"recovering"`` until it has stayed clean long enough — and the
        raw instantaneous verdict moves to ``"raw_status"``.
        """
        shards = {}
        alive = 0
        for rset in self._sets:
            snap = rset.snapshot()
            snap["breaker_open"] = any(
                r.breaker.state != "closed" for r in rset.replicas
            )
            shards[str(rset.shard_id)] = snap
            alive += snap["alive"]
        counters = {
            name: self.registry.counter(name).value
            for name in (
                "fleet.batches",
                "fleet.queries",
                "fleet.degraded",
                "fleet.shed",
                "fleet.restarts",
                "fleet.publishes",
                "fleet.integrity_fallbacks",
            )
        }
        with self._lock:
            version = self._version
            inflight = self._inflight
        total = self.nshards * self.replication_factor
        raw_status = "ok" if alive == total else (
            "degraded" if all(
                rset.alive_count() for rset in self._sets
            ) else "unavailable"
        )
        report = {
            "status": raw_status,
            "version": version,
            "stale": self._stale,
            "inflight": inflight,
            "replicas_alive": alive,
            "replicas_total": total,
            "shards": shards,
            **counters,
        }
        supervisor = self._supervisor
        if supervisor is not None:
            report["raw_status"] = raw_status
            report["supervisor"] = supervisor.state()
            # Hysteresis: only the supervisor may call the fleet "ok",
            # and only after enough consecutive clean sweeps; a raw
            # outage (worse than the supervisor's last verdict) still
            # shows immediately.
            sup_status = supervisor.status
            rank = {"ok": 0, "recovering": 1, "degraded": 2, "unavailable": 3}
            report["status"] = max(
                raw_status, sup_status, key=lambda s: rank.get(s, 3)
            )
        return report

    def metrics(self) -> dict:
        """Snapshot of the always-on fleet registry."""
        return self.registry.snapshot()

    def close(self) -> None:
        """Shut the fleet down (idempotent): polite shutdown RPCs, then
        hard termination, then the RPC thread pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._supervisor is not None:
            try:
                self._supervisor.stop()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        if self._plan_registry is not None and self._listener is not None:
            self._plan_registry.remove_publish_listener(self._listener)
        for rset in self._sets:
            for replica in rset.replicas:
                if replica.alive:
                    try:
                        replica.call("shutdown", None, min(self.rpc_timeout, 0.5))
                    except (ReplicaDown, ReplicaTimeout, ReplicaCallError):
                        pass
            rset.terminate()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedService(nshards={self.nshards}, "
            f"rf={self.replication_factor}, version={self._version})"
        )
