"""``repro.shard`` — sharded, replicated serving of compiled query plans.

One process cannot serve millions of users.  This package partitions a
compiled :class:`~repro.core.plan.QueryPlan` by contiguous vertex range
across worker processes — each shard holding its label-row slice plus a
full replica of the small dense ``δ_H`` table — and fronts the fleet
with a fault-tolerant scatter-gather coordinator:

* :mod:`repro.shard.partition` — slicing the plan's canonical arrays
  (:class:`ShardSlice`, :func:`partition_plan`);
* :mod:`repro.shard.worker` — the worker process: a versioned-state RPC
  loop whose ``combine`` op is bitwise-equal to the plan's ``QUERY``;
* :mod:`repro.shard.replication` — per-replica process lifecycle,
  pipes, and circuit breakers;
* :mod:`repro.shard.coordinator` — :class:`ShardedService`: routing,
  deadline-aware retry with jittered backoff, replica failover, in-call
  restart from the pinned epoch, graceful degradation, fleet
  ``health()``, and atomic epoch cutover;
* :mod:`repro.shard.supervisor` — :class:`FleetSupervisor`: out-of-band
  heartbeats that catch dead *and hung* workers between queries,
  backoff-damped proactive restarts with epoch re-broadcast, and a
  hysteresis-filtered verdict rolled into fleet ``health()``.

``python -m repro.shard`` runs a seeded shard-fault sweep (the CI chaos
lane's fleet exercise, including supervisor convergence and segment
corruption) and writes the fleet-health JSON artifact.
"""

from .coordinator import ShardedService
from .partition import Partition, ShardSlice, partition_plan
from .supervisor import FleetSupervisor

__all__ = [
    "FleetSupervisor",
    "Partition",
    "ShardSlice",
    "ShardedService",
    "partition_plan",
]
