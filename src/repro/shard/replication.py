"""Replica lifecycle for one shard: spawn, ping, call, restart, retire.

Each shard runs ``replication_factor`` identical worker processes
(:func:`repro.shard.worker.shard_worker_main`) holding the same slice.
:class:`Replica` owns one such process end-to-end — the pipe, the
request-id sequence, a per-replica :class:`~repro.breaker.CircuitBreaker`
and liveness bookkeeping — and :class:`ReplicaSet` groups a shard's
replicas with the spawn/restart machinery the coordinator drives.

The RPC discipline lives in :meth:`Replica.call`:

* every request carries a fresh ``req_id``; replies are matched on it,
  so a *stale* reply (a slow worker answering after we timed out and
  moved on) is drained and discarded instead of being mistaken for the
  answer to the current request — the drain is **bounded**
  (``_MAX_STALE_REPLIES`` per call, tallied in ``stale_replies`` and the
  fleet's ``shard.<i>.stale_replies`` counter), so a babbling or
  fault-injected worker feeding garbage replies cannot spin the loop
  forever;
* a timeout raises :class:`ReplicaTimeout` and leaves the process alive
  (hung-or-slow is not proof of death — the next call may drain its
  late reply and succeed);
* a broken pipe raises :class:`ReplicaDown` and marks the replica dead;
* an application-level error reply raises :class:`ReplicaCallError`.

All three are *internal* signals: the coordinator's retry/failover loop
translates them into breaker records and, ultimately, into
:class:`~repro.errors.ShardUnavailable` / degraded answers.  Worker
processes are daemonic, so an abandoned fleet can never outlive the
coordinator process.
"""

from __future__ import annotations

import multiprocessing
import time

from ..breaker import CircuitBreaker
from .worker import shard_worker_main

__all__ = [
    "Replica",
    "ReplicaSet",
    "ReplicaCallError",
    "ReplicaDown",
    "ReplicaTimeout",
]


class ReplicaDown(Exception):
    """The replica's process or pipe is gone; it needs a restart."""


class ReplicaTimeout(Exception):
    """The replica did not answer within the deadline (alive or hung)."""


class ReplicaCallError(Exception):
    """The replica answered with an error reply (it is alive)."""


def _mp_context():
    """Prefer ``fork`` (cheap, no re-import); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Stale replies drained per call before declaring the worker babbling.
#: A healthy worker leaves at most a handful of late replies in the pipe
#: (one per timed-out request); dozens in a single call means the
#: process is flooding the pipe and is treated as a timeout.
_MAX_STALE_REPLIES = 64


class Replica:
    """One worker process of one shard, with its breaker and pipe."""

    __slots__ = (
        "shard_id",
        "replica_id",
        "breaker",
        "alive",
        "restarts",
        "stale_replies",
        "on_stale",
        "_proc",
        "_conn",
        "_req_seq",
        "_clock",
        "_ctx",
        "_fault",
    )

    def __init__(self, shard_id, replica_id, breaker, ctx=None, clock=None):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.breaker = breaker
        self.alive = False
        self.restarts = 0
        #: Lifetime count of stale (mismatched req_id) replies drained.
        self.stale_replies = 0
        #: Optional ``callable(n)`` the coordinator wires to its
        #: ``shard.<i>.stale_replies`` counter.
        self.on_stale = None
        self._proc = None
        self._conn = None
        self._req_seq = 0
        self._clock = clock if clock is not None else time.monotonic
        self._ctx = ctx if ctx is not None else _mp_context()
        self._fault = None

    @property
    def pid(self):
        proc = self._proc
        return proc.pid if proc is not None else None

    def spawn(self, fault=None) -> None:
        """Start (or replace) the worker process; counts as a restart when
        one ran before."""
        if self._proc is not None:
            self.terminate()
            self.restarts += 1
        self._fault = fault
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child, self.shard_id, self.replica_id, fault),
            name=f"shard-{self.shard_id}-r{self.replica_id}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._proc = proc
        self._conn = parent
        self.alive = True

    def call(self, op: str, payload, timeout: float):
        """One RPC; raises ``ReplicaDown`` / ``ReplicaTimeout`` /
        ``ReplicaCallError`` (never blocks past ``timeout``)."""
        if not self.alive or self._conn is None:
            raise ReplicaDown(f"{self!r} is not running")
        self._req_seq += 1
        req_id = self._req_seq
        conn = self._conn
        try:
            conn.send((req_id, op, payload))
        except (OSError, BrokenPipeError, ValueError) as exc:
            self.mark_dead()
            raise ReplicaDown(f"{self!r}: send failed: {exc}") from exc
        deadline = self._clock() + timeout
        drained = 0
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise ReplicaTimeout(
                    f"{self!r}: no reply to {op!r} within {timeout:.3f}s"
                )
            try:
                if not conn.poll(remaining):
                    raise ReplicaTimeout(
                        f"{self!r}: no reply to {op!r} within {timeout:.3f}s"
                    )
                rid, ok, result = conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                self.mark_dead()
                raise ReplicaDown(f"{self!r}: pipe broke: {exc}") from exc
            if rid != req_id:
                # Stale reply from an earlier timed-out call.  Bounded:
                # a babbling worker could otherwise feed this loop
                # replies faster than the deadline drains.
                drained += 1
                self.stale_replies += 1
                if self.on_stale is not None:
                    self.on_stale(1)
                if drained >= _MAX_STALE_REPLIES:
                    raise ReplicaTimeout(
                        f"{self!r}: drained {drained} stale replies to "
                        f"{op!r} without a matching one (babbling worker)"
                    )
                continue
            if not ok:
                raise ReplicaCallError(result)
            return result

    def mark_dead(self) -> None:
        self.alive = False

    def terminate(self) -> None:
        """Hard-stop the process and close the pipe (idempotent)."""
        self.alive = False
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        proc, self._proc = self._proc, None
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=2.0)

    def snapshot(self) -> dict:
        """Flat health view for the fleet roll-up.

        ``breaker_retry_after`` is the seconds until a non-closed breaker
        next admits a half-open probe (0.0 when closed) — operators can
        see *when* a tripped replica will be retried, not just that it
        tripped.
        """
        return {
            "alive": self.alive,
            "pid": self.pid,
            "restarts": self.restarts,
            "stale_replies": self.stale_replies,
            "breaker": self.breaker.state,
            "breaker_retry_after": self.breaker.retry_after(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica(shard={self.shard_id}, replica={self.replica_id}, "
            f"alive={self.alive}, pid={self.pid})"
        )


class ReplicaSet:
    """A shard's replicas plus round-robin ordering for failover."""

    __slots__ = ("shard_id", "replicas", "_next")

    def __init__(
        self,
        shard_id: int,
        replication_factor: int,
        breaker_factory,
        ctx=None,
        clock=None,
    ):
        self.shard_id = shard_id
        self.replicas = [
            Replica(shard_id, r, breaker_factory(), ctx=ctx, clock=clock)
            for r in range(replication_factor)
        ]
        self._next = 0

    def rotation(self):
        """Replicas in round-robin order, advancing the start each call —
        spreads load across replicas and varies the failover order."""
        k = len(self.replicas)
        start = self._next
        self._next = (start + 1) % k
        return [self.replicas[(start + i) % k] for i in range(k)]

    def alive_count(self) -> int:
        return sum(1 for r in self.replicas if r.alive)

    def dead(self):
        return [r for r in self.replicas if not r.alive]

    def terminate(self) -> None:
        for r in self.replicas:
            r.terminate()

    def snapshot(self) -> dict:
        return {
            "alive": self.alive_count(),
            "replicas": [r.snapshot() for r in self.replicas],
        }
