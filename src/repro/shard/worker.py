"""Shard worker process: serves one vertex range's label rows over a pipe.

A worker is a plain loop over a ``multiprocessing`` pipe speaking a tiny
framed RPC protocol: requests are ``(req_id, op, payload)`` tuples,
replies are ``(req_id, ok, payload)``.  The ``req_id`` echo lets the
coordinator discard stale replies after a timeout — a worker that was
merely slow does not poison the next request on the same pipe.

State is **versioned**: the worker holds ``{version: _ShardState}`` and
every data RPC names the version it wants, so an epoch broadcast can
stage version ``V+1`` on every shard while in-flight batches keep reading
``V`` — the coordinator flips its own version pointer only after every
shard confirmed the stage (atomic cutover), then garbage-collects ``V``
with ``drop`` RPCs.  A worker asked for a version it does not hold
answers an error, never a wrong-version result.

Ops::

    ping                      -> liveness + held versions + counters
    load    (version, slice)  -> stage a ShardSlice under that version
    drop    (version,)        -> forget a staged version
    rows    (version, [v..])  -> label rows of owned vertices v
    combine (version, items)  -> landmark-constrained minima (see below)
    shutdown                  -> reply, then exit

``combine`` is the serving op.  Each item is ``(s, t, extra_row)``: the
worker re-derives the plan's outer/inner endpoint choice from its full
``row_lengths`` replica (the **outer** endpoint is always owned — the
coordinator routed the pair here for that reason), takes the inner row
locally when owned or from ``extra_row`` when the coordinator shipped it
from the owning shard, and evaluates exactly
:meth:`repro.core.plan.QueryPlan.query`'s kernel — same float
association, same g-row memoization thresholds — so the merged answer is
bitwise-equal to the unsharded plan.

Fault injection: :data:`_SHARD_FAULT` is the seam
:func:`repro.testing.faults.inject_shard_fault` arms; the coordinator
ships it to each worker at spawn, and the worker consults it once per
RPC named in the fault's ``ops`` (the data RPCs by default; add
``"ping"`` to fault heartbeat probes) — kill / hang / slow / raise.
Always ``None`` in production.
"""

from __future__ import annotations

import math

from ..core.plan import G_ROW_CACHE_CAP, ROW_HOT_THRESHOLD
from .partition import ShardSlice, ShardSliceRef

INF = math.inf

__all__ = ["shard_worker_main"]

#: Test seam (see repro.testing.faults.inject_shard_fault).  Read by the
#: *coordinator* process at spawn time and shipped to the worker as a
#: process argument, so it survives restarts and the spawn start method.
_SHARD_FAULT = None


class _ShardState:
    """One staged slice, unpacked into the plan's serving shapes.

    Mirrors the interpreter-friendly views ``QueryPlan._build_views``
    derives — per-vertex ``(distance, slot)`` row tuples and per-slot
    highway row lists — plus the plan's g-row memoization (same
    thresholds).  The g-row substitution is bitwise-safe regardless of
    *which* endpoints go hot (see the lemma in :mod:`repro.core.plan`):
    the worker's heat counters need not match the oracle's.
    """

    __slots__ = ("lo", "hi", "rows", "hwrows", "row_lengths", "_g_rows", "_g_freq")

    def __init__(self, sl: ShardSlice):
        self.lo = sl.lo
        self.hi = sl.hi
        offsets = sl.offsets
        slots = sl.slots
        dists = sl.dists
        self.rows = [
            tuple(
                (dists[i], slots[i])
                for i in range(offsets[v], offsets[v + 1])
            )
            for v in range(sl.hi - sl.lo)
        ]
        k = sl.k
        hwlist = sl.hw.tolist()
        self.hwrows = [hwlist[i * k : (i + 1) * k] for i in range(k)]
        self.row_lengths = sl.row_lengths
        self._g_rows = {}
        self._g_freq = {}

    def row(self, v: int):
        return self.rows[v - self.lo]

    def _g_row(self, v: int, row):
        g = self._g_rows.get(v)
        if g is not None:
            return g
        freq = self._g_freq
        count = freq.get(v, 0) + 1
        if count < ROW_HOT_THRESHOLD:
            freq[v] = count
            return None
        if len(self._g_rows) >= G_ROW_CACHE_CAP:
            self._g_rows.clear()
            freq.clear()
        hwrows = self.hwrows
        k = len(hwrows)
        g = [INF] * k
        for di, si in row:
            hwrow = hwrows[si]
            for j in range(k):
                d = di + hwrow[j]
                if d < g[j]:
                    g[j] = d
        self._g_rows[v] = g
        return g

    def combine(self, s: int, t: int, extra_row):
        """``QUERY(s, t)`` with the outer endpoint owned by this shard."""
        rl = self.row_lengths
        if not rl[s] or not rl[t]:
            return INF
        # Same selection rule as QueryPlan.query: scan the smaller row
        # outer, ties keep s — float addition is not associative, so the
        # choice is part of the bitwise contract.
        if rl[s] > rl[t]:
            outer_v, inner_v = t, s
        else:
            outer_v, inner_v = s, t
        outer = self.row(outer_v)
        inner = (
            self.row(inner_v)
            if self.lo <= inner_v < self.hi
            else extra_row
        )
        g = self._g_row(outer_v, outer)
        if g is not None:
            best = INF
            for dj, sj in inner:
                d = g[sj] + dj
                if d < best:
                    best = d
            return best
        hwrows = self.hwrows
        best = INF
        for di, si in outer:
            hwrow = hwrows[si]
            for dj, sj in inner:
                d = di + hwrow[sj] + dj
                if d < best:
                    best = d
        return best


def shard_worker_main(conn, shard_id: int, replica_id: int, fault=None) -> None:
    """Entry point of a shard worker process (top-level: spawn-picklable)."""
    states: dict[int, _ShardState] = {}
    served = 0
    data_ordinal = 0
    while True:
        try:
            req_id, op, payload = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away: nothing left to serve
        try:
            if fault is not None and op in getattr(
                fault, "ops", ("rows", "combine")
            ):
                ordinal = data_ordinal
                data_ordinal += 1
                fault.fire(shard_id, replica_id, ordinal)
            if op in ("rows", "combine"):
                version = payload[0]
                state = states.get(version)
                if state is None:
                    raise KeyError(
                        f"shard {shard_id} replica {replica_id} does not "
                        f"hold version {version}"
                    )
                if op == "rows":
                    result = [state.row(v) for v in payload[1]]
                else:
                    result = [
                        state.combine(s, t, extra)
                        for s, t, extra in payload[1]
                    ]
                served += len(result)
            elif op == "ping":
                result = {
                    "shard": shard_id,
                    "replica": replica_id,
                    "versions": sorted(states),
                    "served": served,
                }
            elif op == "load":
                version, sl = payload
                if isinstance(sl, ShardSliceRef):
                    # Shared-memory transport: only the ref crossed the
                    # pipe; attach the plan's segment by name and cut
                    # this shard's subrange out locally.
                    sl = sl.materialize()
                states[version] = _ShardState(sl)
                result = version
            elif op == "drop":
                states.pop(payload[0], None)
                result = payload[0]
            elif op == "shutdown":
                conn.send((req_id, True, None))
                return
            else:
                raise ValueError(f"unknown shard op {op!r}")
        except SystemExit:
            raise
        except BaseException as exc:  # noqa: BLE001 - reply, don't die
            try:
                conn.send((req_id, False, f"{type(exc).__name__}: {exc}"))
            except (OSError, BrokenPipeError):
                return
            continue
        try:
            conn.send((req_id, True, result))
        except (OSError, BrokenPipeError):
            return
