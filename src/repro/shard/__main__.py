"""Seeded shard-fault sweep: the CI chaos lane's fleet exercise.

Builds a pinned HCL instance, stands up a sharded fleet, and for each
seed injects one fault — a worker fault (kill / hang / slow, random
shard and replica) mid-``query_batch``, or a byte-flipped shared-memory
segment (``corrupt``) the workers must detect at attach time — asserting
the robustness contract:

* every answer is bitwise-equal to the unsharded plan, or a
  budget-expired :class:`~repro.budget.DegradedResult`;
* a corrupted segment is never served: the CRC check catches it on
  attach and the fleet stages over the pickle transport instead
  (``fleet.integrity_fallbacks`` ticks);
* the coordinator never hangs (each batch is wall-clock bounded);
* after the batch, a **supervisor convergence storm** terminates random
  replicas and a :class:`~repro.shard.supervisor.FleetSupervisor` must
  drive the fleet back to ``ok`` within a bounded number of ticks
  (recorded per seed as ``convergence_ticks``);
* shard loss and recovery show up in fleet ``health()``.

Writes the final fleet-health JSON (per-seed outcomes + the last health
snapshot + the metrics registry) to ``--out`` as the CI artifact and
exits non-zero on any contract violation.

Usage::

    python -m repro.shard --shards 4 --rf 2 --seeds 5 --out fleet-health.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from .coordinator import ShardedService
from .supervisor import FleetSupervisor
from ..budget import Budget, DegradedResult
from ..core import build_hcl, select_landmarks
from ..core.shm import quarantined_segments
from ..graphs import barabasi_albert
from ..retry import BackoffPolicy
from ..testing import ShardFault, corrupt_segment, inject_shard_fault

#: A hung worker must outlast the RPC timeout to count as hung.
RPC_TIMEOUT = 0.25
HANG_SECONDS = 1.0
SLOW_SECONDS = 0.05
#: Hard wall-clock ceiling per faulted batch: generous against the retry
#: ladder (attempts × replicas × timeout + backoff), tiny against a hang.
BATCH_DEADLINE = 30.0
#: Bounded-convergence budget for the post-batch supervisor storm.
MAX_CONVERGENCE_TICKS = 40

#: Staging a corrupted segment retries each replica over the pickle
#: transport; give the load RPCs room (the query RPC timeout above is
#: deliberately tight to catch hangs).
CORRUPT_RPC_TIMEOUT = 1.0


def _converge_after_storm(svc, srng, outcome) -> bool:
    """Kill replicas, then require supervisor-driven return to ``ok``."""
    everyone = [
        (rset, replica)
        for rset in svc.replica_sets
        for replica in rset.replicas
    ]
    for _, replica in srng.sample(everyone, srng.randint(1, 2)):
        replica.terminate()
    sup = FleetSupervisor(
        svc,
        ping_timeout=2.0,
        hang_ticks=2,
        hysteresis_ticks=2,
        restart_backoff=BackoffPolicy(
            base_delay=0.01, max_delay=0.05, jitter=0.0
        ),
    )
    start = time.monotonic()
    try:
        spent = sup.run_until_ok(MAX_CONVERGENCE_TICKS)
    except RuntimeError:
        outcome["convergence_ticks"] = None
        return False
    outcome["convergence_ticks"] = spent
    outcome["convergence_seconds"] = round(time.monotonic() - start, 3)
    outcome["supervisor_restarts"] = sup.registry.counter(
        "supervisor.restarts"
    ).value
    return svc.health()["status"] == "ok"


def run_sweep(args) -> dict:
    graph = barabasi_albert(args.n, 3, seed=7)
    landmarks = select_landmarks(graph, args.landmarks, policy="degree")
    index = build_hcl(graph, landmarks)
    plan = index.compile_plan()

    rng = random.Random(1234)
    pairs = [
        (rng.randrange(args.n), rng.randrange(args.n))
        for _ in range(args.pairs)
    ]
    oracle = [plan.query(s, t) for s, t in pairs]

    kinds = ["kill", "hang", "slow"]
    if args.corruption:
        kinds.append("corrupt")
    outcomes = []
    failures = 0
    health = {}
    for seed in range(args.seeds):
        srng = random.Random(seed)
        kind = kinds[seed % len(kinds)]
        outcome = {"seed": seed, "fault": {"kind": kind}}
        if kind == "corrupt":
            # Byte-flip the live segment before the fleet attaches it:
            # every worker's CRC check must refuse it, and staging must
            # complete over pickle slices from the clean heap arrays.
            fault = None
            rpc_timeout = CORRUPT_RPC_TIMEOUT
            shared = plan.shared_buffers()
            if shared is None:
                print(f"seed {seed}: corrupt skipped (no shared memory)")
                outcome.update({"ok": True, "skipped": "no shared memory"})
                outcomes.append(outcome)
                continue
            corrupt_segment(shared.ref, offset=srng.randrange(256))
        else:
            # Replicas see only a handful of data RPCs per batch; firing
            # on the victim's first one lands the fault mid-batch.
            rpc_timeout = RPC_TIMEOUT
            fault = ShardFault(
                kind=kind,
                shard=srng.randrange(args.shards),
                replica=srng.randrange(args.rf),
                requests=(0,),
                seconds=HANG_SECONDS if kind == "hang" else SLOW_SECONDS,
            )
            outcome["fault"].update(
                {
                    "shard": fault.shard,
                    "replica": fault.replica,
                    "request": fault.requests[0],
                }
            )
        with inject_shard_fault(fault) if fault else _noop():
            svc = ShardedService(
                plan,
                nshards=args.shards,
                replication_factor=args.rf,
                rpc_timeout=rpc_timeout,
            )
            try:
                start = time.monotonic()
                got = svc.query_batch(
                    pairs, Budget(seconds=BATCH_DEADLINE / 2)
                )
                elapsed = time.monotonic() - start
                exact = degraded = wrong = 0
                for want, have in zip(oracle, got):
                    if isinstance(have, DegradedResult):
                        degraded += 1
                    elif have == want:
                        exact += 1
                    else:
                        wrong += 1
                hung = elapsed >= BATCH_DEADLINE
                outcome.update(
                    {
                        "elapsed_seconds": round(elapsed, 3),
                        "exact": exact,
                        "degraded": degraded,
                        "wrong": wrong,
                        "hung": hung,
                        "restarts": svc.registry.counter(
                            "fleet.restarts"
                        ).value,
                    }
                )
                ok = not (wrong or hung)
                if kind == "corrupt":
                    fallbacks = svc.registry.counter(
                        "fleet.integrity_fallbacks"
                    ).value
                    outcome["integrity_fallbacks"] = fallbacks
                    outcome["quarantined"] = list(quarantined_segments())
                    ok = ok and fallbacks >= 1 and degraded == 0
                if args.converge:
                    ok = _converge_after_storm(svc, srng, outcome) and ok
                outcome["ok"] = ok
                if not ok:
                    failures += 1
                outcomes.append(outcome)
                health = svc.health()
            finally:
                svc.close()
        converged = outcome.get("convergence_ticks", "-")
        print(
            f"seed {seed}: {kind} -> "
            f"exact={outcome['exact']} degraded={outcome['degraded']} "
            f"wrong={outcome['wrong']} in {outcome['elapsed_seconds']}s "
            f"convergence_ticks={converged}"
        )
    return {
        "config": {
            "shards": args.shards,
            "rf": args.rf,
            "seeds": args.seeds,
            "n": args.n,
            "landmarks": args.landmarks,
            "pairs": args.pairs,
            "corruption": args.corruption,
            "converge": args.converge,
            "max_convergence_ticks": MAX_CONVERGENCE_TICKS,
        },
        "outcomes": outcomes,
        "failures": failures,
        "final_health": health,
    }


def _noop():
    from contextlib import nullcontext

    return nullcontext()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--rf", type=int, default=2)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--n", type=int, default=600)
    parser.add_argument("--landmarks", type=int, default=12)
    parser.add_argument("--pairs", type=int, default=400)
    parser.add_argument(
        "--corruption",
        action="store_true",
        help="rotate a byte-flipped shm segment into the fault schedule",
    )
    parser.add_argument(
        "--converge",
        action="store_true",
        help="after each batch, kill replicas and require supervisor "
        "convergence to ok within the tick budget",
    )
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(args)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"fleet-health report written to {args.out}")
    if report["failures"]:
        print(f"FAIL: {report['failures']} seed(s) violated the contract")
        return 1
    print(f"OK: {len(report['outcomes'])} seeds, zero hangs, zero wrong answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
