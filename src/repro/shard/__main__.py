"""Seeded shard-fault sweep: the CI chaos lane's fleet exercise.

Builds a pinned HCL instance, stands up a sharded fleet, and for each
seed injects one worker fault (kill / hang / slow, random shard and
replica) mid-``query_batch``, asserting the robustness contract:

* every answer is bitwise-equal to the unsharded plan, or a
  budget-expired :class:`~repro.budget.DegradedResult`;
* the coordinator never hangs (each batch is wall-clock bounded);
* shard loss and recovery show up in fleet ``health()``.

Writes the final fleet-health JSON (per-seed outcomes + the last health
snapshot + the metrics registry) to ``--out`` as the CI artifact and
exits non-zero on any contract violation.

Usage::

    python -m repro.shard --shards 4 --rf 2 --seeds 5 --out fleet-health.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from .coordinator import ShardedService
from ..budget import Budget, DegradedResult
from ..core import build_hcl, select_landmarks
from ..graphs import barabasi_albert
from ..testing import ShardFault, inject_shard_fault

#: A hung worker must outlast the RPC timeout to count as hung.
RPC_TIMEOUT = 0.25
HANG_SECONDS = 1.0
SLOW_SECONDS = 0.05
#: Hard wall-clock ceiling per faulted batch: generous against the retry
#: ladder (attempts × replicas × timeout + backoff), tiny against a hang.
BATCH_DEADLINE = 30.0


def run_sweep(args) -> dict:
    graph = barabasi_albert(args.n, 3, seed=7)
    landmarks = select_landmarks(graph, args.landmarks, policy="degree")
    index = build_hcl(graph, landmarks)
    plan = index.compile_plan()

    rng = random.Random(1234)
    pairs = [
        (rng.randrange(args.n), rng.randrange(args.n))
        for _ in range(args.pairs)
    ]
    oracle = [plan.query(s, t) for s, t in pairs]

    kinds = ["kill", "hang", "slow"]
    outcomes = []
    failures = 0
    health = {}
    for seed in range(args.seeds):
        srng = random.Random(seed)
        # Replicas see only a handful of data RPCs per batch; firing on
        # the victim's first one guarantees the fault lands mid-batch.
        fault = ShardFault(
            kind=kinds[seed % len(kinds)],
            shard=srng.randrange(args.shards),
            replica=srng.randrange(args.rf),
            requests=(0,),
            seconds=HANG_SECONDS if kinds[seed % len(kinds)] == "hang" else SLOW_SECONDS,
        )
        with inject_shard_fault(fault):
            svc = ShardedService(
                plan,
                nshards=args.shards,
                replication_factor=args.rf,
                rpc_timeout=RPC_TIMEOUT,
            )
            try:
                start = time.monotonic()
                got = svc.query_batch(
                    pairs, Budget(seconds=BATCH_DEADLINE / 2)
                )
                elapsed = time.monotonic() - start
                exact = degraded = wrong = 0
                for want, have in zip(oracle, got):
                    if isinstance(have, DegradedResult):
                        degraded += 1
                    elif have == want:
                        exact += 1
                    else:
                        wrong += 1
                hung = elapsed >= BATCH_DEADLINE
                outcome = {
                    "seed": seed,
                    "fault": {
                        "kind": fault.kind,
                        "shard": fault.shard,
                        "replica": fault.replica,
                        "request": fault.requests[0],
                    },
                    "elapsed_seconds": round(elapsed, 3),
                    "exact": exact,
                    "degraded": degraded,
                    "wrong": wrong,
                    "hung": hung,
                    "restarts": svc.registry.counter("fleet.restarts").value,
                }
                if wrong or hung:
                    failures += 1
                    outcome["ok"] = False
                else:
                    outcome["ok"] = True
                outcomes.append(outcome)
                health = svc.health()
            finally:
                svc.close()
        print(
            f"seed {seed}: {fault.kind} shard {fault.shard} -> "
            f"exact={outcome['exact']} degraded={outcome['degraded']} "
            f"wrong={outcome['wrong']} in {outcome['elapsed_seconds']}s"
        )
    return {
        "config": {
            "shards": args.shards,
            "rf": args.rf,
            "seeds": args.seeds,
            "n": args.n,
            "landmarks": args.landmarks,
            "pairs": args.pairs,
        },
        "outcomes": outcomes,
        "failures": failures,
        "final_health": health,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--rf", type=int, default=2)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--n", type=int, default=600)
    parser.add_argument("--landmarks", type=int, default=12)
    parser.add_argument("--pairs", type=int, default=400)
    parser.add_argument("--out", type=str, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(args)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"fleet-health report written to {args.out}")
    if report["failures"]:
        print(f"FAIL: {report['failures']} seed(s) violated the contract")
        return 1
    print(f"OK: {len(report['outcomes'])} seeds, zero hangs, zero wrong answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
