"""Slicing a compiled :class:`~repro.core.plan.QueryPlan` into shard state.

The serving data of a plan splits cleanly along the vertex axis: the CSR
label arrays are per-vertex (big — the only part worth sharding), while
the dense ``k × k`` highway table, the landmark id list and the landmark
exclusion mask are tiny and read by every query.  A :class:`ShardSlice`
therefore carries its **contiguous vertex range's** label rows plus a
**full replica** of the small shared structures — the same split
Dual-Hierarchy Labelling makes between its compact hierarchy and the bulk
labels.

Partitioning is pure arithmetic over :meth:`QueryPlan.canonical_arrays`:
ranges are the balanced contiguous split ``[i·n/N, (i+1)·n/N)``, and the
slice arrays are copies of the canonical arrays' subranges with offsets
rebased to the slice.  Because every float travels verbatim and the
per-row ``(distance, slot)`` order is preserved, a worker evaluating the
landmark-constrained minimum over slice rows is bitwise-identical to the
unsharded plan evaluating the same rows.

:class:`Partition` additionally keeps what the *coordinator* needs to
route without consulting any worker: the range boundaries and the full
``row_lengths`` array (one small int per vertex) that replicates the
plan's outer/inner endpoint selection — ``QueryPlan.query`` scans the
smaller label row as the outer loop, and float addition is not
associative, so the coordinator must make the identical choice to stay
bitwise-equal to the oracle.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..errors import RequestError

__all__ = ["Partition", "ShardSlice", "partition_plan", "shard_of"]


@dataclass(frozen=True)
class ShardSlice:
    """One shard's serving state: a vertex-range row slice + replicas.

    Picklable and immutable — this is the unit the coordinator ships to a
    worker over its pipe (at spawn, on restart, and on every epoch
    broadcast).  ``offsets`` is rebased so ``offsets[v - lo] ..
    offsets[v - lo + 1]`` indexes ``slots``/``dists`` for owned vertex
    ``v``; ``row_lengths`` covers **all** ``n`` vertices so the worker
    can re-derive the plan's outer/inner choice for any pair it is asked
    to combine.
    """

    shard_id: int
    nshards: int
    lo: int
    hi: int  # exclusive
    n: int
    k: int
    landmark_ids: array
    offsets: array  # len hi - lo + 1, rebased to 0
    slots: array
    dists: array
    hw: array  # full dense k*k replica
    row_lengths: array  # len n, full replica

    @property
    def owned(self) -> int:
        """Number of vertices this slice owns."""
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSlice(shard={self.shard_id}/{self.nshards}, "
            f"range=[{self.lo}, {self.hi}), entries={len(self.slots)})"
        )


def _bounds(n: int, nshards: int) -> list[int]:
    """Balanced contiguous range boundaries: ``nshards + 1`` fenceposts."""
    return [i * n // nshards for i in range(nshards + 1)]


def shard_of(v: int, bounds: list[int]) -> int:
    """The shard owning vertex ``v`` under balanced contiguous ranges.

    Closed form instead of bisect: with fenceposts ``bounds[i] =
    ⌊i·n/N⌋``, vertex ``v`` belongs to the largest ``i`` with
    ``⌊i·n/N⌋ <= v``, which is ``⌈(v+1)·N/n⌉ - 1`` (verified
    exhaustively against bisect in the test suite).
    """
    n = bounds[-1]
    nshards = len(bounds) - 1
    return ((v + 1) * nshards + n - 1) // n - 1


class Partition:
    """A plan split into :class:`ShardSlice`\\ s plus the routing replica.

    ``bounds`` has ``nshards + 1`` fenceposts; ``row_lengths[v]`` is
    ``|L(v)|`` for every vertex — the coordinator's copy of the
    outer/inner selection key.
    """

    __slots__ = ("nshards", "n", "k", "bounds", "row_lengths", "slices")

    def __init__(self, nshards, n, k, bounds, row_lengths, slices):
        self.nshards = nshards
        self.n = n
        self.k = k
        self.bounds = bounds
        self.row_lengths = row_lengths
        self.slices = slices

    def shard_of(self, v: int) -> int:
        return ((v + 1) * self.nshards + self.n - 1) // self.n - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition(nshards={self.nshards}, n={self.n}, k={self.k})"


def partition_plan(plan, nshards: int) -> Partition:
    """Split ``plan`` into ``nshards`` contiguous-range slices.

    Accepts any :class:`~repro.core.plan.QueryPlan` (incremental plans
    are densified by :meth:`~repro.core.plan.QueryPlan.canonical_arrays`
    first, so the slices always carry the canonical hole-free slot
    numbering — every shard of one partition agrees on slots and on the
    ``δ_H`` replica layout).
    """
    if nshards < 1:
        raise RequestError(f"nshards must be >= 1, got {nshards}")
    n, k, landmark_ids, offsets, slots, dists, hw = plan.canonical_arrays()
    if nshards > max(1, n):
        raise RequestError(
            f"cannot split {n} vertices across {nshards} shards"
        )
    bounds = _bounds(n, nshards)
    row_lengths = array(
        "l", (offsets[v + 1] - offsets[v] for v in range(n))
    )
    slices = []
    for i in range(nshards):
        lo, hi = bounds[i], bounds[i + 1]
        base = offsets[lo]
        local_offsets = array("l", (offsets[v] - base for v in range(lo, hi + 1)))
        slices.append(
            ShardSlice(
                shard_id=i,
                nshards=nshards,
                lo=lo,
                hi=hi,
                n=n,
                k=k,
                landmark_ids=landmark_ids,
                offsets=local_offsets,
                slots=slots[base : offsets[hi]],
                dists=dists[base : offsets[hi]],
                hw=hw,
                row_lengths=row_lengths,
            )
        )
    return Partition(nshards, n, k, bounds, row_lengths, slices)
