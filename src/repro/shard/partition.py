"""Slicing a compiled :class:`~repro.core.plan.QueryPlan` into shard state.

The serving data of a plan splits cleanly along the vertex axis: the CSR
label arrays are per-vertex (big — the only part worth sharding), while
the dense ``k × k`` highway table, the landmark id list and the landmark
exclusion mask are tiny and read by every query.  A :class:`ShardSlice`
therefore carries its **contiguous vertex range's** label rows plus a
**full replica** of the small shared structures — the same split
Dual-Hierarchy Labelling makes between its compact hierarchy and the bulk
labels.

Partitioning is pure arithmetic over :meth:`QueryPlan.canonical_arrays`:
ranges are the balanced contiguous split ``[i·n/N, (i+1)·n/N)``, and the
slice arrays are copies of the canonical arrays' subranges with offsets
rebased to the slice.  Because every float travels verbatim and the
per-row ``(distance, slot)`` order is preserved, a worker evaluating the
landmark-constrained minimum over slice rows is bitwise-identical to the
unsharded plan evaluating the same rows.

Two transports move a slice to a worker:

* **shared memory** (preferred): when the plan owns a
  :class:`~repro.core.shm.SharedPlanBuffers` segment, ``partition_plan``
  emits :class:`ShardSliceRef`\\ s — a few integers plus the segment
  name.  The worker attaches by name and materializes its subrange
  locally, so the epoch broadcast pickles no label arrays at all
  (``nshards × replication_factor`` workers would otherwise each
  deserialize their slice from the pipe);
* **pickle** (fallback): concrete :class:`ShardSlice` objects travel
  over the pipe, exactly as before, whenever shared memory is
  unavailable.

Either way the coordinator's :class:`Partition` keeps a reference to the
canonical arrays and can materialize any shard's concrete slice on
demand (:meth:`Partition.restart_slice`) — restarts must not depend on
the segment still being linked, since the owning epoch may retire (and
unlink) while the fleet keeps serving.

:class:`Partition` additionally keeps what the *coordinator* needs to
route without consulting any worker: the range boundaries and the full
``row_lengths`` array (one small int per vertex) that replicates the
plan's outer/inner endpoint selection — ``QueryPlan.query`` scans the
smaller label row as the outer loop, and float addition is not
associative, so the coordinator must make the identical choice to stay
bitwise-equal to the oracle.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..core.shm import SharedPlanRef
from ..errors import RequestError

__all__ = [
    "Partition",
    "ShardSlice",
    "ShardSliceRef",
    "partition_plan",
    "shard_of",
]


@dataclass(frozen=True)
class ShardSlice:
    """One shard's serving state: a vertex-range row slice + replicas.

    Picklable and immutable — this is the unit the coordinator ships to a
    worker over its pipe (at spawn, on restart, and on every epoch
    broadcast).  ``offsets`` is rebased so ``offsets[v - lo] ..
    offsets[v - lo + 1]`` indexes ``slots``/``dists`` for owned vertex
    ``v``; ``row_lengths`` covers **all** ``n`` vertices so the worker
    can re-derive the plan's outer/inner choice for any pair it is asked
    to combine.
    """

    shard_id: int
    nshards: int
    lo: int
    hi: int  # exclusive
    n: int
    k: int
    landmark_ids: array
    offsets: array  # len hi - lo + 1, rebased to 0
    slots: array
    dists: array
    hw: array  # full dense k*k replica
    row_lengths: array  # len n, full replica

    @property
    def owned(self) -> int:
        """Number of vertices this slice owns."""
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSlice(shard={self.shard_id}/{self.nshards}, "
            f"range=[{self.lo}, {self.hi}), entries={len(self.slots)})"
        )


def _typed_copy(code: str, view) -> array:
    """Materialize a buffer view (or array) into a fresh stdlib array."""
    out = array(code)
    out.frombytes(bytes(view))
    return out


@dataclass(frozen=True)
class ShardSliceRef:
    """The shared-memory transport form of one shard's slice.

    A few dozen bytes on the pipe instead of the label arrays: the
    worker resolves it by attaching the plan's segment
    (:meth:`~repro.core.shm.SharedPlanRef.attach`) and cutting its
    subrange out locally.  Raises ``FileNotFoundError`` if the owning
    plan already unlinked the segment — the coordinator's restart path
    avoids that window by shipping a concrete slice instead
    (:meth:`Partition.restart_slice`).
    """

    plan: SharedPlanRef
    shard_id: int
    nshards: int
    lo: int
    hi: int

    def materialize(self) -> ShardSlice:
        """Attach, copy this shard's subrange out, detach."""
        attachment = self.plan.attach()
        try:
            n, k, ids, offsets, slots, dists, hw = attachment.arrays()
            lo, hi = self.lo, self.hi
            base = offsets[lo]
            end = offsets[hi]
            local_offsets = array(
                "q", (offsets[v] - base for v in range(lo, hi + 1))
            )
            row_lengths = array(
                "q", (offsets[v + 1] - offsets[v] for v in range(n))
            )
            return ShardSlice(
                shard_id=self.shard_id,
                nshards=self.nshards,
                lo=lo,
                hi=hi,
                n=n,
                k=k,
                landmark_ids=_typed_copy("q", ids),
                offsets=local_offsets,
                slots=_typed_copy("q", slots[base:end]),
                dists=_typed_copy("d", dists[base:end]),
                hw=_typed_copy("d", hw),
                row_lengths=row_lengths,
            )
        finally:
            attachment.close()


def _bounds(n: int, nshards: int) -> list[int]:
    """Balanced contiguous range boundaries: ``nshards + 1`` fenceposts."""
    return [i * n // nshards for i in range(nshards + 1)]


def shard_of(v: int, bounds: list[int]) -> int:
    """The shard owning vertex ``v`` under balanced contiguous ranges.

    Closed form instead of bisect: with fenceposts ``bounds[i] =
    ⌊i·n/N⌋``, vertex ``v`` belongs to the largest ``i`` with
    ``⌊i·n/N⌋ <= v``, which is ``⌈(v+1)·N/n⌉ - 1`` (verified
    exhaustively against bisect in the test suite).
    """
    n = bounds[-1]
    nshards = len(bounds) - 1
    return ((v + 1) * nshards + n - 1) // n - 1


class Partition:
    """A plan split into shippable slices plus the routing replica.

    ``bounds`` has ``nshards + 1`` fenceposts; ``row_lengths[v]`` is
    ``|L(v)|`` for every vertex — the coordinator's copy of the
    outer/inner selection key.  ``slices`` holds what the epoch
    broadcast ships: :class:`ShardSliceRef`\\ s under the shared-memory
    transport (``transport == "shm"``), concrete :class:`ShardSlice`\\ s
    under pickle.  :meth:`restart_slice` always yields a concrete slice,
    built lazily from the retained canonical arrays.
    """

    __slots__ = (
        "nshards",
        "n",
        "k",
        "bounds",
        "row_lengths",
        "slices",
        "transport",
        "_canonical",
        "_concrete",
    )

    def __init__(
        self,
        nshards,
        n,
        k,
        bounds,
        row_lengths,
        slices,
        transport="pickle",
        canonical=None,
    ):
        self.nshards = nshards
        self.n = n
        self.k = k
        self.bounds = bounds
        self.row_lengths = row_lengths
        self.slices = slices
        self.transport = transport
        self._canonical = canonical
        self._concrete: dict[int, ShardSlice] = {}

    def shard_of(self, v: int) -> int:
        return ((v + 1) * self.nshards + self.n - 1) // self.n - 1

    def restart_slice(self, shard_id: int) -> ShardSlice:
        """A concrete (pickle-transport) slice for worker restarts.

        Built from the partition's retained canonical arrays — never
        from the shared segment, which the owning epoch may already
        have unlinked by the time a replica needs restarting.
        """
        sl = self.slices[shard_id]
        if isinstance(sl, ShardSlice):
            return sl
        cached = self._concrete.get(shard_id)
        if cached is None:
            cached = self._concrete[shard_id] = _build_slice(
                shard_id, self.nshards, self.bounds,
                self._canonical, self.row_lengths,
            )
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Partition(nshards={self.nshards}, n={self.n}, k={self.k}, "
            f"transport={self.transport})"
        )


def _build_slice(i, nshards, bounds, canonical, row_lengths) -> ShardSlice:
    n, k, landmark_ids, offsets, slots, dists, hw = canonical
    lo, hi = bounds[i], bounds[i + 1]
    base = offsets[lo]
    # "q" (int64) everywhere — the C long would be 4 bytes on LLP64
    # platforms (64-bit Windows) and silently wrap past 2^31 entries.
    local_offsets = array("q", (offsets[v] - base for v in range(lo, hi + 1)))
    return ShardSlice(
        shard_id=i,
        nshards=nshards,
        lo=lo,
        hi=hi,
        n=n,
        k=k,
        landmark_ids=landmark_ids,
        offsets=local_offsets,
        slots=slots[base : offsets[hi]],
        dists=dists[base : offsets[hi]],
        hw=hw,
        row_lengths=row_lengths,
    )


def partition_plan(plan, nshards: int, transport: str = "auto") -> Partition:
    """Split ``plan`` into ``nshards`` contiguous-range slices.

    Accepts any :class:`~repro.core.plan.QueryPlan` (incremental plans
    are densified by :meth:`~repro.core.plan.QueryPlan.canonical_arrays`
    first, so the slices always carry the canonical hole-free slot
    numbering — every shard of one partition agrees on slots and on the
    ``δ_H`` replica layout).

    ``transport="auto"`` emits :class:`ShardSliceRef`\\ s whenever the
    plan can own a shared-memory segment and concrete slices otherwise;
    ``"pickle"`` forces concrete slices (tests and platforms without
    shared memory).
    """
    if nshards < 1:
        raise RequestError(f"nshards must be >= 1, got {nshards}")
    if transport not in ("auto", "pickle"):
        raise RequestError(
            f"transport must be 'auto' or 'pickle', got {transport!r}"
        )
    canonical = plan.canonical_arrays()
    n, k, landmark_ids, offsets, slots, dists, hw = canonical
    if nshards > max(1, n):
        raise RequestError(
            f"cannot split {n} vertices across {nshards} shards"
        )
    bounds = _bounds(n, nshards)
    row_lengths = array(
        "q", (offsets[v + 1] - offsets[v] for v in range(n))
    )
    shared = None
    if transport == "auto":
        shared = plan.shared_buffers()
    if shared is not None:
        slices: list = [
            ShardSliceRef(shared.ref, i, nshards, bounds[i], bounds[i + 1])
            for i in range(nshards)
        ]
        mode = "shm"
    else:
        slices = [
            _build_slice(i, nshards, bounds, canonical, row_lengths)
            for i in range(nshards)
        ]
        mode = "pickle"
    return Partition(
        nshards, n, k, bounds, row_lengths, slices,
        transport=mode, canonical=canonical,
    )
