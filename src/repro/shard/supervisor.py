"""Fleet supervisor: out-of-band heartbeats, hang detection, self-repair.

The coordinator (:mod:`repro.shard.coordinator`) heals *in-call*: a
query that trips over a dead replica triggers one bounded restart, and
``auto_restart`` sweeps after each batch.  That leaves two holes on the
road to serving real traffic:

* a replica that dies (or wedges) while no query is routed to it stays
  broken — invisible until a request pays the failover latency;
* a *hung* worker (process alive, event loop stuck) never breaks its
  pipe, so nothing in the call path ever declares it dead.

:class:`FleetSupervisor` closes both.  It runs an out-of-band watchdog
loop — one :meth:`tick` per ``period`` — that

#. **heartbeats** every live replica with a deadline-bounded ``ping``
   RPC (the worker answers it even mid-fault-storm because pings bypass
   version lookups);
#. discriminates **hung from slow**: a ping timeout is a *miss*, and
   only ``hang_ticks`` consecutive misses declare the worker hung and
   mark it dead — a worker that answers again before the deadline keeps
   its process (and its warm caches);
#. **repairs** every dead replica from the coordinator's pinned slices
   (:meth:`ShardedService.restart_replica`, which replays *every*
   pinned version into the fresh process — the epoch re-broadcast), with
   restarts damped by a :class:`~repro.retry.BackoffPolicy` budget per
   replica so a crash-looping worker cannot start a restart storm; a
   replica that stays healthy ``stable_ticks`` ticks earns its budget
   back.  Because a dead replica is exactly what puts a shard below its
   replication factor, the same pass restores full replication;
#. optionally runs an **integrity check** every ``integrity_every``
   ticks (wired to the plan segment's CRC verify and/or a
   :class:`~repro.core.auditor.PlanAuditor` tick by the service layer);
#. rolls its verdict into fleet ``health()`` **with hysteresis**: after
   a storm the fleet reports ``recovering`` until ``hysteresis_ticks``
   consecutive clean sweeps, so flapping replicas cannot blink the
   status green.

Everything time-like is injectable: ``clock`` (a
:class:`~repro.testing.faults.FakeClock` in tests) feeds the backoff
deadlines, and :meth:`run` drives N ticks synchronously with zero real
sleeping — tier-1 tests script the whole
timeout → restart → re-broadcast → healthy arc deterministically.
:meth:`start` runs the same loop on a daemon thread for production.

Counters (in the fleet's registry): ``supervisor.ticks``, ``.pings``,
``.ping_timeouts``, ``.ping_errors``, ``.deaths_detected``,
``.hangs_detected``, ``.restarts``, ``.restart_failures``,
``.restarts_deferred``, ``.integrity_checks``, ``.integrity_failures``.
"""

from __future__ import annotations

import threading
import time

from ..obs import MetricsRegistry
from ..retry import BackoffPolicy
from .replication import ReplicaCallError, ReplicaDown, ReplicaTimeout

__all__ = ["FleetSupervisor"]

#: Test seam (:func:`repro.testing.faults.drop_heartbeats`): a callable
#: ``(shard_id, replica_id, tick) -> bool`` — ``True`` drops the probe
#: before it reaches the worker, which is indistinguishable from a hung
#: worker to the supervisor.  Always ``None`` in production.
_PING_HOOK = None


class _ReplicaWatch:
    """The supervisor's per-replica memory between ticks."""

    __slots__ = (
        "misses",
        "restart_attempts",
        "next_restart_at",
        "healthy_streak",
    )

    def __init__(self):
        self.misses = 0  # consecutive heartbeat timeouts
        self.restart_attempts = 0  # backoff ladder position
        self.next_restart_at = 0.0  # earliest allowed restart (clock time)
        self.healthy_streak = 0  # consecutive successful pings

    def snapshot(self) -> dict:
        return {
            "misses": self.misses,
            "restart_attempts": self.restart_attempts,
            "healthy_streak": self.healthy_streak,
        }


class FleetSupervisor:
    """Background watchdog over one :class:`ShardedService` fleet.

    Parameters
    ----------
    fleet:
        The :class:`~repro.shard.coordinator.ShardedService` to watch.
        The supervisor attaches itself (``fleet.attach_supervisor``), so
        fleet ``health()`` reports the supervised status from then on.
    period:
        Seconds between ticks when running on the background thread
        (:meth:`start`); :meth:`tick`/:meth:`run` ignore it except as
        the :class:`~repro.testing.faults.FakeClock` advance unit.
    ping_timeout:
        Heartbeat reply deadline (default: the fleet's ``rpc_timeout``).
    hang_ticks:
        Consecutive missed heartbeats before a live-looking process is
        declared hung and marked dead (>= 1).
    restart_backoff:
        :class:`~repro.retry.BackoffPolicy` spacing restart attempts per
        replica (default: base ``period`` capped at ``16 * period``).
    hysteresis_ticks:
        Consecutive fully-healthy ticks before the supervised status
        returns to ``"ok"`` (>= 1).
    stable_ticks:
        Healthy-streak length that forgives a replica's accumulated
        restart-backoff debt (its next crash restarts promptly again).
    integrity_check:
        Optional ``callable() -> bool`` (``True`` = clean) run every
        ``integrity_every`` ticks, e.g. the owning plan's segment CRC
        verify or a :class:`~repro.core.auditor.PlanAuditor` tick.
    clock:
        Monotonic clock (default ``time.monotonic``); inject a
        :class:`~repro.testing.faults.FakeClock` for deterministic tests.
    registry:
        Metrics registry for ``supervisor.*`` (default: the fleet's).
    """

    def __init__(
        self,
        fleet,
        *,
        period: float = 1.0,
        ping_timeout: float | None = None,
        hang_ticks: int = 3,
        restart_backoff: BackoffPolicy | None = None,
        hysteresis_ticks: int = 2,
        stable_ticks: int = 8,
        integrity_check=None,
        integrity_every: int = 4,
        clock=None,
        registry: MetricsRegistry | None = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if hang_ticks < 1:
            raise ValueError(f"hang_ticks must be >= 1, got {hang_ticks}")
        if hysteresis_ticks < 1:
            raise ValueError(
                f"hysteresis_ticks must be >= 1, got {hysteresis_ticks}"
            )
        if integrity_every < 1:
            raise ValueError(
                f"integrity_every must be >= 1, got {integrity_every}"
            )
        self.fleet = fleet
        self.period = period
        self.ping_timeout = (
            ping_timeout if ping_timeout is not None else fleet.rpc_timeout
        )
        self.hang_ticks = hang_ticks
        self.hysteresis_ticks = hysteresis_ticks
        self.stable_ticks = stable_ticks
        self.integrity_check = integrity_check
        self.integrity_every = integrity_every
        self._backoff = (
            restart_backoff
            if restart_backoff is not None
            else BackoffPolicy(
                base_delay=period, max_delay=period * 16.0, jitter=0.1
            )
        )
        self._clock = clock if clock is not None else time.monotonic
        self.registry = registry if registry is not None else fleet.registry
        self.ticks = 0
        self._events = 0
        self._ok_streak = 0
        self._status = "recovering"  # no verdict until the first tick
        self._watches: dict[tuple[int, int], _ReplicaWatch] = {}
        self._thread = None
        self._stop = threading.Event()
        self._tick_lock = threading.Lock()
        fleet.attach_supervisor(self)

    # ------------------------------------------------------------------
    # Tick machinery
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self.registry.counter(f"supervisor.{name}").inc(n)

    def _watch(self, shard_id: int, replica_id: int) -> _ReplicaWatch:
        key = (shard_id, replica_id)
        watch = self._watches.get(key)
        if watch is None:
            watch = self._watches[key] = _ReplicaWatch()
        return watch

    def tick(self) -> dict:
        """One watchdog sweep: heartbeat, detect, repair, judge.

        Returns the post-tick :meth:`state` snapshot.  Thread-safe with
        itself (ticks serialize), cheap when the fleet is healthy: one
        tiny ping RPC per replica.
        """
        with self._tick_lock:
            tick = self.ticks
            self.ticks += 1
            self._count("ticks")
            self._events = 0  # misses/deaths/restarts observed this tick
            self._heartbeat_pass(tick)
            self._repair_pass()
            if (
                self.integrity_check is not None
                and tick % self.integrity_every == 0
            ):
                self._count("integrity_checks")
                try:
                    clean = bool(self.integrity_check())
                except Exception:  # noqa: BLE001 - a check must not kill us
                    clean = False
                if not clean:
                    self._count("integrity_failures")
            self._judge_pass()
            return self.state()

    def _heartbeat_pass(self, tick: int) -> None:
        hook = _PING_HOOK
        for rset in self.fleet.replica_sets:
            for replica in rset.replicas:
                if not replica.alive:
                    continue
                watch = self._watch(rset.shard_id, replica.replica_id)
                self._count("pings")
                dropped = hook is not None and hook(
                    rset.shard_id, replica.replica_id, tick
                )
                try:
                    if dropped:
                        raise ReplicaTimeout(
                            f"heartbeat to shard {rset.shard_id} replica "
                            f"{replica.replica_id} dropped by fault"
                        )
                    replica.call("ping", None, self.ping_timeout)
                except ReplicaTimeout:
                    self._count("ping_timeouts")
                    self._events += 1
                    watch.healthy_streak = 0
                    watch.misses += 1
                    if watch.misses >= self.hang_ticks:
                        # Process alive, worker unresponsive for the
                        # whole window: hung.  Mark it dead so the
                        # repair pass below replaces it.
                        replica.mark_dead()
                        watch.misses = 0
                        self._count("hangs_detected")
                except ReplicaDown:
                    # call() already marked it dead; repair pass acts.
                    self._count("deaths_detected")
                    self._events += 1
                    watch.healthy_streak = 0
                    watch.misses = 0
                except ReplicaCallError:
                    # An error *reply* proves the worker is responsive;
                    # liveness-wise this is a successful heartbeat.
                    self._count("ping_errors")
                    self._note_healthy(watch)
                else:
                    self._note_healthy(watch)

    def _note_healthy(self, watch: _ReplicaWatch) -> None:
        watch.misses = 0
        watch.healthy_streak += 1
        if (
            watch.healthy_streak >= self.stable_ticks
            and watch.restart_attempts
        ):
            # Sustained health forgives the backoff debt: the *next*
            # failure restarts promptly instead of inheriting delay
            # earned by crashes long since survived.
            watch.restart_attempts = 0
            watch.next_restart_at = 0.0

    def _repair_pass(self) -> None:
        now = self._clock()
        for rset in self.fleet.replica_sets:
            for replica in rset.replicas:
                if replica.alive:
                    continue
                self._events += 1
                watch = self._watch(rset.shard_id, replica.replica_id)
                if now < watch.next_restart_at:
                    # Backoff damping: this replica crashed recently
                    # (and possibly repeatedly); let the ladder space
                    # the attempts out instead of storming restarts.
                    self._count("restarts_deferred")
                    continue
                attempt = watch.restart_attempts
                watch.restart_attempts += 1
                watch.next_restart_at = now + self._backoff.delay(attempt)
                watch.healthy_streak = 0
                if self.fleet.restart_replica(rset, replica):
                    # restart_replica replayed every pinned version into
                    # the fresh worker — the epoch re-broadcast.
                    self._count("restarts")
                else:
                    self._count("restart_failures")

    def _judge_pass(self) -> None:
        all_alive = True
        shard_out = False
        for rset in self.fleet.replica_sets:
            alive = rset.alive_count()
            if alive < len(rset.replicas):
                all_alive = False
            if alive == 0:
                shard_out = True
        if not all_alive:
            self._ok_streak = 0
            self._status = "unavailable" if shard_out else "degraded"
        elif self._events:
            # Everyone is alive *now*, but this sweep saw trouble
            # (misses, a death, a same-tick restart).  Hysteresis: an
            # eventful tick never counts toward the ok streak, so a
            # flapping replica cannot blink the status green.
            self._ok_streak = 0
            self._status = "recovering"
        else:
            self._ok_streak += 1
            self._status = (
                "ok" if self._ok_streak >= self.hysteresis_ticks
                else "recovering"
            )

    # ------------------------------------------------------------------
    # State + drivers
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """Supervised verdict: ``ok`` / ``recovering`` / ``degraded`` /
        ``unavailable`` (hysteresis applied; see :meth:`_judge_pass`)."""
        return self._status

    @property
    def converged(self) -> bool:
        """Whether the fleet has been fully healthy long enough."""
        return self._status == "ok"

    def state(self) -> dict:
        """Flat snapshot for ``health()`` roll-up and test assertions."""
        return {
            "status": self._status,
            "ticks": self.ticks,
            "ok_streak": self._ok_streak,
            "period": self.period,
            "running": self._thread is not None,
            "watches": {
                f"{shard}.{replica}": watch.snapshot()
                for (shard, replica), watch in sorted(self._watches.items())
            },
        }

    def run(self, ticks: int, advance: bool = True) -> dict:
        """Drive ``ticks`` sweeps synchronously (no real sleeping).

        With ``advance=True`` and an advanceable clock (a
        :class:`~repro.testing.faults.FakeClock`), the clock moves
        ``period`` forward before each tick — one call scripts the whole
        wall-clock schedule a production thread would experience.
        Returns the final :meth:`state`.
        """
        state = self.state()
        advancer = getattr(self._clock, "advance", None)
        for _ in range(ticks):
            if advance and advancer is not None:
                advancer(self.period)
            state = self.tick()
        return state

    def run_until_ok(self, max_ticks: int, advance: bool = True) -> int:
        """Tick until :attr:`converged` or ``max_ticks`` spent.

        Returns the number of ticks consumed; raises ``RuntimeError``
        when the fleet failed to converge — the chaos suite's bounded
        convergence guarantee, as an API.
        """
        for spent in range(max_ticks):
            if self.converged:
                return spent
            self.run(1, advance=advance)
        if self.converged:
            return max_ticks
        raise RuntimeError(
            f"fleet did not converge to ok within {max_ticks} supervisor "
            f"ticks (status={self._status!r})"
        )

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run :meth:`tick` every ``period`` seconds on a daemon thread
        (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop():
            while not self._stop.wait(self.period):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - watchdog must survive
                    pass

        self._thread = threading.Thread(
            target=_loop, name="fleet-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the background thread (idempotent; safe mid-tick)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)

    def __enter__(self) -> "FleetSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetSupervisor(status={self._status!r}, ticks={self.ticks}, "
            f"period={self.period})"
        )
