"""Deterministic, scriptable thread interleavings for concurrency tests.

The hard bugs in a query-while-maintaining index are *interleaving* bugs:
a reader observing half of a swap, an epoch retired while still pinned, a
rolled-back writer publishing its snapshot anyway.  Stress tests hit such
windows probabilistically; this module makes them *test inputs*.

:class:`StepScheduler` is a step-barrier scheduler.  Test threads are
spawned parked; only the thread whose name the script currently grants
runs, and it runs exactly from its current position to its next
:meth:`StepScheduler.step` call (or to completion) while every other
thread stays parked.  Because at most one scheduled thread executes at a
time and the hand-offs are explicit, a schedule replays the same
interleaving on every run and every machine — the concurrency analogue of
a seeded RNG.

Typical shape::

    with StepScheduler() as sched:
        sched.spawn("reader", read_fn)
        sched.spawn("writer", write_fn)
        # reader runs to its first step(); writer commits fully; reader
        # finishes on the epoch it pinned before the commit.
        sched.run(["reader", "writer", "writer", "reader"])
    assert sched.result("reader") == expected

Inside ``read_fn``/``write_fn``, call ``sched.step("label")`` at every
point where the interleaving may switch; the labels land in
:attr:`StepScheduler.trace` for assertions and failure diagnostics.

The scheduler is deliberately minimal: it does not preempt (a thread that
never calls ``step`` runs to completion on its first turn), it does not
discover interleavings (scripts are explicit), and a granted thread that
blocks on something outside the scheduler trips the watchdog timeout
rather than deadlocking the suite.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

__all__ = ["InterleaveError", "StepScheduler"]

#: Sentinel turn value: every thread may run freely (drain mode).
_ALL = object()


class InterleaveError(AssertionError):
    """A schedule could not be followed (bad name, dead thread, timeout).

    Subclasses :class:`AssertionError` so an impossible interleaving fails
    the test that scripted it rather than erroring the harness.
    """


class _Worker:
    __slots__ = ("name", "fn", "args", "kwargs", "thread", "state", "result", "error")

    def __init__(self, name, fn, args, kwargs):
        self.name = name
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.thread: threading.Thread | None = None
        self.state = "new"  # new -> parked <-> running -> done
        self.result: Any = None
        self.error: BaseException | None = None


class StepScheduler:
    """Run named threads under an explicit, replayable interleaving script.

    Parameters
    ----------
    timeout:
        Watchdog for every hand-off, in seconds.  A granted thread that
        neither parks at a ``step()`` nor finishes within this bound (it
        deadlocked on something outside the scheduler) raises
        :class:`InterleaveError` carrying the trace so far.
    """

    def __init__(self, timeout: float = 10.0):
        self._timeout = timeout
        self._cond = threading.Condition()
        self._workers: dict[str, _Worker] = {}
        self._turn: object = None  # name granted to run, _ALL, or None
        self._draining = False
        #: ``(thread_name, label)`` per executed step, in execution order.
        self.trace: list[tuple[str, str | None]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def spawn(
        self, name: str, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> None:
        """Start thread ``name`` parked at its entry point.

        The function does not begin executing until the schedule grants
        ``name`` its first turn.
        """
        if name in self._workers:
            raise InterleaveError(f"thread name {name!r} already spawned")
        worker = _Worker(name, fn, args, kwargs)
        thread = threading.Thread(
            target=self._main, args=(worker,), name=f"interleave-{name}",
            daemon=True,
        )
        worker.thread = thread
        self._workers[name] = worker
        thread.start()

    def _main(self, worker: _Worker) -> None:
        self._park(worker, label=None, record=False)
        try:
            worker.result = worker.fn(*worker.args, **worker.kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via finish()
            worker.error = exc
        finally:
            with self._cond:
                worker.state = "done"
                if self._turn == worker.name:
                    self._turn = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Called from inside scheduled threads
    # ------------------------------------------------------------------
    def step(self, label: str | None = None) -> None:
        """Yield control back to the script until this thread's next turn.

        Must be called from a thread started via :meth:`spawn`; calling it
        from an unregistered thread raises :class:`InterleaveError`.  In
        drain mode (after :meth:`finish` released every thread) it is a
        no-op, so cleanup code can run without a script.
        """
        current = threading.current_thread()
        for worker in self._workers.values():
            if worker.thread is current:
                self._park(worker, label, record=True)
                return
        raise InterleaveError(
            f"step({label!r}) called from unregistered thread {current.name!r}"
        )

    def _park(self, worker: _Worker, label: str | None, record: bool) -> None:
        with self._cond:
            if self._turn is _ALL:
                if record:
                    self.trace.append((worker.name, label))
                return  # draining: run free, no hand-off
            worker.state = "parked"
            if self._turn == worker.name:
                self._turn = None  # this turn is spent; wait for the next
            if record:
                self.trace.append((worker.name, label))
            self._cond.notify_all()
            ok = self._cond.wait_for(
                lambda: self._turn is _ALL or self._turn == worker.name,
                timeout=self._timeout,
            )
            if not ok:
                raise InterleaveError(
                    f"thread {worker.name!r} was never granted a turn "
                    f"within {self._timeout}s; trace so far: {self.trace}"
                )
            worker.state = "running"

    # ------------------------------------------------------------------
    # Called from the driving (test) thread
    # ------------------------------------------------------------------
    def grant(self, name: str) -> None:
        """Let ``name`` run from its current position to its next step.

        Returns once the thread parked again or completed.  Granting a
        turn to an unknown or already-finished thread is a script bug and
        raises :class:`InterleaveError`.
        """
        worker = self._workers.get(name)
        if worker is None:
            raise InterleaveError(
                f"unknown thread {name!r}; spawned: {sorted(self._workers)}"
            )
        with self._cond:
            if worker.state == "done":
                raise InterleaveError(
                    f"schedule grants a turn to finished thread {name!r}; "
                    f"trace so far: {self.trace}"
                )
            ok = self._cond.wait_for(
                lambda: worker.state in ("parked", "done"),
                timeout=self._timeout,
            )
            if not ok or worker.state == "done":
                if worker.state == "done":
                    raise InterleaveError(
                        f"thread {name!r} finished before its turn; "
                        f"trace so far: {self.trace}"
                    )
                raise InterleaveError(
                    f"thread {name!r} never parked; trace: {self.trace}"
                )
            self._turn = name
            self._cond.notify_all()
            # The turn is over only when the *worker* clears it — at its
            # next park (consuming the turn inside _park) or on
            # completion.  Waiting on worker.state instead would race:
            # "parked" is still true from before the worker even woke.
            ok = self._cond.wait_for(
                lambda: self._turn != name, timeout=self._timeout
            )
            if not ok:
                raise InterleaveError(
                    f"thread {name!r} neither parked nor finished within "
                    f"{self._timeout}s of its turn; trace: {self.trace}"
                )

    def run(self, schedule: Sequence[str]) -> None:
        """Execute the script, then drain every remaining thread.

        Each schedule entry grants one turn.  After the script, all
        threads are released to run to completion concurrently (their
        remaining ``step`` calls become no-ops) and joined; the first
        worker exception, if any, is re-raised.
        """
        for name in schedule:
            self.grant(name)
        self.finish()

    def finish(self, raise_errors: bool = True) -> None:
        """Release every thread, join them, optionally re-raise failures."""
        with self._cond:
            self._draining = True
            self._turn = _ALL
            self._cond.notify_all()
        for worker in self._workers.values():
            assert worker.thread is not None
            worker.thread.join(timeout=self._timeout)
            if worker.thread.is_alive():
                raise InterleaveError(
                    f"thread {worker.name!r} did not finish while draining; "
                    f"trace: {self.trace}"
                )
        if raise_errors:
            for worker in self._workers.values():
                if worker.error is not None:
                    raise worker.error

    def result(self, name: str) -> Any:
        """Return value of thread ``name`` (it must have completed)."""
        worker = self._workers[name]
        if worker.state != "done":
            raise InterleaveError(f"thread {name!r} has not finished")
        if worker.error is not None:
            raise worker.error
        return worker.result

    def error(self, name: str) -> BaseException | None:
        """The exception thread ``name`` died with, or ``None``."""
        return self._workers[name].error

    # ------------------------------------------------------------------
    # Context manager: never leave parked threads behind a failed test
    # ------------------------------------------------------------------
    def __enter__(self) -> "StepScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._draining:
            # Unwind on the test's own failure without masking it.
            try:
                self.finish(raise_errors=exc_type is None)
            except InterleaveError:
                if exc_type is None:
                    raise
        return False
