"""Deterministic fault injection for crash-safety testing.

This package is part of the *library*, not the test suite: downstream
users embedding :mod:`repro` behind a service are expected to drive the
same harness against their own deployment code, and every future change
to the update algorithms is expected to keep passing under it.
"""

from .faults import (
    FakeClock,
    InjectedFault,
    WorkerFault,
    corrupt_byte,
    fail_at_label_write,
    fail_at_phase,
    inject_worker_fault,
    slow_search,
    truncate_tail,
)

__all__ = [
    "FakeClock",
    "InjectedFault",
    "WorkerFault",
    "corrupt_byte",
    "fail_at_label_write",
    "fail_at_phase",
    "inject_worker_fault",
    "slow_search",
    "truncate_tail",
]
