"""Deterministic fault injection and interleaving for concurrency testing.

This package is part of the *library*, not the test suite: downstream
users embedding :mod:`repro` behind a service are expected to drive the
same harness against their own deployment code, and every future change
to the update algorithms is expected to keep passing under it.
:mod:`repro.testing.faults` injects failures at exact points;
:mod:`repro.testing.interleave` scripts exact thread interleavings.
"""

from .faults import (
    FakeClock,
    HeartbeatFault,
    InjectedFault,
    ShardFault,
    WorkerFault,
    corrupt_byte,
    corrupt_segment,
    drop_heartbeats,
    fail_at_label_write,
    fail_at_phase,
    inject_shard_fault,
    inject_worker_fault,
    slow_search,
    truncate_tail,
)
from .interleave import InterleaveError, StepScheduler

__all__ = [
    "FakeClock",
    "HeartbeatFault",
    "InjectedFault",
    "InterleaveError",
    "ShardFault",
    "StepScheduler",
    "WorkerFault",
    "corrupt_byte",
    "corrupt_segment",
    "drop_heartbeats",
    "fail_at_label_write",
    "fail_at_phase",
    "inject_shard_fault",
    "inject_worker_fault",
    "slow_search",
    "truncate_tail",
]
