"""Deterministic fault injection for the crash-safety layer.

Failure handling that is only exercised by real crashes is failure
handling that silently rots.  This module turns the interesting crash
sites into *repeatable* test inputs:

* :func:`fail_at_label_write` — raise on the N-th label write, anywhere in
  the process: mid-``UPGRADE-LMK``, mid-``DOWNGRADE-LMK``, mid-merge.
  This is the workhorse for proving transactional rollback.
* :func:`fail_at_phase` — raise exactly at a named internal phase boundary
  of Algorithm 1/2 (``"highway"``/``"search"`` in upgrade, ``"sweep"`` in
  downgrade), the nastiest partial states the algorithms pass through.
* :class:`WorkerFault` + :func:`inject_worker_fault` — make a chosen
  parallel-build task raise, or kill its worker process outright
  (``BrokenProcessPool``), on chosen attempts only, to drive the
  retry/serial-fallback machinery of
  :func:`~repro.core.build.build_hcl_parallel`.
* :func:`corrupt_byte` / :func:`truncate_tail` — bit-flip or truncate
  on-disk artifacts (checkpoints, WALs) the way dying disks and dying
  processes do.
* :class:`FakeClock` + :func:`slow_search` — a deterministic clock to
  inject into :class:`~repro.budget.Budget` /
  :class:`~repro.breaker.CircuitBreaker`, and a fault that advances it by
  a fixed amount per settled vertex of the budgeted refinement search, so
  deadline expiry lands on an exact, machine-independent schedule.

All injection is scoped by context managers that restore the patched seam
on exit, so a failing assertion cannot leak a fault into the next test.
Faults raise :class:`InjectedFault`, which is deliberately *not* a
:class:`~repro.errors.ReproError`: it exercises the foreign-exception
paths (wrapping, auditing) that real bugs take.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "FakeClock",
    "HeartbeatFault",
    "InjectedFault",
    "ShardFault",
    "WorkerFault",
    "corrupt_byte",
    "corrupt_segment",
    "drop_heartbeats",
    "fail_at_label_write",
    "fail_at_phase",
    "inject_shard_fault",
    "inject_worker_fault",
    "slow_search",
    "truncate_tail",
]


class InjectedFault(Exception):
    """A deliberately injected failure.

    Intentionally outside the ``ReproError`` hierarchy so tests observe
    how the library treats exceptions it does not own.
    """


class FakeClock:
    """A manually-advanced monotonic clock for deterministic time tests.

    Drop-in for the ``clock`` parameter of
    :class:`~repro.budget.Budget` and
    :class:`~repro.breaker.CircuitBreaker`: calling the instance returns
    the current fake time; :meth:`advance` moves it forward.  Tests
    script deadline expiries and breaker backoff schedules exactly,
    without sleeping.

    Examples
    --------
    >>> clock = FakeClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds}")
        self.now += seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FakeClock(now={self.now})"


# ----------------------------------------------------------------------
# In-process faults
# ----------------------------------------------------------------------
@contextmanager
def fail_at_label_write(
    nth: int, exc: Callable[[str], Exception] = InjectedFault
) -> Iterator[dict]:
    """Raise on the ``nth`` (1-based) label write inside the block.

    Counts every :meth:`~repro.core.labeling.Labeling.add_entry` and
    :meth:`~repro.core.labeling.Labeling.remove_entry` call on *any*
    labeling, so the fault lands mid-algorithm wherever the count says —
    sweep ``nth`` over a range to march a crash through an entire update.
    Yields the counter state dict (key ``"writes"``) for assertions.
    """
    from ..core.labeling import Labeling

    if nth < 1:
        raise ValueError(f"nth must be >= 1, got {nth}")
    state = {"writes": 0}
    orig_add = Labeling.add_entry
    orig_remove = Labeling.remove_entry

    def counting(orig):
        def wrapper(self, *args, **kwargs):
            state["writes"] += 1
            if state["writes"] == nth:
                raise exc(f"injected fault at label write {nth}")
            return orig(self, *args, **kwargs)

        return wrapper

    Labeling.add_entry = counting(orig_add)
    Labeling.remove_entry = counting(orig_remove)
    try:
        yield state
    finally:
        Labeling.add_entry = orig_add
        Labeling.remove_entry = orig_remove


@contextmanager
def fail_at_phase(
    phase: str, exc: Callable[[str], Exception] = InjectedFault
) -> Iterator[None]:
    """Raise when Algorithm 1/2 reports the named phase boundary.

    Valid names: ``"highway"`` and ``"search"`` (``UPGRADE-LMK``),
    ``"sweep"`` (``DOWNGRADE-LMK``).  The exception fires *after* the
    phase completes — precisely the partial-yet-internally-consistent
    states a crash would freeze.
    """
    from ..core import downgrade, upgrade

    def hook(name: str) -> None:
        if name == phase:
            raise exc(f"injected fault at phase boundary {phase!r}")

    old_up, old_down = upgrade._PHASE_HOOK, downgrade._PHASE_HOOK
    upgrade._PHASE_HOOK = hook
    downgrade._PHASE_HOOK = hook
    try:
        yield
    finally:
        upgrade._PHASE_HOOK = old_up
        downgrade._PHASE_HOOK = old_down


@contextmanager
def slow_search(
    clock: FakeClock, seconds_per_settle: float
) -> Iterator[FakeClock]:
    """Make every settled vertex of the budgeted search cost fake time.

    Arms the settle seam of the *budgeted* bidirectional kernel
    (:data:`repro.graphs.traversal._SETTLE_HOOK`) to advance ``clock`` by
    ``seconds_per_settle`` per settled vertex.  Pair it with a
    ``Budget(seconds=..., clock=clock)`` and the wall-clock deadline
    expires after a precise number of settles on every machine — the
    deterministic stand-in for "this query hit a slow region of the
    graph".  Unbudgeted searches are untouched: the production kernels
    never consult the seam.
    """
    from ..graphs import traversal

    if seconds_per_settle < 0:
        raise ValueError(
            f"seconds_per_settle must be >= 0, got {seconds_per_settle}"
        )

    def hook(_u: int) -> None:
        clock.advance(seconds_per_settle)

    old = traversal._SETTLE_HOOK
    traversal._SETTLE_HOOK = hook
    try:
        yield clock
    finally:
        traversal._SETTLE_HOOK = old


# ----------------------------------------------------------------------
# Parallel-build worker faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerFault:
    """Kill or fail one parallel-build task on selected attempts.

    ``kind`` is ``"raise"`` (the task raises :class:`InjectedFault` in the
    worker; the pool survives) or ``"kill"`` (the worker process exits
    hard via ``os._exit``, poisoning the pool — the ``BrokenProcessPool``
    path).  ``index`` is the position in the landmark list, ``attempts``
    the pool attempts (0-based) on which the fault fires — the default
    ``(0,)`` fails the first attempt and lets retries succeed; use
    ``attempts=range(100)`` to defeat every retry and force the serial
    fallback.
    """

    kind: str
    index: int
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self):
        if self.kind not in ("raise", "kill"):
            raise ValueError(f"unknown worker fault kind {self.kind!r}")
        object.__setattr__(self, "attempts", tuple(self.attempts))

    def fire(self, task_index: int, attempt: int) -> None:
        """Called inside the worker for every task; faults if matched."""
        if task_index != self.index or attempt not in self.attempts:
            return
        if self.kind == "raise":
            raise InjectedFault(
                f"injected worker fault: task {task_index}, "
                f"attempt {attempt}"
            )
        os._exit(17)  # "kill": die without cleanup, as a crash would


@contextmanager
def inject_worker_fault(fault: WorkerFault) -> Iterator[None]:
    """Arm ``fault`` for :func:`~repro.core.build.build_hcl_parallel`.

    The fault object travels to pool workers through the pool initializer,
    so it works under both ``fork`` and ``spawn`` start methods.
    """
    from ..core import build

    old = build._WORKER_FAULT
    build._WORKER_FAULT = fault
    try:
        yield
    finally:
        build._WORKER_FAULT = old


# ----------------------------------------------------------------------
# Sharded-serving faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardFault:
    """Kill, hang, slow down or fail one shard worker's serving RPCs.

    Fires inside the worker's request loop, on the data RPCs
    (``rows``/``combine``) whose per-replica 0-based ordinal is listed in
    ``requests``.  Targeting: ``shard`` picks the shard; ``replica``
    picks one replica of it (``None`` = every replica).

    ``kind``:

    ``"kill"``
        The worker process exits hard (``os._exit``) — the coordinator
        sees a dead pipe and must fail over / restart.
    ``"hang"``
        The worker sleeps ``seconds`` *before* replying — with
        ``seconds`` above the coordinator's RPC timeout this is a hung
        worker, exercising the deadline/stale-reply-drain machinery
        without leaving a permanently wedged process behind.
    ``"slow"``
        The worker sleeps ``seconds`` (set it below the RPC timeout)
        and then serves normally — degraded-but-alive.
    ``"raise"``
        The RPC fails with :class:`InjectedFault`; the worker survives
        and the coordinator retries.

    ``ops`` selects which worker ops count toward the ordinal and can
    fault — the default keeps the historical behavior (data RPCs only);
    add ``"ping"`` to fault the supervisor's heartbeat probes too.
    """

    kind: str
    shard: int
    replica: int | None = None
    requests: tuple[int, ...] = (0,)
    seconds: float = 1.0
    ops: tuple[str, ...] = ("rows", "combine")

    def __post_init__(self):
        if self.kind not in ("kill", "hang", "slow", "raise"):
            raise ValueError(f"unknown shard fault kind {self.kind!r}")
        object.__setattr__(self, "requests", tuple(self.requests))
        object.__setattr__(self, "ops", tuple(self.ops))

    def fire(self, shard: int, replica: int, ordinal: int) -> None:
        """Called by the worker per data RPC; faults if matched.

        For ``"hang"``/``"slow"`` the sleep happens here (real
        :func:`time.sleep` — the worker is a separate process, so a fake
        clock cannot reach it; keep ``seconds`` small in tests).
        """
        import time

        if shard != self.shard:
            return
        if self.replica is not None and replica != self.replica:
            return
        if ordinal not in self.requests:
            return
        if self.kind == "kill":
            os._exit(23)
        if self.kind == "raise":
            raise InjectedFault(
                f"injected shard fault: shard {shard} replica {replica}, "
                f"request {ordinal}"
            )
        time.sleep(self.seconds)  # "hang" / "slow"


@contextmanager
def inject_shard_fault(fault: ShardFault) -> Iterator[None]:
    """Arm ``fault`` for workers spawned by ``repro.shard`` inside the block.

    The fault object is shipped to each shard worker at spawn time (as a
    process argument), so it also arms workers the coordinator *restarts*
    during the block — and it works under both ``fork`` and ``spawn``.
    Workers already running before the block are unaffected.
    """
    from ..shard import worker as shard_worker

    old = shard_worker._SHARD_FAULT
    shard_worker._SHARD_FAULT = fault
    try:
        yield
    finally:
        shard_worker._SHARD_FAULT = old


# ----------------------------------------------------------------------
# Supervisor heartbeat faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeartbeatFault:
    """Drop the fleet supervisor's heartbeat probes to chosen replicas.

    Arms the :data:`repro.shard.supervisor._PING_HOOK` seam (via
    :func:`drop_heartbeats`): when the supervisor is about to ping a
    matching replica on a matching tick, the probe is *dropped* — the
    supervisor observes exactly what a hung worker looks like (a
    deadline-bounded ping that never answers) without wedging a real
    process.  ``ticks`` are the supervisor's 0-based tick ordinals on
    which the drop fires; an unhealthy-looking worker whose fault window
    ends *recovers*, which is how tests prove a worker that answers
    again before the hang deadline is **not** restarted.
    """

    shard: int
    replica: int | None = None
    ticks: tuple[int, ...] = (0,)

    def __post_init__(self):
        object.__setattr__(self, "ticks", tuple(self.ticks))

    def matches(self, shard: int, replica: int, tick: int) -> bool:
        """Whether the probe to (shard, replica) on ``tick`` is dropped."""
        if shard != self.shard:
            return False
        if self.replica is not None and replica != self.replica:
            return False
        return tick in self.ticks


@contextmanager
def drop_heartbeats(fault: HeartbeatFault) -> Iterator[None]:
    """Arm ``fault`` for :class:`repro.shard.supervisor.FleetSupervisor`
    ticks inside the block (coordinator-side seam; no worker involved)."""
    from ..shard import supervisor as supervisor_mod

    old = supervisor_mod._PING_HOOK
    supervisor_mod._PING_HOOK = fault.matches
    try:
        yield
    finally:
        supervisor_mod._PING_HOOK = old


# ----------------------------------------------------------------------
# On-disk corruption
# ----------------------------------------------------------------------
def corrupt_byte(path: str | Path, offset: int, xor: int = 0xFF) -> None:
    """Flip bits of the byte at ``offset`` (negative offsets count from
    the end), simulating silent media corruption."""
    path = Path(path)
    size = path.stat().st_size
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    if not 1 <= xor <= 0xFF:
        raise ValueError(f"xor mask must be in [1, 255], got {xor}")
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([byte ^ xor]))


def corrupt_segment(ref, offset: int = 0, xor: int = 0xFF) -> None:
    """Flip bits of one byte inside a live shared-memory plan segment.

    ``ref`` is a :class:`~repro.core.shm.SharedPlanRef`; ``offset`` is
    relative to the segment's *data block* (the five canonical arrays —
    negative offsets count from its end), so the flip lands in label
    data, the place where silent corruption would otherwise become a
    bitwise-wrong distance.  The next verifying attach (or on-demand
    ``verify()``) must detect it and raise
    :class:`~repro.errors.PlanIntegrityError`.
    """
    from ..core import shm as shm_mod

    if not 1 <= xor <= 0xFF:
        raise ValueError(f"xor mask must be in [1, 255], got {xor}")
    shared_memory = shm_mod._load_shared_memory()
    if shared_memory is None:  # pragma: no cover - platform guard
        raise RuntimeError("shared memory unsupported on platform")
    try:
        seg = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        seg = shm_mod._attach_untracked(shared_memory, ref.name)
    try:
        layout = shm_mod._Layout(ref.n, ref.k, ref.entries)
        data_bytes = layout.data_cells * shm_mod._ITEMSIZE
        if offset < 0:
            offset += data_bytes
        if not 0 <= offset < data_bytes:
            raise ValueError(
                f"offset {offset} outside data block of {data_bytes} bytes"
            )
        pos = shm_mod._HEADER_CELLS * shm_mod._ITEMSIZE + offset
        seg.buf[pos] = seg.buf[pos] ^ xor
    finally:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - lingering view
            pass


def truncate_tail(path: str | Path, nbytes: int) -> None:
    """Chop the last ``nbytes`` bytes off a file, simulating a torn write
    (a crash mid-append leaves exactly this)."""
    path = Path(path)
    size = path.stat().st_size
    if not 0 <= nbytes <= size:
        raise ValueError(f"cannot drop {nbytes} bytes of a {size}-byte file")
    with open(path, "r+b") as fh:
        fh.truncate(size - nbytes)
