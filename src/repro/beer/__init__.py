"""Shortest-beer-path application layer (beer vertices = landmarks)."""

from .beergraph import BeerGraph
from .directed import DirectedBeerDistanceIndex, directed_beer_distance_baseline
from .queries import BeerDistanceIndex, beer_distance_baseline

__all__ = [
    "BeerGraph",
    "BeerDistanceIndex",
    "beer_distance_baseline",
    "DirectedBeerDistanceIndex",
    "directed_beer_distance_baseline",
]
