"""Directed beer distances: one-way streets, dynamic stores.

Road networks have one-way streets, so the realistic beer-path setting is
directed: the detour ``s -> b -> t`` must respect arc directions, and
``d(s -> b)`` generally differs from ``d(b -> s)``.  The directed HCL
extension makes this a one-line application: beer vertices are the
landmarks of a :class:`~repro.core.directed.DirectedHCLIndex`, and the
directed ``QUERY`` (over ``L_in(s)`` x ``L_out(t)``) *is* the beer
distance.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..core.directed import DirectedDynamicHCL
from ..errors import LandmarkError, VertexError
from ..graphs.digraph import DiGraph

INF = math.inf

__all__ = ["DirectedBeerDistanceIndex", "directed_beer_distance_baseline"]


def directed_beer_distance_baseline(
    graph: DiGraph, beer_vertices: Iterable[int], s: int, t: int
) -> float:
    """Reference: ``min_b d(s -> b) + d(b -> t)`` via forward + backward sweeps."""
    import heapq

    def sweep(adj, root):
        dist = [INF] * graph.n
        dist[root] = 0.0
        heap = [(0.0, root)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adj(u):
                if d + w < dist[v]:
                    dist[v] = d + w
                    heapq.heappush(heap, (d + w, v))
        return dist

    beer = list(beer_vertices)
    if not beer:
        return INF
    from_s = sweep(graph.out_neighbors, s)  # d(s -> .)
    to_t = sweep(graph.in_neighbors, t)  # d(. -> t)
    return min(from_s[b] + to_t[b] for b in beer)


class DirectedBeerDistanceIndex:
    """Dynamic directed beer-distance oracle.

    Examples
    --------
    >>> from repro.graphs import DiGraph
    >>> g = DiGraph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
    ...     g.add_arc(u, v, 1.0)
    >>> oracle = DirectedBeerDistanceIndex(g, beer_vertices=[2])
    >>> oracle.beer_distance(0, 3)     # 0->1->2->3 passes the bar
    3.0
    >>> oracle.beer_distance(3, 1)     # 3->0->1->2->3->0->1 wraps twice
    6.0
    """

    def __init__(self, graph: DiGraph, beer_vertices: Iterable[int] = ()):
        self.graph = graph
        self._beer: set[int] = set()
        members = list(beer_vertices)
        for b in members:
            if not 0 <= b < graph.n:
                raise VertexError(f"vertex {b} out of range [0, {graph.n})")
            if b in self._beer:
                raise LandmarkError(f"duplicate beer vertex {b}")
            self._beer.add(b)
        self._dyn = DirectedDynamicHCL.build(graph, sorted(self._beer))

    @property
    def beer_vertices(self) -> set[int]:
        """Current beer vertices (fresh set)."""
        return set(self._beer)

    def open_beer_vertex(self, v: int) -> None:
        """A store opens: directed UPGRADE-LMK."""
        if not 0 <= v < self.graph.n:
            raise VertexError(f"vertex {v} out of range [0, {self.graph.n})")
        if v in self._beer:
            raise LandmarkError(f"vertex {v} is already a beer vertex")
        self._dyn.add_landmark(v)
        self._beer.add(v)

    def close_beer_vertex(self, v: int) -> None:
        """A store closes: directed DOWNGRADE-LMK."""
        if v not in self._beer:
            raise LandmarkError(f"vertex {v} is not a beer vertex")
        self._dyn.remove_landmark(v)
        self._beer.discard(v)

    def beer_distance(self, s: int, t: int) -> float:
        """Directed beer distance — a pure index lookup.

        Beer endpoints reduce to plain exact distance (the endpoint itself
        satisfies the constraint).
        """
        if s in self._beer or t in self._beer:
            return self._dyn.distance(s, t)
        return self._dyn.query(s, t)

    def distance(self, s: int, t: int) -> float:
        """Unconstrained exact ``s -> t`` distance."""
        return self._dyn.distance(s, t)
