"""Beer-distance queries: HCL-indexed (fast) and baseline (reference).

:class:`BeerDistanceIndex` is the paper's flagship application wired
end-to-end: it maintains an HCL index with the beer vertices as landmarks,
answers beer-distance queries as plain ``QUERY`` lookups (no graph
traversal), and tracks beer-vertex openings/closings with ``UPGRADE-LMK`` /
``DOWNGRADE-LMK`` instead of rebuilding.

:func:`beer_distance_baseline` is the textbook two-tree algorithm of Bacic
et al. used as ground truth in tests.
"""

from __future__ import annotations

import math

from ..core.dynhcl import DynamicHCL
from ..graphs.traversal import single_source_distances
from .beergraph import BeerGraph

INF = math.inf

__all__ = ["BeerDistanceIndex", "beer_distance_baseline"]


def beer_distance_baseline(bg: BeerGraph, s: int, t: int) -> float:
    """Reference beer distance: ``min_b d(s, b) + d(b, t)`` by two searches.

    Exploits the decomposition property: every shortest beer path is a
    shortest ``s -> b`` path followed by a shortest ``b -> t`` path.
    """
    beer = bg.beer_vertices
    if not beer:
        return INF
    dist_s = single_source_distances(bg.graph, s)
    dist_t = single_source_distances(bg.graph, t)
    return min(dist_s[b] + dist_t[b] for b in beer)


class BeerDistanceIndex:
    """Dynamic beer-distance oracle backed by DYN-HCL.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> from repro.beer import BeerGraph
    >>> g = Graph(5)
    >>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
    ...     g.add_edge(u, v, 1.0)
    >>> oracle = BeerDistanceIndex(BeerGraph(g, beer_vertices=[2]))
    >>> oracle.beer_distance(0, 4)       # 0-1-2-3-4 passes the bar at 2
    4.0
    >>> oracle.open_beer_vertex(0)
    >>> oracle.beer_distance(0, 4)       # now the bar at 0 works too
    4.0
    """

    def __init__(self, beer_graph: BeerGraph):
        self.beer_graph = beer_graph
        self._dyn = DynamicHCL.build(
            beer_graph.graph, sorted(beer_graph.beer_vertices)
        )

    @property
    def dynamic_index(self) -> DynamicHCL:
        """The underlying :class:`DynamicHCL` (for stats/inspection)."""
        return self._dyn

    # ------------------------------------------------------------------
    # Beer-vertex dynamics -> landmark dynamics
    # ------------------------------------------------------------------
    def open_beer_vertex(self, v: int) -> None:
        """A new beer vertex appears: UPGRADE-LMK keeps the index current."""
        self.beer_graph.open_beer_vertex(v)
        self._dyn.add_landmark(v)

    def close_beer_vertex(self, v: int) -> None:
        """A beer vertex disappears: DOWNGRADE-LMK keeps the index current."""
        self.beer_graph.close_beer_vertex(v)
        self._dyn.remove_landmark(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def beer_distance(self, s: int, t: int) -> float:
        """Beer distance — a pure index lookup, no graph traversal.

        Endpoints that are themselves beer vertices trivially satisfy the
        beer constraint, so the answer degenerates to the exact distance.
        """
        bg = self.beer_graph
        if bg.is_beer_vertex(s) or bg.is_beer_vertex(t):
            return self._dyn.distance(s, t)
        return self._dyn.query(s, t)

    def distance(self, s: int, t: int) -> float:
        """Plain exact distance (no beer constraint)."""
        return self._dyn.distance(s, t)

    def beer_path(self, s: int, t: int) -> list[int]:
        """A shortest beer path as a vertex sequence.

        For beer endpoints this is a plain shortest path (the endpoint
        satisfies the constraint); otherwise it is the landmark-constrained
        path realizing :meth:`beer_distance`.
        """
        from ..core.paths import landmark_constrained_path, shortest_path

        bg = self.beer_graph
        if bg.is_beer_vertex(s) or bg.is_beer_vertex(t):
            return shortest_path(self._dyn.index, s, t)
        return landmark_constrained_path(self._dyn.index, s, t)
