"""Beer graphs: weighted graphs with a distinguished beer-vertex set.

A *beer path* between ``s`` and ``t`` visits at least one beer vertex; the
*beer distance* is the weight of the cheapest such path (Bacic et al.,
ISAAC 2021).  Coudert et al. (ATMOS 2024) showed beer distances are exactly
the landmark-constrained distances of an HCL index whose landmark set is
the beer-vertex set — which is the application motivating the paper's
dynamic landmark algorithms: beer vertices (shops, gas stations, routers)
come and go, and the index must follow.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import LandmarkError, VertexError
from ..graphs.graph import Graph

__all__ = ["BeerGraph"]


class BeerGraph:
    """A graph plus a mutable set of beer vertices.

    The class is a thin, validated container; query machinery lives in
    :mod:`repro.beer.queries`.
    """

    def __init__(self, graph: Graph, beer_vertices: Iterable[int] = ()):
        self.graph = graph
        self._beer: set[int] = set()
        for b in beer_vertices:
            self.open_beer_vertex(b)

    @property
    def beer_vertices(self) -> set[int]:
        """Current beer vertices (fresh set)."""
        return set(self._beer)

    def is_beer_vertex(self, v: int) -> bool:
        """Whether ``v`` currently offers beer."""
        return v in self._beer

    def open_beer_vertex(self, v: int) -> None:
        """Mark ``v`` as a beer vertex (e.g. a store opens)."""
        if not 0 <= v < self.graph.n:
            raise VertexError(f"vertex {v} out of range [0, {self.graph.n})")
        if v in self._beer:
            raise LandmarkError(f"vertex {v} is already a beer vertex")
        self._beer.add(v)

    def close_beer_vertex(self, v: int) -> None:
        """Unmark ``v`` (e.g. a store closes or a router goes offline)."""
        if v not in self._beer:
            raise LandmarkError(f"vertex {v} is not a beer vertex")
        self._beer.discard(v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BeerGraph(n={self.graph.n}, beer={len(self._beer)})"
