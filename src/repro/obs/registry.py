"""Metric primitives: counters, gauges, histograms, spans, and the tracer.

Everything here is dependency-free and built for one dominant use case:
instrumentation that is *free when disabled*.  The global tracer
(:data:`repro.obs.OBS`) starts disabled; hot code guards every recording
with a single attribute test (``if OBS.enabled:``) and the kernels in
:mod:`repro.graphs.traversal` go further, dispatching to a separate
instrumented variant so the production loops carry no extra branches at
all.

Counters and gauges are plain slotted objects (an ``inc`` is one integer
add).  Histograms bucket observations against fixed log-scaled bounds —
:data:`LATENCY_BOUNDS` spans ~1 µs to ~2 min in powers of two, which is
the whole useful range for per-operation timings, and
:data:`SIZE_BOUNDS` covers set/batch sizes up to 2^24.  Spans nest: each
records its wall duration into ``span.<name>.seconds`` and exposes
``duration`` / ``self_seconds`` (wall minus child spans) so callers such
as the experiment harness can decompose a phase into its parts without
double counting.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Sequence

__all__ = [
    "LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "Span",
    "Tracer",
]

# Powers of two from 2^-20 (~0.95 µs) to 2^7 (128 s): per-operation
# latencies from a single fsync-free WAL append up to a full rebuild.
LATENCY_BOUNDS: tuple[float, ...] = tuple(2.0**e for e in range(-20, 8))

# Powers of four from 1 to 2^24: affected-set, resume-set and batch sizes.
SIZE_BOUNDS: tuple[float, ...] = tuple(4.0**e for e in range(0, 13))


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins numeric gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucketed histogram with total count and sum.

    Bucket ``i`` counts observations ``v <= bounds[i]``; values above the
    last bound land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = LATENCY_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs; the last ``le`` is ``inf``."""
        out = []
        acc = 0
        for le, n in zip(self.bounds, self.bucket_counts):
            acc += n
            out.append((le, acc))
        out.append((float("inf"), self.count))
        return out


class MetricsRegistry:
    """Named metric store with get-or-create accessors and snapshots.

    Metric names are dotted paths (``upgrade.settled``,
    ``wal.fsync.seconds``); the exporters in :mod:`repro.obs.export` map
    them to their output conventions.  A name permanently belongs to the
    first kind (counter/gauge/histogram) it was created as.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                bounds if bounds is not None else LATENCY_BOUNDS
            )
        return h

    def scoped(self, prefix: str) -> "ScopedRegistry":
        """A facade recording into this registry under ``prefix.``.

        Lets per-component code (one shard replica, one worker) keep
        metric names local (``rpc.retries``) while the fleet-level
        registry sees them fully qualified
        (``shard.2.replica.0.rpc.retries``) — one registry, one
        snapshot, no merging.
        """
        return ScopedRegistry(self, prefix)

    def snapshot(self) -> dict:
        """Deterministic plain-dict view of every metric (sorted names).

        Histogram buckets are rendered cumulatively and sparsely: a
        ``(le, cumulative)`` pair appears only where the bucket itself is
        non-empty, plus the final ``+Inf`` total.  ``le`` is a float
        except the last, which is the string ``"+Inf"`` so the snapshot
        round-trips through JSON.
        """
        histograms = {}
        for name in sorted(self._histograms):
            h = self._histograms[name]
            buckets: list[list] = []
            acc = 0
            for le, n in zip(h.bounds, h.bucket_counts):
                if n:
                    acc += n
                    buckets.append([le, acc])
            buckets.append(["+Inf", h.count])
            histograms[name] = {
                "count": h.count,
                "sum": h.sum,
                "buckets": buckets,
            }
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": histograms,
        }


class ScopedRegistry:
    """Name-prefixing facade over a :class:`MetricsRegistry`.

    Quacks like the registry for the get-or-create accessors (the only
    surface component code needs); every name is stored in the backing
    registry as ``<prefix>.<name>``.  Scopes nest: ``scoped()`` on a
    scoped registry stacks prefixes.
    """

    __slots__ = ("_backing", "prefix")

    def __init__(self, backing: MetricsRegistry, prefix: str) -> None:
        self._backing = backing
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._backing.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._backing.gauge(f"{self.prefix}.{name}")

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None
    ) -> Histogram:
        return self._backing.histogram(f"{self.prefix}.{name}", bounds)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._backing, f"{self.prefix}.{prefix}")


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    duration = 0.0
    self_seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """One timed region; nests via the owning tracer's span stack.

    On exit the wall duration goes into the ``span.<name>.seconds``
    histogram of the tracer's registry, and ``duration`` /
    ``self_seconds`` (duration minus directly-enclosed child spans)
    become readable on the object.
    """

    __slots__ = ("name", "_tracer", "_start", "_child_seconds", "duration", "self_seconds")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self._tracer = tracer
        self._child_seconds = 0.0
        self.duration = 0.0
        self.self_seconds = 0.0

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration = time.perf_counter() - self._start
        self.self_seconds = self.duration - self._child_seconds
        stack = self._tracer._stack
        stack.pop()
        if stack:
            stack[-1]._child_seconds += self.duration
        registry = self._tracer.registry
        if registry is not None:
            registry.histogram(f"span.{self.name}.seconds").observe(
                self.duration
            )
        return False


class Tracer:
    """Span factory + gated recording facade over a registry.

    ``enabled`` is the one attribute hot paths test.  While disabled,
    :meth:`span` returns a shared no-op span and :meth:`count` /
    :meth:`observe` return immediately, so instrumentation costs one
    attribute load and one branch — measured under 2% on the repo's
    gated benchmark segments (``benchmarks/bench_obs.py``).
    """

    __slots__ = ("enabled", "registry", "_stack")

    def __init__(
        self, registry: MetricsRegistry | None = None, enabled: bool = False
    ) -> None:
        self.registry = registry
        self.enabled = enabled and registry is not None
        self._stack: list[Span] = []

    def enable(self, registry: MetricsRegistry | None = None) -> MetricsRegistry:
        """Turn recording on (creating a fresh registry if none exists)."""
        if registry is not None:
            self.registry = registry
        elif self.registry is None:
            self.registry = MetricsRegistry()
        self.enabled = True
        return self.registry

    def disable(self) -> None:
        self.enabled = False

    def span(self, name: str):
        """A context-manager span, or the shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, self)

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(n)

    def observe(
        self, name: str, value: float, bounds: Sequence[float] | None = None
    ) -> None:
        if self.enabled:
            self.registry.histogram(name, bounds).observe(value)
