"""``repro.obs`` — zero-dependency observability for the HCL library.

Three primitives (:class:`Counter` / :class:`Gauge` / :class:`Histogram`)
live in a :class:`MetricsRegistry`; a :class:`Tracer` layers nested
context-manager :class:`Span` timing on top.  The module-level
:data:`OBS` tracer is the hook every hot path in the library checks —
Dijkstra kernels, the UPGRADE-LMK / DOWNGRADE-LMK algorithms, the query
cache and the WAL all record into ``OBS.registry`` when (and only when)
tracing is on.

Tracing is **disabled by default** and costs one attribute test per
guarded site when off (<2% on the gated segments of
``benchmarks/bench_obs.py``).  Turn it on for a scope with::

    from repro import obs

    with obs.observed() as registry:
        index = build_hcl(graph, landmarks)
        upgrade_landmark(index, 42)
    print(obs.render_prometheus(registry.snapshot()))

or process-wide with :func:`enable` / :func:`disable`.
:class:`repro.service.HCLService` additionally keeps an always-on
registry of its own (request latencies, batch sizes, cache hit rates)
exposed through ``HCLService.metrics()`` regardless of :data:`OBS`.
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import merge_snapshots, render_json, render_prometheus
from .registry import (
    LATENCY_BOUNDS,
    SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
    Span,
    Tracer,
)

__all__ = [
    "LATENCY_BOUNDS",
    "SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "Span",
    "Tracer",
    "OBS",
    "enable",
    "disable",
    "observed",
    "render_prometheus",
    "render_json",
    "merge_snapshots",
]

#: The global tracer all library hot paths consult.  Disabled by default.
OBS = Tracer()


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn on global tracing; returns the active registry."""
    return OBS.enable(registry)


def disable() -> None:
    """Turn off global tracing (the registry and its data are kept)."""
    OBS.disable()


@contextmanager
def observed(registry: MetricsRegistry | None = None):
    """Scope-limited tracing: enable :data:`OBS` on ``registry`` (a fresh
    one when omitted), yield it, and restore the previous tracer state on
    exit — exception-safe, so benchmarks and tests cannot leak an enabled
    tracer into later code.
    """
    active = registry if registry is not None else MetricsRegistry()
    prev_registry = OBS.registry
    prev_enabled = OBS.enabled
    OBS.registry = active
    OBS.enabled = True
    try:
        yield active
    finally:
        OBS.enabled = prev_enabled
        OBS.registry = prev_registry
