"""Snapshot exporters: Prometheus text format and canonical JSON.

Both render the plain-dict snapshots produced by
:meth:`repro.obs.MetricsRegistry.snapshot` — they never touch live
metric objects, so a snapshot can be merged, shipped across a process
boundary, or diffed before rendering.

The Prometheus renderer follows the text exposition format: dotted
metric names become underscore-separated with a ``repro_`` prefix,
counters gain the ``_total`` suffix, histograms expand into
``_bucket{le="..."}`` / ``_sum`` / ``_count`` series.  Output is fully
deterministic (sorted names, fixed float formatting), which is what the
golden-file tests in ``tests/test_obs.py`` pin.
"""

from __future__ import annotations

import json

__all__ = ["render_prometheus", "render_json", "merge_snapshots"]

_PREFIX = "repro_"


def _series_name(name: str) -> str:
    return _PREFIX + name.replace(".", "_").replace("-", "_")


def _fmt(value: float) -> str:
    """Deterministic number formatting (integers without a trailing .0)."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        series = _series_name(name) + "_total"
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        series = _series_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        series = _series_name(name)
        lines.append(f"# TYPE {series} histogram")
        for le, cumulative in hist["buckets"]:
            le_txt = le if isinstance(le, str) else _fmt(le)
            lines.append(
                f'{series}_bucket{{le="{le_txt}"}} {_fmt(cumulative)}'
            )
        lines.append(f"{series}_sum {_fmt(hist['sum'])}")
        lines.append(f"{series}_count {_fmt(hist['count'])}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict) -> str:
    """Render a snapshot as stable, human-diffable JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def merge_snapshots(base: dict, extra: dict) -> dict:
    """Combine two snapshots: counters add, gauges last-write-wins,
    histograms merge bucket-by-bucket (matched on ``le``).

    Used by :meth:`repro.service.HCLService.metrics` to fold the global
    tracer's registry into the service's own when both are active.
    """
    out = {
        "counters": dict(base.get("counters", {})),
        "gauges": dict(base.get("gauges", {})),
        "histograms": {
            name: {
                "count": h["count"],
                "sum": h["sum"],
                "buckets": [list(b) for b in h["buckets"]],
            }
            for name, h in base.get("histograms", {}).items()
        },
    }
    for name, value in extra.get("counters", {}).items():
        out["counters"][name] = out["counters"].get(name, 0) + value
    for name, value in extra.get("gauges", {}).items():
        out["gauges"][name] = value
    for name, h in extra.get("histograms", {}).items():
        mine = out["histograms"].get(name)
        if mine is None:
            out["histograms"][name] = {
                "count": h["count"],
                "sum": h["sum"],
                "buckets": [list(b) for b in h["buckets"]],
            }
            continue
        # Cumulative pairs -> per-bucket deltas, summed by le, re-cumulated.
        deltas: dict = {}
        for pairs in (mine["buckets"], h["buckets"]):
            prev = 0
            for le, cumulative in pairs:
                key = le if isinstance(le, str) else float(le)
                deltas[key] = deltas.get(key, 0) + (cumulative - prev)
                prev = cumulative
        finite = sorted(k for k in deltas if not isinstance(k, str))
        acc = 0
        buckets: list[list] = []
        for le in finite:
            acc += deltas[le]
            buckets.append([le, acc])
        total = mine["count"] + h["count"]
        buckets.append(["+Inf", total])
        out["histograms"][name] = {
            "count": total,
            "sum": mine["sum"] + h["sum"],
            "buckets": buckets,
        }
    out["counters"] = dict(sorted(out["counters"].items()))
    out["gauges"] = dict(sorted(out["gauges"].items()))
    out["histograms"] = dict(sorted(out["histograms"].items()))
    return out
