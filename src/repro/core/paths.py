"""Path reporting on HCL indexes (paper future-work item i, second half).

The paper notes (§2) that an HCL index can report paths, not just
distances, by augmenting entries with predecessors.  The canonical index
actually needs *no* extra storage for this: if ``(r, d) ∈ L(v)`` then some
shortest ``r -> v`` path avoids other landmarks internally, and its
predecessor ``w`` of ``v`` is itself covered by ``r`` with
``d(r, w) + ω(w, v) = d`` — exactly the certificate Algorithm 1's cleanup
tests.  Walking that certificate greedily reconstructs the label path; the
highway leg between two landmarks decomposes recursively at intermediate
landmarks read off ``δ_H`` (and bottoms out in a short landmark-avoiding
local search).

Provided queries:

* :func:`label_path` — the covered path ``r .. v`` behind a label entry;
* :func:`highway_path` — a shortest path between two landmarks;
* :func:`landmark_constrained_path` — a path realizing ``QUERY(s, t)``;
* :func:`shortest_path` — an exact shortest path (bound + local search).
"""

from __future__ import annotations

import heapq
import math

from ..errors import LandmarkError, ReproError
from .index import HCLIndex

INF = math.inf

__all__ = [
    "label_path",
    "highway_path",
    "landmark_constrained_path",
    "shortest_path",
]


def label_path(index: HCLIndex, r: int, v: int) -> list[int]:
    """The landmark-avoiding shortest path ``r .. v`` behind ``(r, ·) ∈ L(v)``.

    Walks the certificate chain: each step moves to a neighbor ``w`` with
    ``L(w)[r] + ω(w, u) = L(u)[r]``; distances strictly decrease, so the
    walk reaches ``r`` in at most ``n`` steps.
    """
    labeling = index.labeling
    if r not in labeling.label(v):
        raise LandmarkError(f"vertex {v} is not covered by landmark {r}")
    path = [v]
    u = v
    du = labeling.label(u)[r]
    neighbors = index.graph.neighbors
    while u != r:
        step = None
        for w, weight in neighbors(u):
            dw = labeling.label(w).get(r)
            if dw is not None and dw + weight == du:
                step = (w, dw)
                break
        if step is None:  # pragma: no cover - canonical indexes always chain
            raise ReproError(
                f"broken certificate chain for landmark {r} at vertex {u}"
            )
        u, du = step
        path.append(u)
    path.reverse()
    return path


def _direct_landmark_leg(index: HCLIndex, a: int, b: int) -> list[int]:
    """Shortest ``a``-``b`` path with no internal landmark (local search)."""
    graph = index.graph
    landmarks = index.highway.landmarks
    bound = index.highway.distance(a, b)
    dist = {a: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, a)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF):
            continue
        if u == b:
            break
        if u != a and u in landmarks:
            continue  # internal landmarks are forbidden on this leg
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd <= bound and nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if dist.get(b) != bound:  # pragma: no cover - guarded by decomposition
        raise ReproError(f"no landmark-avoiding shortest path {a} -> {b}")
    path = [b]
    while path[-1] != a:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def highway_path(index: HCLIndex, a: int, b: int) -> list[int]:
    """A shortest path between landmarks ``a`` and ``b``.

    Recursively splits at any intermediate landmark ``m`` with
    ``δ_H(a, m) + δ_H(m, b) = δ_H(a, b)``; when none exists every shortest
    ``a``-``b`` path is landmark-free inside and a bounded local search
    reconstructs it.  Positive weights make both sub-legs strictly shorter,
    so the recursion terminates.
    """
    if a not in index.highway or b not in index.highway:
        raise LandmarkError(f"({a}, {b}) is not a landmark pair")
    if a == b:
        return [a]
    total = index.highway.distance(a, b)
    if total == INF:
        raise ReproError(f"landmarks {a} and {b} are disconnected")
    row_a = index.highway.row(a)
    row_b = index.highway.row(b)
    for m in index.highway.landmarks:
        if m == a or m == b:
            continue
        da, db = row_a.get(m, INF), row_b.get(m, INF)
        if da + db == total and da > 0 and db > 0:
            left = highway_path(index, a, m)
            right = highway_path(index, m, b)
            return left + right[1:]
    return _direct_landmark_leg(index, a, b)


def landmark_constrained_path(index: HCLIndex, s: int, t: int) -> list[int]:
    """A path realizing the landmark-constrained distance ``QUERY(s, t)``.

    Returns the concatenation ``s .. r_i .. r_j .. t`` for the optimal
    entry pair; raises if no landmark-constrained path exists.
    """
    ls = index.labeling.label(s)
    lt = index.labeling.label(t)
    best = INF
    best_pair: tuple[int, int] | None = None
    for ri, di in ls.items():
        row = index.highway.row(ri)
        for rj, dj in lt.items():
            d = di + row.get(rj, INF) + dj
            if d < best:
                best = d
                best_pair = (ri, rj)
    if best_pair is None or best == INF:
        raise ReproError(f"no landmark-constrained path between {s} and {t}")
    ri, rj = best_pair
    first = label_path(index, ri, s)[::-1]  # s .. ri
    middle = highway_path(index, ri, rj)  # ri .. rj
    last = label_path(index, rj, t)  # rj .. t
    return first + middle[1:] + last[1:]


def shortest_path(index: HCLIndex, s: int, t: int) -> list[int]:
    """An exact shortest ``s``-``t`` path.

    Uses the landmark-constrained upper bound to prune a parent-tracking
    Dijkstra restricted exactly as the paper's refinement search; falls
    back to the landmark-constrained path when that is optimal.
    """
    if s == t:
        return [s]
    ub = index.query(s, t)
    graph = index.graph
    landmarks = index.highway.landmarks
    dist = {s: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, s)]
    best_inner = INF
    if s not in landmarks and t not in landmarks:
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF) or d >= min(ub, best_inner):
                continue
            if u == t:
                best_inner = d
                break
            if u != s and u in landmarks:
                continue
            for v, w in graph.neighbors(u):
                if v in landmarks and v != t:
                    continue
                nd = d + w
                if nd < dist.get(v, INF) and nd < min(ub, best_inner):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
    if best_inner < ub:
        path = [t]
        while path[-1] != s:
            path.append(parent[path[-1]])
        path.reverse()
        return path
    if ub == INF:
        raise ReproError(f"vertices {s} and {t} are disconnected")
    return landmark_constrained_path(index, s, t)
