"""Write-ahead log for committed landmark mutations.

A checkpoint (see :mod:`repro.core.serialization`) captures the index at
one instant; the WAL is the durable record of every landmark mutation
committed *since*, so a crashed service can be reconstructed as
``checkpoint + replay(WAL suffix)`` without re-running ``BUILDHCL``.

Format
------
The file starts with the 5-byte magic ``DWAL\\x01``.  Each record begins
with a 17-byte frame::

    <Q seq> <B op> <I arg> <I crc32>

``seq`` is a strictly increasing sequence number (the first record of a
file may start anywhere; later records must each be exactly one higher)
and ``op`` is 1 for ``add`` / 2 for ``remove`` — for those, ``arg`` is
the vertex and ``crc32`` covers the preceding 13 bytes.

``op`` 3 is a ``BATCH`` record: one committed
:meth:`~repro.core.dynhcl.DynamicHCL.apply_batch` call, persisted as a
single atomic unit however many operations it carried.  ``arg`` is the
byte length of a payload that directly follows the frame::

    <I n_add> <I n_rm> <I n_edge>
    n_add  × <I vertex>
    n_rm   × <I vertex>
    n_edge × <I u> <I v> <d new_weight>

and ``crc32`` covers the 13-byte frame body *plus* the payload, so a torn
payload invalidates the whole record — recovery replays the entire batch
or none of it.  Appends are flushed and ``fsync``'d by default, so a
record that :meth:`WriteAheadLog.append` returned for is on disk.

Crash tolerance is asymmetric by design: *writing* is strict (any OS error
surfaces as :class:`~repro.errors.WALError`), while *reading* is tolerant —
:func:`scan_wal` stops silently at the first truncated, checksum-corrupt,
or out-of-sequence record, because a torn tail is exactly what a crash
mid-append leaves behind.  Everything before the first bad record was
acknowledged as committed and is replayed; everything after was not
durable and is discarded.  Opening a log for append repairs such a tail by
truncating it.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Union

from ..errors import WALError
from ..obs import OBS

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "BatchPayload",
    "scan_wal",
    "OP_ADD",
    "OP_REMOVE",
    "OP_BATCH",
]

_WAL_MAGIC = b"DWAL\x01"
_RECORD = struct.Struct("<QBI")
_CRC = struct.Struct("<I")
_RECORD_SIZE = _RECORD.size + _CRC.size

OP_ADD = 1
OP_REMOVE = 2
OP_BATCH = 3
# Only the fixed-size single-mutation ops; BATCH has its own append/scan
# paths (variable-length payload, different crc coverage).
_OP_NAMES = {OP_ADD: "add", OP_REMOVE: "remove"}
_OP_CODES = {name: code for code, name in _OP_NAMES.items()}

_BATCH_HEADER = struct.Struct("<III")
_VERTEX = struct.Struct("<I")
_EDGE = struct.Struct("<IId")
# Sanity cap on the payload-length field before trusting it for a read:
# a corrupt frame must not make the scanner allocate gigabytes.
_MAX_BATCH_PAYLOAD = 1 << 28


@dataclass(frozen=True)
class BatchPayload:
    """Decoded body of one ``BATCH`` record: the netted operations."""

    adds: tuple[int, ...] = ()
    removes: tuple[int, ...] = ()
    edge_updates: tuple[tuple[int, int, float], ...] = ()

    @property
    def ops(self) -> int:
        return len(self.adds) + len(self.removes) + len(self.edge_updates)


def _encode_batch(payload: BatchPayload) -> bytes:
    parts = [
        _BATCH_HEADER.pack(
            len(payload.adds), len(payload.removes), len(payload.edge_updates)
        )
    ]
    parts.extend(_VERTEX.pack(v) for v in payload.adds)
    parts.extend(_VERTEX.pack(v) for v in payload.removes)
    parts.extend(_EDGE.pack(u, v, w) for u, v, w in payload.edge_updates)
    return b"".join(parts)


def _decode_batch(blob: bytes) -> BatchPayload:
    n_add, n_rm, n_edge = _BATCH_HEADER.unpack_from(blob, 0)
    off = _BATCH_HEADER.size
    need = off + (n_add + n_rm) * _VERTEX.size + n_edge * _EDGE.size
    if len(blob) != need:
        raise WALError(
            f"batch payload length {len(blob)} != {need} implied by header"
        )
    adds = tuple(
        _VERTEX.unpack_from(blob, off + i * _VERTEX.size)[0]
        for i in range(n_add)
    )
    off += n_add * _VERTEX.size
    removes = tuple(
        _VERTEX.unpack_from(blob, off + i * _VERTEX.size)[0]
        for i in range(n_rm)
    )
    off += n_rm * _VERTEX.size
    edges = tuple(
        _EDGE.unpack_from(blob, off + i * _EDGE.size) for i in range(n_edge)
    )
    return BatchPayload(adds, removes, edges)


@dataclass(frozen=True)
class WalRecord:
    """One committed mutation.

    ``kind`` is ``"add"``, ``"remove"`` or ``"batch"``.  For single
    mutations ``vertex`` is the landmark; for a batch it is the netted
    operation count and ``batch`` holds the decoded payload.
    """

    seq: int
    kind: str
    vertex: int
    batch: BatchPayload | None = None


@dataclass(frozen=True)
class WalScan:
    """Result of reading a WAL file tolerantly.

    ``truncated`` is True when the file ends in a torn/corrupt tail (the
    bytes past ``good_bytes`` were discarded); ``records`` always holds
    exactly the committed prefix.
    """

    records: tuple[WalRecord, ...]
    truncated: bool
    good_bytes: int

    @property
    def last_seq(self) -> int:
        """Sequence number of the last committed record (0 when empty)."""
        return self.records[-1].seq if self.records else 0


def _scan_stream(fh: BinaryIO) -> WalScan:
    header = fh.read(len(_WAL_MAGIC))
    if header != _WAL_MAGIC:
        raise WALError("not a DWAL write-ahead log (bad magic)")
    records: list[WalRecord] = []
    good = len(_WAL_MAGIC)
    expected: int | None = None
    while True:
        blob = fh.read(_RECORD_SIZE)
        if len(blob) < _RECORD_SIZE:
            return WalScan(tuple(records), truncated=bool(blob), good_bytes=good)
        body, crc_bytes = blob[: _RECORD.size], blob[_RECORD.size :]
        (crc,) = _CRC.unpack(crc_bytes)
        seq, op, arg = _RECORD.unpack(body)
        if op in _OP_NAMES:
            if crc != zlib.crc32(body) or (
                expected is not None and seq != expected
            ):
                return WalScan(tuple(records), truncated=True, good_bytes=good)
            records.append(WalRecord(seq, _OP_NAMES[op], arg))
            good += _RECORD_SIZE
        elif op == OP_BATCH:
            # ``arg`` is the payload length, but the frame's integrity is
            # only proven by a crc that *includes* the payload — so cap the
            # read before trusting the still-unverified length field.
            if arg > _MAX_BATCH_PAYLOAD:
                return WalScan(tuple(records), truncated=True, good_bytes=good)
            payload = fh.read(arg)
            if (
                len(payload) < arg
                or crc != zlib.crc32(body + payload)
                or (expected is not None and seq != expected)
            ):
                return WalScan(tuple(records), truncated=True, good_bytes=good)
            try:
                batch = _decode_batch(payload)
            except (WALError, struct.error):
                return WalScan(tuple(records), truncated=True, good_bytes=good)
            records.append(WalRecord(seq, "batch", batch.ops, batch))
            good += _RECORD_SIZE + arg
        else:
            return WalScan(tuple(records), truncated=True, good_bytes=good)
        expected = seq + 1


def scan_wal(source: Union[str, Path, BinaryIO]) -> WalScan:
    """Read a WAL tolerantly: stop at the first bad record, never raise
    for a torn tail.  A missing file scans as empty (a WAL that was never
    written holds no committed mutations); a present-but-unreadable
    *header* still raises :class:`~repro.errors.WALError`."""
    if isinstance(source, (str, Path)):
        try:
            fh = open(source, "rb")
        except FileNotFoundError:
            return WalScan((), truncated=False, good_bytes=0)
        with fh:
            return _scan_stream(fh)
    return _scan_stream(source)


class WriteAheadLog:
    """Append-only, fsync'd log of committed landmark mutations.

    Opening an existing file scans it, repairs a torn tail by truncation,
    and continues the sequence numbering; opening a fresh path writes the
    header.  ``sync=False`` trades durability for speed (flush without
    fsync) — useful in tests and acceptable where the filesystem journals.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "index.wal")
    >>> wal = WriteAheadLog(path)
    >>> wal.append("add", 7)
    1
    >>> wal.append("remove", 7)
    2
    >>> wal.close()
    >>> [ (r.kind, r.vertex) for r in scan_wal(path).records ]
    [('add', 7), ('remove', 7)]
    """

    def __init__(self, path: str | Path, sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self._closed = False
        try:
            if self.path.exists() and self.path.stat().st_size > 0:
                scan = scan_wal(self.path)
                self._seq = scan.last_seq
                self._fh = open(self.path, "r+b")
                self._fh.truncate(scan.good_bytes)  # repair any torn tail
                self._fh.seek(scan.good_bytes)
            else:
                self._seq = 0
                self._fh = open(self.path, "wb")
                self._fh.write(_WAL_MAGIC)
                self._flush()
        except OSError as exc:
            raise WALError(f"cannot open WAL at {self.path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when empty)."""
        return self._seq

    def append(self, kind: str, vertex: int) -> int:
        """Durably append one mutation; returns its sequence number."""
        if self._closed:
            raise WALError(f"WAL at {self.path} is closed")
        op = _OP_CODES.get(kind)
        if op is None:
            raise WALError(f"unknown WAL operation {kind!r}")
        seq = self._seq + 1
        body = _RECORD.pack(seq, op, vertex)
        start = time.perf_counter() if OBS.enabled else 0.0
        try:
            self._fh.write(body + _CRC.pack(zlib.crc32(body)))
            self._flush()
        except OSError as exc:
            raise WALError(f"cannot append to WAL at {self.path}: {exc}") from exc
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("wal.appends").inc()
            reg.histogram("wal.append.seconds").observe(
                time.perf_counter() - start
            )
        self._seq = seq
        return seq

    def append_batch(
        self,
        adds: Iterable[int] = (),
        removes: Iterable[int] = (),
        edge_updates: Iterable[tuple[int, int, float]] = (),
    ) -> int:
        """Durably append one ``BATCH`` record; returns its sequence number.

        The whole batch occupies a single sequence number and a single
        crc-covered record: recovery either replays every operation in it
        or (torn tail) none — there is no partially-durable batch.
        """
        if self._closed:
            raise WALError(f"WAL at {self.path} is closed")
        payload = _encode_batch(
            BatchPayload(
                tuple(int(v) for v in adds),
                tuple(int(v) for v in removes),
                tuple(
                    (int(u), int(v), float(w)) for u, v, w in edge_updates
                ),
            )
        )
        if len(payload) > _MAX_BATCH_PAYLOAD:
            raise WALError(
                f"batch payload of {len(payload)} bytes exceeds the "
                f"{_MAX_BATCH_PAYLOAD}-byte record cap"
            )
        seq = self._seq + 1
        body = _RECORD.pack(seq, OP_BATCH, len(payload))
        start = time.perf_counter() if OBS.enabled else 0.0
        try:
            self._fh.write(
                body + _CRC.pack(zlib.crc32(body + payload)) + payload
            )
            self._flush()
        except OSError as exc:
            raise WALError(f"cannot append to WAL at {self.path}: {exc}") from exc
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("wal.appends").inc()
            reg.counter("wal.batch_appends").inc()
            reg.histogram("wal.append.seconds").observe(
                time.perf_counter() - start
            )
        self._seq = seq
        return seq

    def append_all(self, records: Iterable[tuple[str, int]]) -> int:
        """Append many mutations; returns the last sequence number."""
        for kind, vertex in records:
            self.append(kind, vertex)
        return self._seq

    def _flush(self) -> None:
        self._fh.flush()
        if self.sync:
            if OBS.enabled:
                start = time.perf_counter()
                os.fsync(self._fh.fileno())
                OBS.registry.histogram("wal.fsync.seconds").observe(
                    time.perf_counter() - start
                )
                OBS.registry.counter("wal.fsyncs").inc()
            else:
                os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all records (after a checkpoint); sequence keeps rising.

        The next record still gets ``last_seq + 1``: a scanner accepts any
        starting sequence, and monotonicity is what ties records to the
        ``wal_seq`` stored in checkpoints.
        """
        if self._closed:
            raise WALError(f"WAL at {self.path} is closed")
        try:
            self._fh.seek(len(_WAL_MAGIC))
            self._fh.truncate(len(_WAL_MAGIC))
            self._flush()
        except OSError as exc:
            raise WALError(f"cannot reset WAL at {self.path}: {exc}") from exc

    def scan(self) -> WalScan:
        """Tolerant scan of this log's file (committed records only)."""
        self._fh.flush()
        return scan_wal(self.path)

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._closed:
            self._flush()
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteAheadLog(path={str(self.path)!r}, last_seq={self._seq})"
