"""Self-healing background auditor for a live HCL index.

Bit rot, torn recoveries and plain bugs all surface the same way: some
label row or highway cell silently disagrees with the graph, and every
query routed through it is wrong *without any exception ever firing*.
The :class:`IndexAuditor` is the counterpart of crash safety for this
silent failure mode — an incremental checker/repairer a deployment ticks
from a background loop:

* Each :meth:`~IndexAuditor.tick` draws a fresh batch of vertex pairs
  from the shared sampling stream
  (:func:`repro.core.invariants.sample_vertex_pairs` — the same path the
  crash-recovery probe grades with, so the two verdicts are comparable)
  and checks the cover property and ``δ_H`` consistency against
  ground-truth Dijkstra/BFS, restricted to a rotating window of landmark
  rows so a tick's cost stays bounded; the window cycles through the
  whole landmark set every ``⌈|R| / landmarks_per_tick⌉`` ticks.
* A violation *quarantines* the suspect landmark rows — the named
  constrained landmark plus every landmark whose label entries
  participated in the failing decode — and triggers repair: the row's
  ground truth is recomputed with the ``BUILDHCL`` kernel
  (:func:`repro.graphs.traversal.flagged_single_source` via the shared
  per-landmark pass), which reads only the graph, *never* the
  possibly-corrupt index, and the row is rewritten inside an
  :class:`~repro.core.transaction.IndexTransaction` so a fault mid-repair
  rolls back cleanly.
* Repaired rows leave quarantine; rows whose repair failed stay
  quarantined (reported through ``HCLService.health()``), feed the
  service's :class:`~repro.breaker.CircuitBreaker`, and are retried on
  the next tick.

The auditor never raises from :meth:`~IndexAuditor.tick` — it is designed
to run unattended; outcomes land in :class:`AuditFinding` records, the
metrics registry, and the :meth:`~IndexAuditor.summary` health report.

:class:`PlanAuditor` is the same quarantine-and-repair shape one layer
up: where :class:`IndexAuditor` grades the *dict labeling* against the
graph, :class:`PlanAuditor` grades the **compiled plan** (and its
shared-memory segment) against the dict labeling — the authoritative
store the plan was compiled from.  Each tick decodes a sample of plan
rows back to ``{landmark: distance}`` and compares them bitwise with
``labeling.label(v)``, spot-checks ``δ_H`` cells, and re-verifies the
owner's segment checksums; any mismatch quarantines the bad artifact and
*republishes* — a fresh epoch via
:meth:`~repro.core.epoch.PlanRegistry.republish` in epoch mode, a
dropped cached plan plus a version bump otherwise — because the plan is
derived state: the repair is recompilation, never patching.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ReproError
from .build import _landmark_pass
from .dynhcl import DynamicHCL
from .invariants import (
    find_cover_violations,
    find_highway_violations,
    sample_vertex_pairs,
)
from .transaction import IndexTransaction

__all__ = [
    "AuditFinding",
    "AuditTickReport",
    "IndexAuditor",
    "PlanAuditReport",
    "PlanAuditor",
]


@dataclass(frozen=True)
class AuditFinding:
    """One corrupted landmark row the auditor detected.

    ``repaired`` tells whether the in-transaction rewrite committed;
    ``detail`` carries the first violation (or repair failure) observed.
    """

    tick: int
    kind: str  # "cover" | "highway" | "row"
    landmark: int
    detail: str
    repaired: bool


@dataclass(frozen=True)
class AuditTickReport:
    """Outcome of one :meth:`IndexAuditor.tick`."""

    tick: int
    pairs_checked: int
    landmarks_checked: tuple[int, ...]
    violations: int
    repaired: tuple[int, ...]
    quarantined: tuple[int, ...]

    @property
    def clean(self) -> bool:
        """No violation found and nothing left quarantined."""
        return self.violations == 0 and not self.quarantined


class IndexAuditor:
    """Incremental checker/repairer ticking over a :class:`DynamicHCL`.

    Parameters
    ----------
    dyn:
        The live index to audit.  Repairs commit through an
        :class:`~repro.core.transaction.IndexTransaction` and bump the
        facade's version counter, so query caches invalidate.
    pairs_per_tick:
        Vertex pairs sampled (from a persistent deterministic stream)
        per tick.
    landmarks_per_tick:
        Width of the rotating landmark-row window checked per tick.
        Quarantined rows are always re-checked on top of the window.
    seed:
        Seed of the pair-sampling stream.
    breaker:
        Optional :class:`~repro.breaker.CircuitBreaker`: an unrepairable
        row counts as an infrastructure failure (the write path is
        provably unhealthy), so repeated repair failures trip it.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry` receiving
        ``audit.*`` counters.
    """

    def __init__(
        self,
        dyn: DynamicHCL,
        pairs_per_tick: int = 8,
        landmarks_per_tick: int = 2,
        seed: int = 0,
        breaker=None,
        registry=None,
    ):
        self._dyn = dyn
        self.pairs_per_tick = pairs_per_tick
        self.landmarks_per_tick = landmarks_per_tick
        self._rng = random.Random(seed)
        self._breaker = breaker
        self._registry = registry
        self._cursor = 0
        self.ticks = 0
        self.pairs_checked = 0
        self.violations_found = 0
        self.repairs = 0
        self.repair_failures = 0
        self.quarantined: set[int] = set()
        self.findings: list[AuditFinding] = []

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------
    def _window(self, rows: list[int]) -> list[int]:
        """Next rotating slice of landmark rows, plus any quarantined ones."""
        k = min(self.landmarks_per_tick, len(rows))
        start = self._cursor % len(rows)
        window = {rows[(start + i) % len(rows)] for i in range(k)}
        self._cursor += k
        return sorted(window | (self.quarantined & set(rows)))

    def tick(self) -> AuditTickReport:
        """Run one audit increment; never raises.

        Samples pairs, grades the current landmark window, repairs every
        corrupt row it can attribute, and re-grades the failing pairs to
        confirm the fix.  If the restricted window cannot explain a
        violation the check escalates to a full row sweep — self-healing
        beats incrementality once corruption is in hand.
        """
        self.ticks += 1
        index = self._dyn.index
        rows = sorted(index.landmarks)
        if not rows:
            return self._report((), 0, 0, (), ())
        window = self._window(rows)
        pairs = sample_vertex_pairs(
            index, sample=self.pairs_per_tick, rng=self._rng
        )
        self.pairs_checked += len(pairs)

        cover = find_cover_violations(index, pairs=pairs, landmarks=window)
        highway = find_highway_violations(index, landmarks=window)
        nviol = len(cover) + len(highway)
        self.violations_found += nviol
        if self._registry is not None:
            self._registry.counter("audit.ticks").inc()
            self._registry.counter("audit.pairs_checked").inc(len(pairs))
            if nviol:
                self._registry.counter("audit.violations").inc(nviol)
        repaired: list[int] = []
        if nviol or self.quarantined:
            suspects = self._suspects(index, cover, highway)
            repaired = self._repair_suspects(suspects, cover, highway)
            if cover:
                # Confirm on the very pairs that failed; a survivor means
                # the corruption lives outside the suspect set — escalate
                # to every landmark row.
                failing = [(v.s, v.t) for v in cover]
                still = find_cover_violations(index, pairs=failing)
                if still:
                    repaired += self._repair_suspects(
                        set(rows) - set(repaired), cover=still, highway=()
                    )
        return self._report(
            tuple(window), len(pairs), nviol, tuple(sorted(set(repaired))),
            tuple(sorted(self.quarantined)),
        )

    def _report(
        self, window, pairs_checked, nviol, repaired, quarantined
    ) -> AuditTickReport:
        return AuditTickReport(
            tick=self.ticks,
            pairs_checked=pairs_checked,
            landmarks_checked=window,
            violations=nviol,
            repaired=repaired,
            quarantined=quarantined,
        )

    # ------------------------------------------------------------------
    # Attribution and repair
    # ------------------------------------------------------------------
    def _suspects(self, index, cover, highway) -> set[int]:
        """Landmark rows that could explain the observed violations.

        A failing decode for constrained landmark ``r`` reads ``L(s)``,
        ``L(t)`` and ``δ_H(·, r)``; any landmark appearing there may own
        the corrupt value, so all of them are verified against ground
        truth (cheap rows verify clean and are skipped by the repair).
        """
        label = index.labeling.label
        suspects = set(self.quarantined & index.landmarks)
        for v in cover:
            suspects.add(v.landmark)
            suspects.update(label(v.s))
            suspects.update(label(v.t))
        for h in highway:
            suspects.add(h.r1)
            suspects.add(h.r2)
        return suspects & index.landmarks

    def _repair_suspects(self, suspects, cover, highway) -> list[int]:
        """Verify each suspect row; rewrite the corrupt ones. Never raises."""
        detail_of: dict[int, str] = {}
        for v in cover:
            detail_of.setdefault(v.landmark, str(v))
        for h in highway:
            detail_of.setdefault(h.r1, str(h))
        repaired: list[int] = []
        for r in sorted(suspects):
            outcome = self._verify_and_repair(r, detail_of.get(r, ""))
            if outcome == "repaired":
                repaired.append(r)
        return repaired

    def _verify_and_repair(self, r: int, detail: str) -> str:
        """Compare row ``r`` against ground truth; rewrite on mismatch.

        Returns ``"clean"``, ``"repaired"`` or ``"failed"``.  Ground truth
        comes from the ``BUILDHCL`` per-landmark pass — one flagged SSSP
        reading only the graph — so a corrupt index cannot poison its own
        repair the way the label-pruned dynamic searches could.
        """
        index = self._dyn.index
        graph = index.graph
        lmk_list = sorted(index.landmarks)
        lmk_set = set(lmk_list)
        hrow, entries = _landmark_pass(graph, r, lmk_list, lmk_set)
        expected = dict(entries)
        expected[r] = 0.0

        highway = index.highway
        labeling = index.labeling
        dirty = any(
            highway.distance(r, r2) != hrow[j]
            for j, r2 in enumerate(lmk_list)
        )
        if not dirty:
            for v in range(graph.n):
                if labeling.label(v).get(r) != expected.get(v):
                    dirty = True
                    break
        if not dirty:
            self.quarantined.discard(r)
            return "clean"

        self.quarantined.add(r)
        try:
            with IndexTransaction(index):
                for j, r2 in enumerate(lmk_list):
                    highway.set_distance(r, r2, hrow[j])
                for v in range(graph.n):
                    want = expected.get(v)
                    cur = labeling.label(v).get(r)
                    if want is None:
                        if cur is not None:
                            labeling.remove_entry(v, r)
                    elif cur != want:
                        labeling.add_entry(v, r, want)
        except ReproError as exc:
            self.repair_failures += 1
            self.findings.append(
                AuditFinding(self.ticks, "row", r, f"repair failed: {exc}", False)
            )
            if self._registry is not None:
                self._registry.counter("audit.repair_failures").inc()
            if self._breaker is not None:
                self._breaker.record_failure()
            return "failed"
        self._dyn.bump_version()
        self.quarantined.discard(r)
        self.repairs += 1
        self.findings.append(
            AuditFinding(self.ticks, "row", r, detail or "row mismatch", True)
        )
        if self._registry is not None:
            self._registry.counter("audit.repairs").inc()
        return "repaired"

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate state for ``HCLService.health()``."""
        return {
            "ticks": self.ticks,
            "pairs_checked": self.pairs_checked,
            "violations_found": self.violations_found,
            "repairs": self.repairs,
            "repair_failures": self.repair_failures,
            "quarantined": tuple(sorted(self.quarantined)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexAuditor(ticks={self.ticks}, repairs={self.repairs}, "
            f"quarantined={sorted(self.quarantined)})"
        )


# ----------------------------------------------------------------------
# Plan-vs-labeling cross-check
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanAuditReport:
    """Outcome of one :meth:`PlanAuditor.tick`."""

    tick: int
    rows_checked: int
    hw_cells_checked: int
    mismatches: int
    segment_ok: bool | None  # None = no owned segment to verify
    republished: bool

    @property
    def clean(self) -> bool:
        return self.mismatches == 0 and self.segment_ok is not False


class PlanAuditor:
    """Cross-checks the compiled plan against the authoritative labeling.

    The compiled :class:`~repro.core.plan.QueryPlan` (and the
    shared-memory segment the fleet serves it from) is *derived* state:
    every cell has a ground truth in the dict labeling / highway it was
    compiled from.  Each :meth:`tick` therefore

    * decodes ``rows_per_tick`` sampled vertices' plan rows back to
      ``{landmark: distance}`` and compares **bitwise** with
      ``labeling.label(v)`` — a flipped bit in ``dists``/``slots``/
      ``offsets`` cannot hide behind a tolerance;
    * spot-checks ``hw_cells_per_tick`` dense ``δ_H`` cells against
      ``highway.distance``;
    * re-verifies the plan's owned shared segment checksums
      (:meth:`~repro.core.shm.SharedPlanBuffers.verify`), quarantining
      the segment on mismatch (the next ``shared_buffers()`` call
      republishes a fresh one from the canonical arrays);
    * on any row/cell mismatch, **republishes**: a forced fresh epoch
      (:meth:`~repro.core.epoch.PlanRegistry.republish`) in epoch mode,
      or dropping the cached plan + a version bump otherwise — repair by
      recompilation, mirroring :class:`IndexAuditor`'s
      quarantine-and-repair shape one layer down.

    A plan that is merely *stale* (a mutation already invalidated it) is
    skipped, not flagged: staleness is the recompile machinery's job;
    the auditor hunts silent corruption in plans still being served.
    ``tick()`` never raises.
    """

    def __init__(
        self,
        dyn: DynamicHCL,
        rows_per_tick: int = 8,
        hw_cells_per_tick: int = 8,
        seed: int = 0,
        registry=None,
    ):
        self._dyn = dyn
        self.rows_per_tick = rows_per_tick
        self.hw_cells_per_tick = hw_cells_per_tick
        self._rng = random.Random(seed)
        self._registry = registry
        self.ticks = 0
        self.rows_checked = 0
        self.mismatches_found = 0
        self.segment_failures = 0
        self.republishes = 0

    def _current_plan(self):
        """The plan now being served, or ``None`` (nothing to audit).

        Never compiles: an index that has not paid for a plan yet has no
        derived state to corrupt.
        """
        index = self._dyn.index
        if index.plan_mode == "epoch" and index._plan_registry is not None:
            plan = index._plan_registry.head_plan()
        else:
            plan = index.plan()
        if plan is None or not plan.matches(index):
            return None
        return plan

    def tick(self) -> PlanAuditReport:
        """One audit increment over the served plan; never raises."""
        self.ticks += 1
        if self._registry is not None:
            self._registry.counter("plan_audit.ticks").inc()
        index = self._dyn.index
        plan = self._current_plan()
        if plan is None:
            return PlanAuditReport(self.ticks, 0, 0, 0, None, False)

        n, k, ids, offsets, slots, dists, hw = plan.canonical_arrays()
        label = index.labeling.label
        rng = self._rng
        mismatches = 0

        rows = min(self.rows_per_tick, n)
        for _ in range(rows):
            v = rng.randrange(n)
            decoded = {
                ids[slots[i]]: dists[i]
                for i in range(offsets[v], offsets[v + 1])
            }
            if decoded != dict(label(v)):
                mismatches += 1
        self.rows_checked += rows

        cells = min(self.hw_cells_per_tick, k * k)
        distance = index.highway.distance
        for _ in range(cells):
            i = rng.randrange(k)
            j = rng.randrange(k)
            if hw[i * k + j] != distance(ids[i], ids[j]):
                mismatches += 1

        segment_ok = None
        shm = plan._shm
        if shm is not None and not shm.unlinked:
            segment_ok = shm.verify()
            if not segment_ok:
                self.segment_failures += 1
                if self._registry is not None:
                    self._registry.counter(
                        "plan_audit.segment_failures"
                    ).inc()

        republished = False
        if mismatches:
            self.mismatches_found += mismatches
            if self._registry is not None:
                self._registry.counter("plan_audit.mismatches").inc(
                    mismatches
                )
            republished = self._republish(index)
            if republished:
                self.republishes += 1
                if self._registry is not None:
                    self._registry.counter("plan_audit.republishes").inc()
        if self._registry is not None:
            self._registry.counter("plan_audit.rows_checked").inc(rows)
        return PlanAuditReport(
            self.ticks, rows, cells, mismatches, segment_ok, republished
        )

    def _republish(self, index) -> bool:
        """Recompile-and-replace the corrupt plan; never raises."""
        try:
            if index.plan_mode == "epoch" and index._plan_registry is not None:
                index._plan_registry.republish()
            else:
                # Drop the cached plan and bump the revision stamp: the
                # next query recompiles from the authoritative dicts,
                # and every pinned consumer revalidates.
                index._plan = None
                self._dyn.bump_version()
            return True
        except ReproError:
            return False

    def summary(self) -> dict:
        """Aggregate state for ``HCLService.health()``."""
        return {
            "ticks": self.ticks,
            "rows_checked": self.rows_checked,
            "mismatches_found": self.mismatches_found,
            "segment_failures": self.segment_failures,
            "republishes": self.republishes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanAuditor(ticks={self.ticks}, "
            f"mismatches={self.mismatches_found}, "
            f"republishes={self.republishes})"
        )
