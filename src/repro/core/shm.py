"""Shared-memory transport for compiled plan buffers.

A :class:`~repro.core.plan.QueryPlan`'s canonical arrays are immutable
once compiled, yet every pool fan-out and every shard broadcast used to
*pickle* them — megabytes of label data serialized per worker, for state
the workers only ever read.  This module moves the canonical arrays into
one named ``multiprocessing.shared_memory`` segment so other processes
**attach by name** instead: the parent ships a :class:`SharedPlanRef`
(a few dozen bytes), and the worker maps the same physical pages.

Layout
------
All five canonical arrays are 8-byte scalars after the ``"q"``/``"d"``
typecode normalization (``landmark_ids``/``offsets``/``slots`` are int64,
``dists``/``hw`` float64), so the segment is a header block followed by a
straight concatenation with no padding::

    [ header : 12 cells ]
    [ landmark_ids : k ][ offsets : n+1 ][ slots : E ][ dists : E ][ hw : k*k ]

The header mirrors the WAL record format's CRC discipline
(:mod:`repro.core.wal`): magic, the segment's identity (plan version,
``n``, ``k``, ``E``), one CRC32 per array, and a CRC32 over the header
itself, all stored as int64 cells so the data block stays 8-byte aligned::

    cell  0        magic ("HCLSHM\\x02")
    cell  1        plan_version
    cells 2-4      n, k, entries
    cells 5-9      CRC32 of each array (ids, offsets, slots, dists, hw)
    cell  10       CRC32 over cells 0-9
    cell  11       reserved (zero)

Integrity
---------
A flipped byte in a shared segment would silently become a bitwise-wrong
distance — the one failure mode the differential-testing regime exists
to exclude.  The header makes that impossible to miss: attaching
verifies every array checksum (:meth:`SharedPlanRef.attach`, opt out
with ``verify=False``), and both sides can re-verify on demand
(:meth:`AttachedPlanBuffers.verify`, :meth:`SharedPlanBuffers.verify`).
A failed check raises :class:`~repro.errors.PlanIntegrityError` and
**quarantines** the segment name process-locally: no later attach will
touch it, callers fall back to the pickle transport (visible in
``COUNTS["integrity_failures"]``), and the owner republishes a fresh
segment from the canonical arrays (heap copies, unaffected by segment
corruption) on the next :meth:`~repro.core.plan.QueryPlan.shared_buffers`
call.

:meth:`SharedPlanRef.attach` returns zero-copy views over the mapping —
``memoryview.cast`` views (indexing yields native Python ints/floats,
which is exactly what the interpreted flat kernel wants to box) — and
:func:`repro.core.planvec.VectorBackend` wraps the same buffer with
``numpy.frombuffer`` when numpy is available.

Lifecycle
---------
Exactly one process *owns* a segment (the one that created it) and is
responsible for the single ``unlink``; attachers only ever ``close``
(detach).  The owner-side rules, in order of precedence:

* :meth:`SharedPlanBuffers.unlink` is **idempotent** — a guard flag makes
  the second and later calls no-ops, so the epoch-retirement path and the
  interpreter-exit path can both fire without double-unlink errors;
* a plan published as an MVCC epoch unlinks when the epoch *retires and
  drains* (:meth:`repro.core.epoch.PlanRegistry._drop_locked` calls
  :meth:`repro.core.plan.QueryPlan.release_shared`) — readers pinned to
  the old epoch have already attached, and POSIX keeps the pages alive
  for existing mappings after the name is gone;
* an ``atexit`` hook unlinks every still-owned segment, so a pool or
  shard worker that **crashed mid-batch** (and therefore never sent any
  kind of release) cannot leak the segment past the owner's lifetime —
  the owner's exit is the backstop, and the guard flag keeps the backstop
  compatible with an earlier explicit unlink.

Attachers run the Python < 3.13 resource-tracker workaround (bpo-39959):
without it, the *attaching* process registers the segment with its own
resource tracker and unlinks it at exit, yanking the data out from under
the owner and every sibling worker.
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
import zlib
from dataclasses import dataclass

from ..errors import PlanIntegrityError

__all__ = [
    "SharedPlanBuffers",
    "SharedPlanRef",
    "is_quarantined",
    "quarantine",
    "quarantined_segments",
    "shm_available",
]

_ITEMSIZE = 8  # all canonical arrays are 8-byte scalars ("q" / "d")

#: Segment header: magic + identity + per-array CRC32s + header CRC32
#: (see the module docstring), stored as int64 cells for alignment.
_HEADER_CELLS = 12
_MAGIC = int.from_bytes(b"HCLSHM\x02\x00", "little")
_HEADER_BODY = struct.Struct("<10q")  # cells 0-9, covered by cell 10's CRC
_ARRAY_NAMES = ("landmark_ids", "offsets", "slots", "dists", "hw")

#: Owner-side registry of not-yet-unlinked segments; the atexit hook
#: below drains it.  Guarded by a lock: epoch retirement may run on a
#: recompile thread while the interpreter is tearing down.
_OWNED: dict[str, "SharedPlanBuffers"] = {}
_OWNED_LOCK = threading.Lock()

#: Counters for tests/observability (process-local, monotonically
#: increasing): segments created / attached / unlinked by this process,
#: plus the integrity ledger — CRC checks passed, checks failed (each
#: failure also quarantines the segment), and owner-side republishes of
#: a fresh segment after a quarantine.
COUNTS = {
    "created": 0,
    "attached": 0,
    "unlinked": 0,
    "verified": 0,
    "integrity_failures": 0,
    "republished": 0,
}

#: Names that failed a CRC check in this process; never attached again.
#: Process-local by design: a corrupt mapping is a per-machine event, and
#: the set stays tiny (one entry per corrupted segment, ever).
_QUARANTINED: set[str] = set()
_QUARANTINED_LOCK = threading.Lock()


def quarantine(name: str) -> None:
    """Bar ``name`` from every future attach in this process.

    Called automatically when a CRC check fails; exposed so a
    coordinator that learns of corruption from a *worker's* error reply
    can quarantine its own copy of the name too.
    """
    with _QUARANTINED_LOCK:
        _QUARANTINED.add(name)


def is_quarantined(name: str) -> bool:
    """Whether ``name`` failed an integrity check in this process."""
    with _QUARANTINED_LOCK:
        return name in _QUARANTINED


def quarantined_segments() -> tuple[str, ...]:
    """Snapshot of quarantined segment names (for health reports)."""
    with _QUARANTINED_LOCK:
        return tuple(sorted(_QUARANTINED))


def _load_shared_memory():
    """The stdlib module, or ``None`` where unsupported (import guard)."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - platform without shm
        return None
    return shared_memory


_PROBED: bool | None = None


def shm_available() -> bool:
    """Whether named shared-memory segments work on this platform.

    Probed once per process with a tiny create/unlink round trip;
    the ``REPRO_PLAN_SHM=0`` environment variable forces ``False`` (the
    pickle transport), which is also what the portability tests use.
    """
    global _PROBED
    if os.environ.get("REPRO_PLAN_SHM", "").strip() == "0":
        return False
    if _PROBED is None:
        shared_memory = _load_shared_memory()
        if shared_memory is None:
            _PROBED = False
        else:
            try:
                seg = shared_memory.SharedMemory(create=True, size=_ITEMSIZE)
                seg.close()
                seg.unlink()
                _PROBED = True
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                _PROBED = False
    return _PROBED


def _fill(dst, src) -> None:
    """Copy ``src`` (array/memoryview) into the typed view ``dst``."""
    mv = memoryview(src)
    if mv.format != dst.format:
        mv = mv.cast("B").cast(dst.format)
    dst[:] = mv


def _attach_untracked(shared_memory, name: str):
    """Attach without registering with the resource tracker (py < 3.13).

    bpo-39959: attaching registers the segment with the *attacher's*
    resource tracker, which unlinks it when that process exits — yanking
    the pages' name out from under the owner.  And because the tracker's
    registry is a name-keyed set shared across forks, even a polite
    register-then-unregister from an attacher erases the **owner's**
    registration.  The only clean workaround is to suppress registration
    for the duration of the attach (the 3.13+ ``track=False`` parameter
    does exactly this internally).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class SharedPlanRef:
    """A picklable, byte-sized handle to one owner's plan segment.

    ``plan_version`` is the owning plan's monotonically-assigned id — the
    attach-memoization key ``(name, plan_version)`` workers use, so a
    recompiled plan (new version, new segment) can never be served from a
    stale cached attachment.
    """

    name: str
    plan_version: int
    n: int
    k: int
    entries: int

    def attach(self, verify: bool = True) -> "AttachedPlanBuffers":
        """Map the segment read-only; raises ``FileNotFoundError`` when
        the owner already unlinked it.

        With ``verify=True`` (the default) every array's CRC32 is checked
        against the header before the attachment is handed out; a
        mismatch quarantines the segment and raises
        :class:`~repro.errors.PlanIntegrityError` — a corrupt segment is
        detected *on attach* and never served.  A name that already
        failed a check in this process raises immediately, without
        mapping it again.
        """
        if is_quarantined(self.name):
            raise PlanIntegrityError(
                f"segment {self.name!r} is quarantined after a failed "
                f"integrity check",
                segment=self.name,
            )
        shared_memory = _load_shared_memory()
        if shared_memory is None:  # pragma: no cover - platform guard
            raise FileNotFoundError("shared memory unsupported on platform")
        try:
            seg = shared_memory.SharedMemory(name=self.name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            seg = _attach_untracked(shared_memory, self.name)
        if verify:
            layout = _Layout(self.n, self.k, self.entries)
            try:
                layout.verify(seg.buf, self)
            except PlanIntegrityError:
                COUNTS["integrity_failures"] += 1
                quarantine(self.name)
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - lingering view
                    pass
                raise
            COUNTS["verified"] += 1
        COUNTS["attached"] += 1
        return AttachedPlanBuffers(self, seg)


class _Layout:
    """Cell offsets of the header and five arrays inside one segment."""

    __slots__ = ("k", "n1", "entries", "data_cells", "total")

    def __init__(self, n: int, k: int, entries: int):
        self.k = k
        self.n1 = n + 1
        self.entries = entries
        self.data_cells = k + self.n1 + 2 * entries + k * k
        self.total = _HEADER_CELLS + self.data_cells

    def _bounds(self):
        """Fenceposts of the five arrays, in cells relative to the data
        block: ids | offsets | slots | dists | hw."""
        a = 0
        b = a + self.k
        c = b + self.n1
        d = c + self.entries
        e = d + self.entries
        f = e + self.k * self.k
        return (a, b, c, d, e, f)

    def views(self, buf, ref: SharedPlanRef):
        """Zero-copy canonical 7-tuple over ``buf`` (a writable or
        read-only buffer of at least ``total`` cells)."""
        mv = memoryview(buf)
        cells = mv.cast("B")[: self.total * _ITEMSIZE]
        a, b, c, d, e, f = self._bounds()

        def cut(lo, hi, code):
            lo += _HEADER_CELLS
            hi += _HEADER_CELLS
            return cells[lo * _ITEMSIZE : hi * _ITEMSIZE].cast(code)

        return (
            ref.n,
            ref.k,
            cut(a, b, "q"),  # landmark_ids
            cut(b, c, "q"),  # offsets
            cut(c, d, "q"),  # slots
            cut(d, e, "d"),  # dists
            cut(e, f, "d"),  # hw
        )

    def _array_crcs(self, cells) -> list[int]:
        """CRC32 of each array's byte range (``cells`` is a "B" view)."""
        bounds = self._bounds()
        crcs = []
        for lo, hi in zip(bounds, bounds[1:]):
            lo += _HEADER_CELLS
            hi += _HEADER_CELLS
            region = cells[lo * _ITEMSIZE : hi * _ITEMSIZE]
            try:
                crcs.append(zlib.crc32(region))
            finally:
                region.release()
        return crcs

    def write_header(self, buf, ref: SharedPlanRef) -> None:
        """Stamp the header block: identity, per-array CRCs, header CRC."""
        mv = memoryview(buf)
        cells = mv.cast("B")
        try:
            body = [_MAGIC, ref.plan_version, ref.n, ref.k, ref.entries]
            body += self._array_crcs(cells)
            header = cells[: _HEADER_CELLS * _ITEMSIZE].cast("q")
            try:
                for i, value in enumerate(body):
                    header[i] = value
                header[10] = zlib.crc32(_HEADER_BODY.pack(*body))
                header[11] = 0
            finally:
                header.release()
        finally:
            cells.release()

    def verify(self, buf, ref: SharedPlanRef) -> None:
        """Check the header and every array CRC; raise on any mismatch.

        Raises :class:`~repro.errors.PlanIntegrityError` naming the first
        failing component; the caller is responsible for quarantining.
        """
        mv = memoryview(buf)
        if mv.nbytes < self.total * _ITEMSIZE:
            mv.release()
            raise PlanIntegrityError(
                f"segment {ref.name!r} holds {mv.nbytes} bytes, expected "
                f">= {self.total * _ITEMSIZE}",
                segment=ref.name,
            )
        cells = mv.cast("B")
        try:
            header = cells[: _HEADER_CELLS * _ITEMSIZE].cast("q")
            try:
                body = list(header[:10])
                stored_header_crc = header[10]
            finally:
                header.release()
            if body[0] != _MAGIC:
                raise PlanIntegrityError(
                    f"segment {ref.name!r}: bad magic "
                    f"{body[0]:#x} (expected {_MAGIC:#x})",
                    segment=ref.name,
                )
            if stored_header_crc != zlib.crc32(_HEADER_BODY.pack(*body)):
                raise PlanIntegrityError(
                    f"segment {ref.name!r}: header CRC mismatch",
                    segment=ref.name,
                )
            identity = (ref.plan_version, ref.n, ref.k, ref.entries)
            if tuple(body[1:5]) != identity:
                raise PlanIntegrityError(
                    f"segment {ref.name!r}: header identity "
                    f"{tuple(body[1:5])} does not match ref {identity}",
                    segment=ref.name,
                )
            for name, stored, actual in zip(
                _ARRAY_NAMES, body[5:10], self._array_crcs(cells)
            ):
                if stored != actual:
                    raise PlanIntegrityError(
                        f"segment {ref.name!r}: CRC mismatch in "
                        f"{name} (stored {stored:#010x}, "
                        f"computed {actual:#010x})",
                        segment=ref.name,
                    )
        finally:
            cells.release()
            mv.release()


class AttachedPlanBuffers:
    """A non-owning mapping of another process's plan segment.

    ``arrays()`` hands out the canonical 7-tuple as ``memoryview.cast``
    views; they stay valid until :meth:`close`.  Closing is idempotent
    and never unlinks — only the owner does that.
    """

    __slots__ = ("ref", "_seg", "_views", "_closed")

    def __init__(self, ref: SharedPlanRef, seg):
        self.ref = ref
        self._seg = seg
        self._views = None
        self._closed = False

    def arrays(self):
        if self._closed:
            raise ValueError(f"attachment to {self.ref.name!r} is closed")
        if self._views is None:
            layout = _Layout(self.ref.n, self.ref.k, self.ref.entries)
            self._views = layout.views(self._seg.buf, self.ref)
        return self._views

    def verify(self) -> None:
        """Re-run the CRC check on demand (auditor ticks, paranoia).

        Raises :class:`~repro.errors.PlanIntegrityError` — and
        quarantines the segment — if any array no longer matches its
        checksum; the existing :meth:`arrays` views must then be
        considered poisoned and discarded.
        """
        if self._closed:
            raise ValueError(f"attachment to {self.ref.name!r} is closed")
        layout = _Layout(self.ref.n, self.ref.k, self.ref.entries)
        try:
            layout.verify(self._seg.buf, self.ref)
        except PlanIntegrityError:
            COUNTS["integrity_failures"] += 1
            quarantine(self.ref.name)
            raise
        COUNTS["verified"] += 1

    def close(self) -> None:
        """Detach (idempotent).  Views handed out become invalid.

        A view that still has downstream buffer exports (a numpy
        ``frombuffer`` array, a plan that outlived its attachment)
        cannot be released eagerly; it is left for garbage collection,
        and the mapping itself stays alive until the last export drops.
        """
        if self._closed:
            return
        self._closed = True
        views, self._views = self._views, None
        if views is not None:
            for v in views[2:]:
                try:
                    v.release()
                except BufferError:
                    pass
        try:
            self._seg.close()
        except BufferError:
            pass

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class SharedPlanBuffers:
    """The owner-side handle of one plan's shared segment."""

    __slots__ = ("ref", "_seg", "unlinked", "unlink_calls", "owner_pid")

    def __init__(self, ref: SharedPlanRef, seg):
        self.ref = ref
        self._seg = seg
        self.unlinked = False
        #: Diagnostic: number of *effective* unlinks performed (the
        #: exactly-once guarantee the fault tests assert is ``<= 1``).
        self.unlink_calls = 0
        #: Forked children inherit ``_OWNED`` — the pid gate keeps their
        #: exits from sweeping the parent's live segments.
        self.owner_pid = os.getpid()

    @classmethod
    def create(cls, canonical, plan_version: int) -> "SharedPlanBuffers | None":
        """Copy a plan's canonical arrays into a fresh named segment.

        Returns ``None`` when shared memory is unavailable or the
        allocation fails — callers fall back to the pickle transport.
        ``canonical`` is the 7-tuple :meth:`QueryPlan.canonical_arrays`
        returns.
        """
        if not shm_available():
            return None
        shared_memory = _load_shared_memory()
        n, k, ids, offsets, slots, dists, hw = canonical
        entries = len(slots)
        layout = _Layout(n, k, entries)
        ref_size = max(1, layout.total * _ITEMSIZE)
        try:
            seg = shared_memory.SharedMemory(create=True, size=ref_size)
        except (OSError, ValueError):  # pragma: no cover - ENOSPC etc.
            return None
        ref = SharedPlanRef(seg.name, plan_version, n, k, entries)
        _, _, v_ids, v_off, v_slots, v_dists, v_hw = layout.views(seg.buf, ref)
        try:
            _fill(v_ids, ids)
            _fill(v_off, offsets)
            _fill(v_slots, slots)
            _fill(v_dists, dists)
            _fill(v_hw, hw)
        finally:
            for v in (v_ids, v_off, v_slots, v_dists, v_hw):
                v.release()
        layout.write_header(seg.buf, ref)
        buffers = cls(ref, seg)
        with _OWNED_LOCK:
            _OWNED[ref.name] = buffers
        COUNTS["created"] += 1
        return buffers

    @property
    def name(self) -> str:
        return self.ref.name

    @property
    def quarantined(self) -> bool:
        """Whether this process has quarantined the segment's name."""
        return is_quarantined(self.ref.name)

    def verify(self) -> bool:
        """Owner-side on-demand CRC check (auditor ticks).

        Returns ``True`` when every checksum matches.  On a mismatch the
        segment is quarantined and ``False`` is returned instead of
        raising — the owner's remedy is republication, not unwinding a
        call stack, and the next :meth:`QueryPlan.shared_buffers` call
        mints a fresh segment from the canonical heap arrays.
        """
        if self.unlinked:
            return False
        layout = _Layout(self.ref.n, self.ref.k, self.ref.entries)
        try:
            layout.verify(self._seg.buf, self.ref)
        except PlanIntegrityError:
            COUNTS["integrity_failures"] += 1
            quarantine(self.ref.name)
            return False
        COUNTS["verified"] += 1
        return True

    def unlink(self) -> None:
        """Remove the segment name and detach — **exactly once**.

        Safe to call from epoch retirement, explicit release and the
        atexit hook in any combination; every call after the first is a
        no-op.  Attached workers keep their mappings until they close.
        """
        if self.unlinked:
            return
        self.unlinked = True
        self.unlink_calls += 1
        with _OWNED_LOCK:
            _OWNED.pop(self.ref.name, None)
        try:
            self._seg.close()
        except (OSError, BufferError):  # pragma: no cover - already gone
            pass
        try:
            self._seg.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
        COUNTS["unlinked"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unlinked" if self.unlinked else "live"
        return f"SharedPlanBuffers({self.ref.name!r}, {state})"


@atexit.register
def _unlink_owned() -> None:  # pragma: no cover - interpreter teardown
    """Owner-exit backstop: unlink everything this process still owns."""
    with _OWNED_LOCK:
        leftover = list(_OWNED.values())
    pid = os.getpid()
    for buffers in leftover:
        if buffers.owner_pid == pid:
            buffers.unlink()
