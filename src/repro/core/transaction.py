"""Transactional (all-or-nothing) mutations of an HCL index.

The dynamic algorithms (``UPGRADE-LMK`` / ``DOWNGRADE-LMK``) mutate the
labeling and highway in place through thousands of small writes; an
exception halfway through — a bug, an injected fault, a cancelled worker —
would otherwise leave the index in an unspecified state that is neither the
old nor the new configuration.  :class:`IndexTransaction` makes any such
mutation atomic with an *undo journal*:

* While a transaction is open, every :class:`~repro.core.labeling.Labeling`
  and :class:`~repro.core.highway.Highway` mutator first records the state
  it is about to overwrite — copy-on-write at row granularity for labels
  (one dict copy per *touched* vertex, however many writes hit it) and a
  single whole-matrix snapshot for the highway (landmark insertion/removal
  touches every row anyway, so this is the same order of work as the
  operation it protects).
* On success the journal is simply discarded — commit is free.
* On any exception the journal restores every touched row, leaving the
  index *value-identical* (and therefore byte-identical under the canonical
  binary serialization, which sorts entries) to its pre-transaction state.
  Non-library exceptions are re-raised wrapped in
  :class:`~repro.errors.TransactionError` with the original as cause.

Transactions nest by joining: an inner :class:`IndexTransaction` opened
while an outer one is active becomes a no-op and the outer journal keeps
recording, so a batch-level transaction can span many per-request
transactions and roll all of them back together.
"""

from __future__ import annotations

from ..errors import ReproError, TransactionError
from .index import HCLIndex

__all__ = ["IndexTransaction", "UndoJournal"]


class UndoJournal:
    """Copy-on-write undo state for one index's labeling + highway.

    When the index serves through an epoch registry
    (:class:`repro.core.epoch.PlanRegistry`), the journal holds a
    reference to it so rollback can cancel any recompile that might have
    snapshotted the now-discarded writes.
    """

    __slots__ = (
        "_label_saves",
        "_highway_save",
        "_label_count",
        "_edge_saves",
        "_registry",
    )

    def __init__(self, registry=None):
        self._label_saves: dict[int, dict[int, float]] = {}
        self._highway_save: dict[int, dict[int, float]] | None = None
        self._label_count: int | None = None
        # Edge-weight undo entries for batch-dynamic updates: the graph is
        # not journaled by its own mutators (it has none that know about
        # transactions), so apply_batch records each weight it overwrites
        # here — first write per edge only, in write order — and rollback
        # replays them in reverse.
        self._edge_saves: list[tuple[object, int, int, float]] = []
        self._registry = registry

    # ------------------------------------------------------------------
    # Recording (called by the data structures' mutators)
    # ------------------------------------------------------------------
    def record_label(self, labeling, v: int) -> None:
        """Save ``L(v)`` before its first mutation in this transaction."""
        if v not in self._label_saves:
            self._label_saves[v] = dict(labeling._labels[v])

    def record_label_growth(self, labeling) -> None:
        """Save the vertex count before the labeling grows."""
        if self._label_count is None:
            self._label_count = len(labeling._labels)

    def record_highway(self, highway) -> None:
        """Snapshot the distance matrix before its first mutation."""
        if self._highway_save is None:
            self._highway_save = {
                r: dict(row) for r, row in highway._dist.items()
            }

    def record_edge_weight(self, graph, u: int, v: int, old: float) -> None:
        """Save an edge's pre-update weight before ``set_weight``.

        Called once per edge by the batch engine *before* it overwrites the
        weight; duplicate updates to the same edge inside one batch are
        netted by the caller, so no first-touch dedup is needed here.
        """
        self._edge_saves.append((graph, u, v, old))

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, labeling, highway) -> None:
        """Restore every recorded row; leaves the journal empty."""
        # Edge weights first, newest save last-undone: set_weight is its
        # own inverse given the saved old weight, and reverse order makes
        # repeated writes to one edge (impossible after netting, but cheap
        # to be safe against) land on the original value.
        for graph, u, v, old in reversed(self._edge_saves):
            graph.set_weight(u, v, old)
        self._edge_saves = []
        if self._label_count is not None:
            del labeling._labels[self._label_count :]
        labels = labeling._labels
        n = len(labels)
        for v, saved in self._label_saves.items():
            if v < n:
                labels[v] = saved
        # Restoration writes rows directly (not through the mutators), so
        # bump the revision counters here or compiled query plans would
        # keep serving the rolled-back state.
        labeling._rev += 1
        if self._highway_save is not None:
            highway._dist = self._highway_save
            highway._rev += 1
        self._label_saves = {}
        self._highway_save = None
        self._label_count = None
        if self._registry is not None:
            # A pending (or in-flight) recompile may have been scheduled
            # by — or may observe — the writes just undone; it must never
            # publish an epoch.  See ``PlanRegistry.invalidate_pending``.
            self._registry.invalidate_pending()

    @property
    def touched_labels(self) -> int:
        """Number of label rows saved so far (diagnostics/tests)."""
        return len(self._label_saves)


class IndexTransaction:
    """Context manager making in-place index mutations all-or-nothing.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> from repro.core import build_hcl
    >>> from repro.core.upgrade import upgrade_landmark
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> index = build_hcl(g, [1])
    >>> with IndexTransaction(index):
    ...     _ = upgrade_landmark(index, 3)
    >>> sorted(index.landmarks)
    [1, 3]
    """

    __slots__ = ("_index", "_journal", "_nested", "_rolled_back", "_base_version")

    def __init__(self, index: HCLIndex):
        self._index = index
        self._journal: UndoJournal | None = None
        self._nested = False
        self._rolled_back = False
        self._base_version = None

    @property
    def rolled_back(self) -> bool:
        """Whether this transaction was rolled back."""
        return self._rolled_back

    def __enter__(self) -> "IndexTransaction":
        labeling = self._index.labeling
        highway = self._index.highway
        if labeling._journal is not None or highway._journal is not None:
            # Join the enclosing transaction: its journal already records
            # every write, and its rollback will cover ours.
            self._nested = True
            return self
        registry = getattr(self._index, "_plan_registry", None)
        self._base_version = (
            labeling._rev,
            highway._rev,
            getattr(self._index.graph, "_rev", 0),
            labeling.n,
        )
        self._journal = UndoJournal(registry)
        labeling._journal = self._journal
        highway._journal = self._journal
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._nested:
            return False
        labeling = self._index.labeling
        highway = self._index.highway
        labeling._journal = None
        highway._journal = None
        if exc_type is None:
            journal = self._journal
            self._journal = None
            registry = journal._registry
            if registry is not None and (
                journal._label_saves
                or journal._highway_save is not None
                or journal._label_count is not None
                or journal._edge_saves
            ):
                # Commit: tell the epoch registry what changed so it can
                # recompile incrementally (touched rows = the journal's
                # copy-on-write keys) and swap in the next epoch.
                registry.on_commit(
                    affected=set(journal._label_saves),
                    base_version=self._base_version,
                    grew=journal._label_count is not None,
                )
            return False
        self._journal.rollback(labeling, highway)
        self._journal = None
        self._rolled_back = True
        if isinstance(exc, Exception) and not isinstance(exc, ReproError):
            raise TransactionError(
                f"index mutation rolled back after "
                f"{exc_type.__name__}: {exc}"
            ) from exc
        return False
