"""Algorithm 2 — ``DOWNGRADE-LMK``: demote a landmark to a plain vertex.

Faithful implementation of the paper's Algorithm 2 for weighted
(Dijkstra-like) and unweighted (BFS-like) graphs.  Two phases:

1. *Erasure sweep* (lines 1–22): a search from the demoted landmark ``r``
   that (a) deletes every ``(r, ·)`` entry it meets, (b) rebuilds ``L(r)``
   with the landmarks that now cover ``r`` — those reached by a shortest
   path with no other landmark in between (recorded in ``REACHED-ENT``
   together with their distance), and (c) finally drops ``r`` from the
   highway.  The sweep prunes at landmarks: at a landmark ``u`` the stored
   ``δ_H(r, u)`` decides whether ``u`` covers ``r`` (``δ_H(r, u) = δ``) or
   the path was non-optimal (``δ_H(r, u) < δ``).
2. *Re-cover sweeps* (lines 23–39): for each ``(l, ρ) ∈ REACHED-ENT``, a
   search *rooted at* ``l`` but *started from* ``r`` with seed priority
   ``ρ = d(l, r)`` extends ``l``'s coverage through the hole left by ``r``.
   Pruning mirrors Algorithm 1: at landmarks, and when
   ``QUERY(l, u) < δ`` proves a strictly better landmark-through path.

The result is again the canonical (minimal, order-invariant) index for the
reduced landmark set (Theorem 3.5, Lemmas 3.6/3.7).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

from ..errors import LandmarkError
from ..obs import OBS, SIZE_BOUNDS
from ..tolerance import PRUNE_SCALE
from .index import HCLIndex

INF = math.inf

__all__ = ["downgrade_landmark", "DowngradeStats"]

# Fault-injection seam (see repro.testing.faults.fail_at_phase): called with
# the name of each completed phase so crash-safety tests can abort the
# algorithm at its internal consistency boundaries.  Always None in
# production.
_PHASE_HOOK = None


def _phase(name: str) -> None:
    if _PHASE_HOOK is not None:
        _PHASE_HOOK(name)


@dataclass(frozen=True)
class DowngradeStats:
    """Work counters for one ``DOWNGRADE-LMK`` run."""

    removed_landmark: int
    swept: int
    entries_removed: int
    entries_added: int
    recover_searches: int
    # Vertices a re-cover sweep dequeued but rejected via the pruning
    # tests (existing closer entry, or QUERY(l, u) < δ).  Appended with a
    # default so pickled/star-unpacked stats stay valid.
    pruned: int = 0


def downgrade_landmark(index: HCLIndex, r: int, budget=None) -> DowngradeStats:
    """Remove landmark ``r`` from ``index``, updating it in place.

    Parameters
    ----------
    index:
        A canonical HCL index covering its graph. Modified in place.
    r:
        Landmark to demote; must currently be a landmark.
    budget:
        Optional :class:`~repro.budget.Budget` cancellation budget.  One
        step is charged per swept/re-covered vertex; the budget is checked
        at every settle and phase boundary and expiry raises
        :class:`~repro.errors.DeadlineExceeded` mid-flight.  A mutation
        cannot return a partial answer, so always run budgeted downgrades
        inside an :class:`~repro.core.transaction.IndexTransaction` (the
        :class:`~repro.core.dynhcl.DynamicHCL` facade does).

    Returns
    -------
    DowngradeStats
        Counters describing the amount of work performed.

    Raises
    ------
    LandmarkError
        If ``r`` is not a landmark.
    """
    graph = index.graph
    highway = index.highway
    labeling = index.labeling
    if r not in highway:
        raise LandmarkError(f"vertex {r} is not a landmark")
    # Hoisted once: the per-settle checkpoint below costs one local-None
    # test when no budget is threaded (bench_obs gates this at <2%).
    charge = budget.charge if budget is not None else None
    if budget is not None:
        budget.raise_if_exceeded("DOWNGRADE-LMK")

    remaining = highway.landmarks
    remaining.discard(r)  # R' = R \ {r}

    # ------------------------------------------------------------------
    # Lines 1-22: erasure sweep from r.
    # ------------------------------------------------------------------
    labeling.clear_vertex(r)
    reached_ent: list[tuple[int, float]] = []
    row_r = highway.row(r)

    label_of = labeling.label
    add_entry = labeling.add_entry
    remove_entry = labeling.remove_entry
    neighbors = graph.neighbors

    dist = [INF] * graph.n
    dist[r] = 0.0
    swept = 0
    entries_removed = 0
    # Vertices that lose their (r, .) entry: the "hole" the re-cover sweeps
    # of phase 2 must fill.  A vertex can gain a new entry (l, .) only if
    # every landmark-free shortest l -> u path crosses r; the suffix of such
    # a path from r is a landmark-free shortest r -> u path, so u was
    # covered by r — as is every vertex between r and u.  Phase 2 may
    # therefore confine both relabelling and expansion to this set.
    hole = [False] * graph.n
    hole[r] = True

    if graph.unweighted:
        queue: deque[int] = deque([r])
        while queue:
            u = queue.popleft()
            delta = dist[u]
            if u in remaining:
                # Tolerant optimality test: an ulp-level undercut of delta is
                # a float-summation artifact, not a shorter path, so u still
                # covers r (repro.tolerance).
                if row_r.get(u, INF) < delta * PRUNE_SCALE:
                    continue
                reached_ent.append((u, delta))
                add_entry(r, u, delta)
                continue
            swept += 1
            if charge is not None and charge():
                budget.raise_if_exceeded("DOWNGRADE-LMK (sweep)")
            if remove_entry(u, r):
                entries_removed += 1
                hole[u] = True
            nd = delta + 1.0
            for v, _ in neighbors(u):
                if nd < dist[v]:
                    dist[v] = nd
                    queue.append(v)
    else:
        heap: list[tuple[float, int]] = [(0.0, r)]
        while heap:
            delta, u = heapq.heappop(heap)
            if delta > dist[u]:
                continue
            if u in remaining:
                if row_r.get(u, INF) < delta * PRUNE_SCALE:
                    continue
                reached_ent.append((u, delta))
                add_entry(r, u, delta)
                continue
            swept += 1
            if charge is not None and charge():
                budget.raise_if_exceeded("DOWNGRADE-LMK (sweep)")
            if remove_entry(u, r):
                entries_removed += 1
                hole[u] = True
            for v, w in neighbors(u):
                nd = delta + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

    highway.remove_landmark(r)
    _phase("sweep")
    if budget is not None:
        budget.raise_if_exceeded("DOWNGRADE-LMK (sweep phase)")

    # ------------------------------------------------------------------
    # Lines 23-39: re-cover sweeps, one per landmark now covering r.
    # ------------------------------------------------------------------
    query_below = index.query_below
    entries_added = 0
    pruned = 0

    label_of = labeling.label
    for l, rho in reached_ent:
        # Sparse distance map: the sweep is confined to the hole left by r,
        # so a dict beats resetting an O(n) array.
        sweep_dist: dict[int, float] = {l: 0.0, r: rho}
        if graph.unweighted:
            queue = deque([r])
            while queue:
                u = queue.popleft()
                delta = sweep_dist[u]
                if u != r:
                    if not hole[u]:
                        continue
                    # Cheap pre-test: an existing closer l-entry already
                    # proves QUERY(l, u) < delta (tolerance-aware, matching
                    # query_below).
                    dl = label_of(u).get(l)
                    if dl is not None and dl < delta * PRUNE_SCALE:
                        pruned += 1
                        continue
                    if query_below(l, u, delta):
                        pruned += 1
                        continue
                if charge is not None and charge():
                    budget.raise_if_exceeded("DOWNGRADE-LMK (re-cover)")
                add_entry(u, l, delta)
                entries_added += 1
                nd = delta + 1.0
                for v, _ in neighbors(u):
                    if hole[v] and nd < sweep_dist.get(v, INF):
                        sweep_dist[v] = nd
                        queue.append(v)
        else:
            heap = [(rho, r)]
            while heap:
                delta, u = heapq.heappop(heap)
                if delta > sweep_dist.get(u, INF):
                    continue
                if u != r:
                    if not hole[u]:
                        continue
                    dl = label_of(u).get(l)
                    if dl is not None and dl < delta * PRUNE_SCALE:
                        pruned += 1
                        continue
                    if query_below(l, u, delta):
                        pruned += 1
                        continue
                if charge is not None and charge():
                    budget.raise_if_exceeded("DOWNGRADE-LMK (re-cover)")
                add_entry(u, l, delta)
                entries_added += 1
                for v, w in neighbors(u):
                    nd = delta + w
                    if hole[v] and nd < sweep_dist.get(v, INF):
                        sweep_dist[v] = nd
                        heapq.heappush(heap, (nd, v))

    if OBS.enabled:
        # One recording per run; the sweeps themselves only pay the
        # `pruned` add on prune branches.  `swept` is the affected set of
        # the erasure sweep, `recover_searches` the resume-set size.
        reg = OBS.registry
        reg.counter("downgrade.calls").inc()
        reg.counter("downgrade.swept").inc(swept)
        reg.counter("downgrade.pruned").inc(pruned)
        reg.counter("downgrade.pruning_tests").inc(
            entries_added + pruned - len(reached_ent)
        )
        reg.counter("downgrade.label_writes").inc(entries_added)
        reg.counter("downgrade.entries_removed").inc(entries_removed)
        reg.histogram("downgrade.affected_set_size", SIZE_BOUNDS).observe(
            swept
        )
        reg.histogram("downgrade.resume_set_size", SIZE_BOUNDS).observe(
            len(reached_ent)
        )

    return DowngradeStats(
        removed_landmark=r,
        swept=swept,
        entries_removed=entries_removed,
        entries_added=entries_added,
        recover_searches=len(reached_ent),
        pruned=pruned,
    )
