"""The HCL index ``I = (H, L)`` and its query routines.

Implements the paper's ``QUERY(s, t, H, L)`` (landmark-constrained
distance), the exact distance query that refines the landmark-constrained
upper bound with a distance-bounded bidirectional search on
``G[V \\ R]``, and bookkeeping/statistics used by the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..budget import Budget
from ..errors import DeadlineExceeded, LandmarkError, VertexError
from ..graphs.graph import Graph
from ..graphs.traversal import bounded_bidirectional_distance_masked
from ..obs import OBS
from ..tolerance import PRUNE_SCALE, REL_TOL
from .highway import Highway
from .labeling import Labeling
from .plan import QueryPlan

INF = math.inf

__all__ = ["HCLIndex", "IndexStats"]

#: In ``plan_mode="auto"`` a :class:`~repro.core.plan.QueryPlan` is
#: compiled once this many queries have been served against one index
#: revision — enough repeats to amortize compilation, while an index
#: alternating mutation and the odd query never compiles at all.
PLAN_COMPILE_AFTER = 8


@dataclass(frozen=True)
class IndexStats:
    """Size statistics of an HCL index (the paper's space measure)."""

    landmarks: int
    label_entries: int
    highway_cells: int
    average_label_size: float
    max_label_size: int

    @property
    def total_entries(self) -> int:
        """Label entries plus highway cells: the full index footprint."""
        return self.label_entries + self.highway_cells


class HCLIndex:
    """Highway cover labeling index over a graph.

    Build one with :func:`repro.core.build.build_hcl` and keep it current
    under landmark changes with
    :func:`repro.core.upgrade.upgrade_landmark` /
    :func:`repro.core.downgrade.downgrade_landmark` (or the
    :class:`repro.core.dynhcl.DynamicHCL` facade).

    Attributes
    ----------
    graph:
        The covered graph. The index holds a reference, not a copy.
    highway:
        The :class:`~repro.core.highway.Highway` ``(R, δ_H)``.
    labeling:
        The :class:`~repro.core.labeling.Labeling` ``L``.
    plan_mode:
        How the compiled serving plan is managed: ``"auto"`` (default)
        compiles lazily once the index has served
        :data:`PLAN_COMPILE_AFTER` queries without a mutation in
        between, ``"eager"`` compiles on the first query, ``"off"``
        serves every query from the authoritative dicts, and
        ``"epoch"`` serves from the head epoch of the MVCC
        :class:`~repro.core.epoch.PlanRegistry` with *no* per-query
        revalidation (epochs are swapped by transaction commits; see
        :meth:`epoch_registry`).  The dicts stay authoritative in every
        mode; outside epoch mode the plan revalidates against the
        structure revision counters on each use and is dropped the
        moment anything mutated.
    """

    __slots__ = (
        "graph",
        "highway",
        "labeling",
        "plan_mode",
        "_plan",
        "_plan_queries",
        "_plan_registry",
        "_mask",
        "_mask_stamp",
    )

    def __init__(self, graph: Graph, highway: Highway, labeling: Labeling):
        if labeling.n != graph.n:
            raise VertexError(
                f"labeling spans {labeling.n} vertices but graph has {graph.n}"
            )
        for r in highway.landmarks:
            if not 0 <= r < graph.n:
                raise LandmarkError(f"landmark {r} not a vertex of the graph")
        self.graph = graph
        self.highway = highway
        self.labeling = labeling
        self.plan_mode = "auto"
        self._plan: QueryPlan | None = None
        self._plan_queries = 0
        self._plan_registry = None
        self._mask: list[bool] | None = None
        self._mask_stamp = None

    # ------------------------------------------------------------------
    # Landmark set
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """The current landmark set ``R`` (fresh set)."""
        return self.highway.landmarks

    def is_landmark(self, v: int) -> bool:
        """Whether ``v`` is currently a landmark."""
        return v in self.highway

    # ------------------------------------------------------------------
    # Compiled serving plan
    # ------------------------------------------------------------------
    def plan(self) -> QueryPlan | None:
        """The current *valid* compiled plan, or ``None``.

        Never compiles; a plan made stale by a mutation is dropped.
        """
        plan = self._plan
        if plan is not None and plan.matches(self):
            return plan
        return None

    def compile_plan(self) -> QueryPlan:
        """Compile (and adopt) a fresh plan from the current dict state."""
        plan = QueryPlan.compile(self)
        self._plan = plan
        self._plan_queries = 0
        return plan

    def epoch_registry(self, recompile: str = "sync"):
        """The MVCC :class:`~repro.core.epoch.PlanRegistry` for this index.

        Created on first call (``recompile`` selects the registry's
        recompilation mode and is ignored afterwards).  Switching
        ``plan_mode`` to ``"epoch"`` — or calling
        :meth:`repro.core.dynhcl.DynamicHCL.enable_plan_epochs` — routes
        queries through the registry head; transactional mutations keep
        it current.  Non-transactional mutations require an explicit
        ``registry.refresh()``.
        """
        registry = self._plan_registry
        if registry is None:
            from .epoch import PlanRegistry  # local: avoid import cycle

            registry = self._plan_registry = PlanRegistry(
                self, recompile=recompile
            )
        return registry

    def _serving_plan(self) -> QueryPlan | None:
        """Valid plan for the next query, compiling lazily per ``plan_mode``."""
        mode = self.plan_mode
        if mode == "off":
            # "off" pins the dict path even when a compiled plan is still
            # valid — it must mean *off*, or the benchmark dict twins
            # (and any operator escape hatch) silently measure the plan.
            return None
        if mode == "epoch":
            # Lock-free head borrow: no revalidation, no stamp compare.
            # Long-lived readers pin via registry.acquire() instead.
            return self.epoch_registry().head_plan()
        plan = self._plan
        if plan is not None:
            if plan.matches(self):
                return plan
            self._plan = None
            self._plan_queries = 0
            if OBS.enabled:
                OBS.registry.counter("plan.invalidations").inc()
        queries = self._plan_queries + 1
        if mode == "eager" or queries > PLAN_COMPILE_AFTER:
            return self.compile_plan()
        self._plan_queries = queries
        return None

    def _exclusion_mask(self) -> list[bool]:
        """The landmark exclusion mask, cached across single-pair queries.

        Rebuilt only when the landmark set (highway revision) or vertex
        count changed — repeated ``distance`` calls stop paying the O(n)
        mask construction the batch path already amortizes.
        """
        stamp = (self.highway._rev, self.graph.n)
        if self._mask_stamp != stamp:
            mask = [False] * self.graph.n
            for r in self.highway._dist:
                mask[r] = True
            self._mask = mask
            self._mask_stamp = stamp
        return self._mask

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, budget: Budget | None = None) -> float:
        """Landmark-constrained distance — the paper's ``QUERY(s,t,H,L)``.

        Returns the weight of the shortest ``s``–``t`` path passing through
        at least one landmark (``inf`` when no such path exists).  This is
        an upper bound on ``d(s, t)`` and the exact beer distance when the
        landmarks are beer vertices.

        ``QUERY`` is the *anytime floor* of the serving stack: it is what a
        budget-expired :meth:`distance` falls back to, so it never degrades
        itself.  A ``budget`` is still accepted (and charged with the label
        work performed) so step budgets account for the whole request.

        Served from the compiled :class:`~repro.core.plan.QueryPlan` when
        one is valid (bitwise-identical answers, see ``repro.core.plan``);
        otherwise from the authoritative dicts.
        """
        plan = self._serving_plan()
        if plan is not None:
            return plan.query(s, t, budget)
        ls = self.labeling.row_items(s)
        lt = self.labeling.row_items(t)
        if not ls or not lt:
            return INF
        if budget is not None:
            # The scan cost is |L(s)|·|L(t)| label-pair examinations; charge
            # the outer loop so step budgets see query work at all.
            budget.charge(min(len(ls), len(lt)))
        if len(ls) > len(lt):
            ls, lt = lt, ls
        row = self.highway.row
        best = INF
        for ri, di in ls:
            hrow = row(ri)
            for rj, dj in lt:
                d = di + hrow.get(rj, INF) + dj
                if d < best:
                    best = d
        return best

    def query_from_landmark(self, r: int, u: int) -> float:
        """``QUERY(r, u, H, L)`` specialized for a landmark ``r``.

        For a landmark, ``L(r) = {(r, 0)}``, so the double loop collapses to
        one scan of ``L(u)``.  Used in the hot pruning tests of Algorithms
        1 and 2.
        """
        hrow = self.highway.row(r)
        best = INF
        for rj, dj in self.labeling.row_items(u):
            d = hrow.get(rj, INF) + dj
            if d < best:
                best = d
        return best

    def query_below(self, r: int, u: int, bound: float) -> bool:
        """Whether ``QUERY(r, u)`` is below ``bound`` beyond float tolerance.

        The pruning test of Algorithms 1 and 2.  Early-exits on the first
        witnessing entry, which is cheaper than materializing the full
        minimum on densely covered vertices.  The comparison is
        tolerance-aware (:data:`repro.tolerance.REL_TOL`): a
        landmark-through path that ties ``bound`` only in the last float
        bits does *not* count as strictly shorter, which keeps the dynamic
        algorithms' keep/prune decisions aligned with ``BUILDHCL``'s
        tie-tolerant coverage flags on float-weighted graphs.
        """
        cut = bound * PRUNE_SCALE
        hrow = self.highway.row(r)
        for rj, dj in self.labeling.row_items(u):
            if hrow.get(rj, INF) + dj < cut:
                return True
        return False

    def distance(
        self,
        s: int,
        t: int,
        budget: Budget | None = None,
        strict: bool = False,
    ) -> float:
        """Exact distance ``d(s, t)``.

        Combines the landmark-constrained upper bound with a
        distance-bounded bidirectional search on the subgraph induced by
        non-landmark vertices (paper §2).  When either endpoint is a
        landmark the bound is already exact.

        With a :class:`~repro.budget.Budget`, the refinement search is the
        part that degrades: once the budget expires the best bound found so
        far (at worst the landmark-constrained upper bound, which is always
        computed first) is returned as a flagged
        :class:`~repro.budget.DegradedResult` — or, with ``strict=True``,
        :class:`~repro.errors.DeadlineExceeded` is raised instead.  Without
        a budget the code path is byte-identical to the unbudgeted engine.
        """
        if s == t:
            return 0.0
        plan = self._serving_plan()
        if plan is not None:
            return plan.distance(s, t, budget, strict)
        s_is_lmk = s in self.highway
        t_is_lmk = t in self.highway
        if s_is_lmk and t_is_lmk:
            return self.highway.distance(s, t)
        if s_is_lmk:
            return self.query_from_landmark(s, t)
        if t_is_lmk:
            return self.query_from_landmark(t, s)
        ub = self.query(s, t, budget)
        if budget is None:
            return bounded_bidirectional_distance_masked(
                self.graph, s, t, ub, self._exclusion_mask()
            )
        if budget.check():
            # Expired before refinement: the constrained bound is the
            # anytime answer (paper QUERY, computed above in label work).
            if strict:
                raise DeadlineExceeded(
                    f"distance({s}, {t}) exceeded its budget before "
                    f"refinement ({budget.reason})"
                )
            return budget.degrade(ub)
        best = bounded_bidirectional_distance_masked(
            self.graph, s, t, ub, self._exclusion_mask(), budget
        )
        if budget.exceeded:
            if strict:
                raise DeadlineExceeded(
                    f"distance({s}, {t}) exceeded its budget mid-refinement "
                    f"({budget.reason})"
                )
            return budget.degrade(best)
        return best

    def covering_landmarks(self, v: int) -> set[int]:
        """The landmarks covering ``v`` (those with an entry in ``L(v)``)."""
        return set(self.labeling.label(v))

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        """Size statistics used by the space-validation experiments."""
        k = self.highway.size
        return IndexStats(
            landmarks=k,
            label_entries=self.labeling.total_entries(),
            highway_cells=k * k,
            average_label_size=self.labeling.average_label_size(),
            max_label_size=self.labeling.max_label_size(),
        )

    def copy(self) -> "HCLIndex":
        """Deep copy (shares the graph, copies highway and labeling).

        The compiled plan, cached mask and epoch registry are *not*
        carried over — they are derived state tied to the copied-from
        structures; the copy recompiles (and builds its own registry) on
        its own schedule.  ``plan_mode`` is inherited, except that
        ``"epoch"`` falls back to ``"auto"``: the copy has no registry,
        and a fresh one would silently start at epoch 1.
        """
        out = HCLIndex(self.graph, self.highway.copy(), self.labeling.copy())
        out.plan_mode = "auto" if self.plan_mode == "epoch" else self.plan_mode
        return out

    def structurally_equal(
        self,
        other: "HCLIndex",
        rel_tol: float = REL_TOL,
        abs_tol: float = 0.0,
    ) -> bool:
        """Equality of landmark sets, ``δ_H`` and all labels.

        The paper's minimality + order-invariance lemmas imply the index is
        a *canonical function of* ``(G, R)``; this predicate is what the
        test suite uses to compare dynamically-updated indexes against
        from-scratch rebuilds.

        The default is tolerance-aware at the library-wide
        :data:`repro.tolerance.REL_TOL`: matching entries and highway cells
        must agree within :func:`math.isclose`, and an entry present on one
        side only is accepted iff its distance is reproduced (within
        tolerance) by the *other* side's landmark-constrained query — i.e.
        it is a true distance the other index merely pruned at a
        floating-point tie.  A genuinely wrong or missing-coverage entry
        still fails.  The tolerant default exists because a highway cell
        composed as ``δ_H(r, r̂) + δ_H(r̂, r')`` by ``UPGRADE-LMK`` and the
        same value accumulated edge-by-edge by ``BUILDHCL`` can differ in
        the last float bit; bitwise-identical indexes always compare
        ``True``.  Pass ``rel_tol=0.0`` for exact (bitwise) comparison.
        """
        if rel_tol == 0.0 and abs_tol == 0.0:
            return (
                self.highway == other.highway
                and self.labeling == other.labeling
            )
        if self.landmarks != other.landmarks:
            return False
        lmks = sorted(self.landmarks)
        close = math.isclose
        for i, a in enumerate(lmks):
            for b in lmks[i:]:
                da = self.highway.distance(a, b)
                db = other.highway.distance(a, b)
                if da != db and not close(
                    da, db, rel_tol=rel_tol, abs_tol=abs_tol
                ):
                    return False
        for v in range(self.graph.n):
            mine = self.labeling.label(v)
            theirs = other.labeling.label(v)
            for r, d in mine.items():
                d2 = theirs.get(r)
                if d2 is None:
                    # Entry only on our side: tolerable iff the other index
                    # covers (r, v) at the same distance — an ulp-level
                    # pruning tie, not a structural divergence.
                    d2 = other.query_from_landmark(r, v)
                if d != d2 and not close(
                    d, d2, rel_tol=rel_tol, abs_tol=abs_tol
                ):
                    return False
            for r, d2 in theirs.items():
                if r not in mine:
                    d = self.query_from_landmark(r, v)
                    if d != d2 and not close(
                        d, d2, rel_tol=rel_tol, abs_tol=abs_tol
                    ):
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HCLIndex(n={self.graph.n}, |R|={self.highway.size}, "
            f"entries={self.labeling.total_entries()})"
        )
