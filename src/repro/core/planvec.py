"""Vectorized min-plus backend over a compiled plan's flat buffers.

The interpreted flat kernel in :mod:`repro.core.plan` walks the CSR
label rows and the dense ``δ_H`` table with Python loops — every cell
access boxes a float.  The landmark-constrained upper bound is exactly a
min-plus product of two label rows against ``δ_H``, so with numpy the
whole batch collapses into a handful of array reductions over *the same
buffers*, attached zero-copy with ``numpy.frombuffer`` (they may live in
a ``multiprocessing.shared_memory`` segment — see :mod:`repro.core.shm`;
the buffer-backed sparse-kernel idiom of APGL's ``SparseUtilsCython``).

Bitwise equality with the flat kernel (and hence the dict oracle) rests
on the same two facts the flat g-row fast path documents:

* every candidate is associated ``(d_outer + δ) + d_inner`` — here as
  ``g[outer, slot] = min_i (d_i + δ)`` followed by ``g[sj] + dj`` —
  and float addition is monotone, so the factored minimum equals the
  double-loop minimum *bitwise*, not just approximately;
* ``min`` over a fixed value set is order-independent, and numpy's
  float64 arithmetic performs the identical IEEE-754 operations CPython
  floats do, so vectorization changes neither the candidate values nor
  the reduction result.

The outer endpoint is chosen exactly as the flat kernel does — the
smaller label row, ties keeping ``s`` — which matters only for the
budget-charging contract (both sides charge ``min(|L(s)|, |L(t)|)``);
the minimum itself is symmetric.

numpy is an **optional** dependency: :func:`numpy_available` gates every
entry point, ``REPRO_NO_NUMPY=1`` forces the pure-python flat path (the
no-numpy CI job sets it), and :func:`default_backend` is the single
place the ``auto`` backend choice is made.
"""

from __future__ import annotations

import math
import os

INF = math.inf

__all__ = ["VectorBackend", "default_backend", "numpy_available"]

#: Target cell count per temporary chunk in the batched kernels; bounds
#: peak scratch memory at roughly 8–24 MB regardless of batch size.
_CHUNK_CELLS = 1 << 20

_NUMPY = None
_NUMPY_CHECKED = False


def _load_numpy():
    """Import numpy once; honor the ``REPRO_NO_NUMPY`` kill-switch."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        if os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0"):
            _NUMPY = None
        else:
            try:
                import numpy
            except ImportError:
                _NUMPY = None
            else:
                _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this process."""
    return _load_numpy() is not None


def default_backend() -> str:
    """Resolve the ``auto`` backend: env override, else numpy presence.

    ``REPRO_PLAN_BACKEND=vector|flat`` pins the choice (the differential
    tests use it); otherwise ``vector`` whenever numpy imports.
    """
    forced = os.environ.get("REPRO_PLAN_BACKEND", "").strip().lower()
    if forced in ("vector", "flat"):
        return forced
    return "vector" if numpy_available() else "flat"


class VectorBackend:
    """numpy views over one plan's canonical arrays, plus the kernels.

    Construct from :meth:`QueryPlan.canonical_arrays` — the views are
    zero-copy (``frombuffer``), so the backend adds O(n) derived
    metadata (row lengths) and, lazily, the ``n × k`` matrix ``G`` with
    ``G[v, j] = min_i (d_i + δ_H(r_i, j))`` over ``L(v)`` — the batched
    generalization of the flat kernel's memoized hot g-rows (built for
    *every* vertex because one vectorized pass costs less than the
    per-row Python loop the flat path pays for hot rows alone).
    """

    __slots__ = (
        "np",
        "n",
        "k",
        "offsets",
        "slots",
        "dists",
        "hw",
        "row_len",
        "_G",
    )

    def __init__(self, canonical):
        np = _load_numpy()
        if np is None:  # pragma: no cover - callers gate on numpy_available
            raise RuntimeError("numpy is not available")
        n, k, _ids, offsets, slots, dists, hw = canonical
        self.np = np
        self.n = n
        self.k = k
        self.offsets = np.frombuffer(offsets, dtype=np.int64)
        self.slots = np.frombuffer(slots, dtype=np.int64)
        self.dists = np.frombuffer(dists, dtype=np.float64)
        self.hw = np.frombuffer(hw, dtype=np.float64).reshape(k, k)
        self.row_len = self.offsets[1:] - self.offsets[:-1]
        self._G = None

    # ------------------------------------------------------------------
    # The dense g-matrix
    # ------------------------------------------------------------------
    def g_matrix(self):
        """``G[v, j] = min_i (d_i + δ_H(r_i, j))``, built on first use."""
        G = self._G
        if G is None:
            G = self._G = self._build_g_matrix()
        return G

    def _build_g_matrix(self):
        np = self.np
        n, k = self.n, self.k
        G = np.full((n, k), INF)
        if k == 0 or n == 0 or len(self.slots) == 0:
            return G
        lmax = int(self.row_len.max())
        if lmax == 0:
            return G
        # Padded per-row gather, chunked over vertices: rows shorter than
        # the chunk's max length read entry 0 and are masked to +inf, so
        # they cannot disturb the minimum (and empty rows stay all-inf,
        # matching the flat kernel's "missing row" answer).
        chunk = max(1, _CHUNK_CELLS // max(1, lmax * k))
        pos = np.arange(lmax)
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            lens = self.row_len[lo:hi]
            valid = pos[None, :] < lens[:, None]
            idx = np.where(valid, self.offsets[lo:hi, None] + pos[None, :], 0)
            # (C, lmax, k): d_i + δ row of each entry's landmark slot
            cand = self.dists[idx][:, :, None] + self.hw[self.slots[idx]]
            cand[~valid] = INF
            G[lo:hi] = cand.min(axis=1)
        return G

    # ------------------------------------------------------------------
    # Constrained QUERY kernels
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Single-pair ``QUERY(s, t)`` — bitwise-equal to the flat kernel."""
        row_len = self.row_len
        ls, lt = int(row_len[s]), int(row_len[t])
        if ls == 0 or lt == 0:
            return INF
        # Outer endpoint: the smaller label row, ties keeping s — the
        # flat kernel's exact selection rule.
        outer, inner = (t, s) if ls > lt else (s, t)
        lo = int(self.offsets[inner])
        hi = int(self.offsets[inner + 1])
        g = self.g_matrix()[outer]
        vals = g[self.slots[lo:hi]] + self.dists[lo:hi]
        return float(vals.min())

    def query_pairs(self, sources, targets):
        """Vectorized ``QUERY`` over parallel endpoint arrays.

        Returns a float64 array; entry ``p`` is bitwise-equal to
        ``plan.query(sources[p], targets[p])``.  Pairs with an empty
        label row on either side answer ``inf``, exactly like the flat
        kernel's early return.
        """
        np = self.np
        S = np.asarray(sources, dtype=np.int64)
        T = np.asarray(targets, dtype=np.int64)
        out = np.full(len(S), INF)
        if self.k == 0 or len(S) == 0:
            return out
        row_len = self.row_len
        swap = row_len[S] > row_len[T]
        outer = np.where(swap, T, S)
        inner = np.where(swap, S, T)
        live = np.nonzero((row_len[outer] > 0) & (row_len[inner] > 0))[0]
        if len(live) == 0:
            return out
        G = self.g_matrix()
        offsets = self.offsets
        slots = self.slots
        dists = self.dists
        # Chunked padded gather over the surviving pairs: one
        # ``min(g_outer[slots] + dists)`` reduction per chunk.
        lens_all = row_len[inner[live]]
        lmax_global = int(lens_all.max())
        chunk = max(1, _CHUNK_CELLS // max(1, lmax_global))
        for c_lo in range(0, len(live), chunk):
            sel = live[c_lo : c_lo + chunk]
            i_v = inner[sel]
            lens = row_len[i_v]
            lmax = int(lens.max())
            pos = np.arange(lmax)
            valid = pos[None, :] < lens[:, None]
            idx = np.where(valid, offsets[i_v, None] + pos[None, :], 0)
            vals = np.take_along_axis(G[outer[sel]], slots[idx], axis=1)
            vals += dists[idx]
            vals[~valid] = INF
            out[sel] = vals.min(axis=1)
        return out

    def query_many(self, keys) -> list[float]:
        """``QUERY`` over ``(s, t)`` key pairs, as native Python floats."""
        if not len(keys):
            return []
        np = self.np
        flat = np.asarray(keys, dtype=np.int64)
        return self.query_pairs(flat[:, 0], flat[:, 1]).tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dense-g" if self._G is not None else "lazy"
        return f"VectorBackend(n={self.n}, k={self.k}, {state})"
