"""Version-invalidated query caching on top of DYN-HCL.

Query workloads in the paper's scenarios (Table 3 issues thousands of
queries per landmark update) are highly repetitive; a database deployment
would memoize.  The subtlety is *invalidation*: any landmark update can
change any landmark-constrained distance.  :class:`CachedQueryEngine`
handles this with the wrapped :class:`DynamicHCL`'s monotonic ``version``
counter — bumped on every committed mutation *and* on every transaction
rollback — so a reconfiguration (or an undone one) transparently flushes
the cache without hooks into the update algorithms.

Cache misses resolve through ``HCLIndex.query``/``distance``/
``query_batch``, so they are served from the compiled
:class:`~repro.core.plan.QueryPlan` whenever one is valid — the plan
revalidates itself against the structure revision counters, independent
of (and consistent with) this cache's version-based flushing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..budget import Budget, DegradedResult
from ..obs import OBS
from .dynhcl import DynamicHCL

__all__ = ["CachedQueryEngine", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`CachedQueryEngine`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedQueryEngine:
    """LRU-memoized ``QUERY``/``distance`` over a dynamic HCL index.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> from repro.core import DynamicHCL
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> engine = CachedQueryEngine(DynamicHCL.build(g, [1]))
    >>> engine.query(0, 3)
    3.0
    >>> engine.query(0, 3)          # served from cache
    3.0
    >>> engine.stats.hits, engine.stats.misses
    (1, 1)
    """

    def __init__(self, dyn: DynamicHCL, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.dyn = dyn
        self.capacity = capacity
        self.stats = CacheStats()
        self._version = dyn.version
        self._query_cache: OrderedDict[tuple[int, int], float] = OrderedDict()
        self._distance_cache: OrderedDict[tuple[int, int], float] = OrderedDict()

    def _check_version(self) -> None:
        current = self.dyn.version
        if current != self._version:
            # Only the cached answers flush; self.stats survives the
            # version bump so long-run hit rates stay meaningful.
            self._query_cache.clear()
            self._distance_cache.clear()
            self._version = current
            self.stats.invalidations += 1
            if OBS.enabled:
                OBS.registry.counter("cache.invalidations").inc()

    def _lookup(self, cache: OrderedDict, key, compute, **kwargs) -> float:
        self._check_version()
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
            self.stats.hits += 1
            if OBS.enabled:
                OBS.registry.counter("cache.hits").inc()
            return value
        value = compute(*key, **kwargs)
        if not isinstance(value, DegradedResult):
            # Degraded bounds are never memoized: a later unconstrained
            # call must get (and then cache) the exact answer, not inherit
            # some earlier request's deadline.
            cache[key] = value
            if len(cache) > self.capacity:
                cache.popitem(last=False)
        self.stats.misses += 1
        if OBS.enabled:
            OBS.registry.counter("cache.misses").inc()
        return value

    def query(
        self, s: int, t: int, budget: Budget | None = None, strict: bool = False
    ) -> float:
        """Memoized landmark-constrained distance (symmetric key)."""
        key = (s, t) if s <= t else (t, s)
        if budget is None:
            return self._lookup(self._query_cache, key, self.dyn.query)
        return self._lookup(
            self._query_cache, key, self.dyn.query, budget=budget
        )

    def distance(
        self, s: int, t: int, budget: Budget | None = None, strict: bool = False
    ) -> float:
        """Memoized exact distance (symmetric key).

        A cache hit beats any budget — the stored answer is exact and
        free, so budgeted requests happily consume it.  Only misses pay
        (and potentially degrade under) the budget.
        """
        key = (s, t) if s <= t else (t, s)
        if budget is None:
            return self._lookup(self._distance_cache, key, self.dyn.distance)
        return self._lookup(
            self._distance_cache,
            key,
            self.dyn.distance,
            budget=budget,
            strict=strict,
        )

    def batch(
        self,
        pairs,
        workers: int | None = None,
        exact: bool = False,
        budget: Budget | None = None,
        strict: bool = False,
        plan="auto",
        backend: str = "auto",
    ) -> list[float]:
        """Answer many pairs at once, through the cache.

        Cached pairs are served from the (version-checked) LRU store;
        the misses go to :func:`repro.core.batchquery.query_batch` in one
        batched call and are inserted afterwards, so a later per-pair
        ``query``/``distance`` hits.  ``plan`` passes through to
        ``query_batch`` — under ``"auto"`` an index in
        ``plan_mode="epoch"`` serves misses from a pinned
        :class:`~repro.core.epoch.PlanEpoch`, so the whole miss set is
        answered against one consistent snapshot.
        """
        from .batchquery import query_batch  # local: avoids an import cycle

        self._check_version()
        cache = self._distance_cache if exact else self._query_cache
        pair_list = list(pairs)
        results: list[float | None] = [None] * len(pair_list)
        misses: list[tuple[int, int]] = []
        miss_at: list[int] = []
        for i, (s, t) in enumerate(pair_list):
            key = (s, t) if s <= t else (t, s)
            value = cache.get(key)
            if value is not None:
                cache.move_to_end(key)
                self.stats.hits += 1
                results[i] = value
            else:
                misses.append(key)
                miss_at.append(i)
        if misses:
            computed = query_batch(
                self.dyn.index,
                misses,
                workers=workers,
                exact=exact,
                budget=budget,
                strict=strict,
                plan=plan,
                backend=backend,
            )
            for i, key, value in zip(miss_at, misses, computed):
                results[i] = value
                if key not in cache:
                    self.stats.misses += 1
                if isinstance(value, DegradedResult):
                    continue  # sound but inexact: never memoized
                cache[key] = value
                if len(cache) > self.capacity:
                    cache.popitem(last=False)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("cache.hits").inc(len(pair_list) - len(misses))
            reg.counter("cache.misses").inc(len(misses))
        return results

    # Update operations pass straight through; the version bump does the rest.
    def add_landmark(self, v: int, budget: Budget | None = None):
        """Promote ``v``; cached answers are invalidated lazily."""
        return self.dyn.add_landmark(v, budget=budget)

    def remove_landmark(self, v: int, budget: Budget | None = None):
        """Demote ``v``; cached answers are invalidated lazily."""
        return self.dyn.remove_landmark(v, budget=budget)

    def apply_batch(
        self,
        adds=(),
        removes=(),
        edge_updates=(),
        rebuild_factor: float = 0.75,
        budget: Budget | None = None,
    ):
        """Apply one merged batch; cached answers are invalidated lazily."""
        return self.dyn.apply_batch(
            adds=adds,
            removes=removes,
            edge_updates=edge_updates,
            rebuild_factor=rebuild_factor,
            budget=budget,
        )

    def __len__(self) -> int:
        return len(self._query_cache) + len(self._distance_cache)
