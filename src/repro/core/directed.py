"""Directed HCL (paper future-work item i).

The paper notes (§2, §5) that all its methods adapt to digraphs by keeping
outgoing and incoming information separately.  This module implements that
adaptation end to end:

* a directed highway ``δ_H : R × R -> R+`` of *ordered*-pair distances;
* two label families: ``L_out(v)`` holds ``(r, d(r -> v))`` entries (some
  shortest ``r -> v`` path has no internal landmark) and ``L_in(v)`` holds
  ``(r, d(v -> r))`` entries (same, for ``v -> r`` paths);
* ``QUERY(s, t) = min d(s -> r_i) + δ_H(r_i -> r_j) + d(r_j -> t)`` over
  ``(r_i, ·) ∈ L_in(s)`` and ``(r_j, ·) ∈ L_out(t)``;
* directed ``BUILDHCL`` (one forward + one backward flagged sweep per
  landmark) and directed ``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` that run the
  undirected algorithms' logic once per direction.

Canonical semantics carry over verbatim, so the test suite again validates
the dynamic algorithms by structural equality with directed rebuilds.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable

from ..errors import LandmarkError, VertexError
from ..graphs.digraph import DiGraph
from ..graphs.traversal import flagged_single_source
from ..tolerance import PRUNE_SCALE

INF = math.inf

__all__ = [
    "DirectedHCLIndex",
    "build_directed_hcl",
    "upgrade_landmark_directed",
    "downgrade_landmark_directed",
    "insert_arc_directed",
    "delete_arc_directed",
]


class _DirectionView:
    """Adapter presenting one orientation of a digraph as a plain graph."""

    __slots__ = ("_adj", "n", "unweighted")

    def __init__(self, digraph: DiGraph, forward: bool):
        self._adj = digraph.out_neighbors if forward else digraph.in_neighbors
        self.n = digraph.n
        self.unweighted = digraph.unweighted

    def neighbors(self, u: int) -> list[tuple[int, float]]:
        return self._adj(u)


class DirectedHCLIndex:
    """HCL index over a digraph: directed highway + in/out labels."""

    __slots__ = ("graph", "_h", "_out", "_in")

    def __init__(self, graph: DiGraph):
        self.graph = graph
        self._h: dict[int, dict[int, float]] = {}
        self._out: list[dict[int, float]] = [{} for _ in range(graph.n)]
        self._in: list[dict[int, float]] = [{} for _ in range(graph.n)]

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return set(self._h)

    def is_landmark(self, v: int) -> bool:
        """Whether ``v`` is a landmark."""
        return v in self._h

    def highway_distance(self, a: int, b: int) -> float:
        """``δ_H(a -> b)`` for landmarks ``a``, ``b``."""
        try:
            return self._h[a][b]
        except KeyError:
            raise LandmarkError(f"({a}, {b}) not a landmark pair") from None

    def label_out(self, v: int) -> dict[int, float]:
        """``L_out(v)``: landmark-to-``v`` entries (read-only view)."""
        return self._out[v]

    def label_in(self, v: int) -> dict[int, float]:
        """``L_in(v)``: ``v``-to-landmark entries (read-only view)."""
        return self._in[v]

    def total_entries(self) -> int:
        """Label entries across both families."""
        return sum(len(d) for d in self._out) + sum(len(d) for d in self._in)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Landmark-constrained distance ``s -> t``."""
        ls = self._in[s]
        lt = self._out[t]
        if not ls or not lt:
            return INF
        h = self._h
        best = INF
        for ri, di in ls.items():
            hrow = h[ri]
            for rj, dj in lt.items():
                d = di + hrow.get(rj, INF) + dj
                if d < best:
                    best = d
        return best

    def query_to_landmark(self, u: int, r: int) -> float:
        """``QUERY(u, r)`` for landmark ``r``: one scan of ``L_in(u)``."""
        h = self._h
        best = INF
        for ri, di in self._in[u].items():
            d = di + h[ri].get(r, INF)
            if d < best:
                best = d
        return best

    def query_from_landmark(self, r: int, u: int) -> float:
        """``QUERY(r, u)`` for landmark ``r``: one scan of ``L_out(u)``."""
        hrow = self._h[r]
        best = INF
        for rj, dj in self._out[u].items():
            d = hrow.get(rj, INF) + dj
            if d < best:
                best = d
        return best

    def query_below_out(self, r: int, u: int, bound: float) -> bool:
        """Tolerant early-exit test ``QUERY(r, u) < bound`` over ``L_out(u)``.

        Tolerance-aware like :meth:`repro.core.index.HCLIndex.query_below`:
        an ulp-level tie with ``bound`` does not count as strictly below.
        """
        cut = bound * PRUNE_SCALE
        hrow = self._h[r]
        for rj, dj in self._out[u].items():
            if hrow.get(rj, INF) + dj < cut:
                return True
        return False

    def query_below_in(self, u: int, r: int, bound: float) -> bool:
        """Tolerant early-exit test ``QUERY(u, r) < bound`` over ``L_in(u)``."""
        cut = bound * PRUNE_SCALE
        h = self._h
        for ri, di in self._in[u].items():
            if di + h[ri].get(r, INF) < cut:
                return True
        return False

    def distance(self, s: int, t: int) -> float:
        """Exact ``s -> t`` distance (bound + bounded bidirectional)."""
        if s == t:
            return 0.0
        if s in self._h:
            return self.query_from_landmark(s, t)
        if t in self._h:
            return self.query_to_landmark(s, t)
        ub = self.query(s, t)
        return _bounded_bidirectional_directed(self.graph, s, t, ub, self._h)

    def structurally_equal(self, other: "DirectedHCLIndex") -> bool:
        """Exact equality of highway and both label families."""
        return (
            self._h == other._h
            and self._out == other._out
            and self._in == other._in
        )


def _bounded_bidirectional_directed(
    g: DiGraph, s: int, t: int, upper_bound: float, excluded: dict | set
) -> float:
    """Directed analogue of the bounded bidirectional refinement search."""
    if s in excluded or t in excluded:
        return upper_bound
    dist_f = {s: 0.0}
    dist_b = {t: 0.0}
    heap_f: list[tuple[float, int]] = [(0.0, s)]
    heap_b: list[tuple[float, int]] = [(0.0, t)]
    best = upper_bound
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, other, adj = heap_f, dist_f, dist_b, g.out_neighbors
        else:
            heap, dist, other, adj = heap_b, dist_b, dist_f, g.in_neighbors
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INF) or d >= best:
            continue
        for v, w in adj(u):
            if v in excluded:
                continue
            nd = d + w
            if nd < dist.get(v, INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
            dv_other = other.get(v)
            if dv_other is not None and dist[v] + dv_other < best:
                best = dist[v] + dv_other
    return best


# ----------------------------------------------------------------------
# Static build
# ----------------------------------------------------------------------
def build_directed_hcl(graph: DiGraph, landmarks) -> DirectedHCLIndex:
    """Directed ``BUILDHCL``: two flagged sweeps per landmark."""
    lmk_list: list[int] = []
    seen: set[int] = set()
    for r in landmarks:
        if not 0 <= r < graph.n:
            raise VertexError(f"landmark {r} out of range [0, {graph.n})")
        if r in seen:
            raise LandmarkError(f"duplicate landmark {r}")
        seen.add(r)
        lmk_list.append(r)

    index = DirectedHCLIndex(graph)
    for r in lmk_list:
        index._h[r] = {}
    fwd = _DirectionView(graph, forward=True)
    bwd = _DirectionView(graph, forward=False)
    lmk_set = set(lmk_list)
    for r in lmk_list:
        blocked = lmk_set - {r}
        dist_f, clear_f = flagged_single_source(fwd, r, blocked)
        dist_b, clear_b = flagged_single_source(bwd, r, blocked)
        row = index._h[r]
        for r2 in lmk_list:
            row[r2] = dist_f[r2]  # d(r -> r2); backward pass fills the rest
        for v in range(graph.n):
            if v in lmk_set:
                continue
            if clear_f[v]:
                index._out[v][r] = dist_f[v]
            if clear_b[v]:
                index._in[v][r] = dist_b[v]
        index._out[r][r] = 0.0
        index._in[r][r] = 0.0
    return index


# ----------------------------------------------------------------------
# Dynamic: UPGRADE-LMK, directed
# ----------------------------------------------------------------------
def _upgrade_sweep(
    index: DirectedHCLIndex,
    r: int,
    forward: bool,
) -> tuple[set[int], dict[int, list[int]]]:
    """One orientation of the directed upgrade search (Algorithm 1 logic).

    ``forward=True`` extends ``L_out`` with paths *from* ``r`` (sweeping
    out-arcs); ``forward=False`` extends ``L_in`` with paths *to* ``r``
    (sweeping in-arcs).  Returns the landmarks the sweep reached and, per
    previously-covering landmark, the vertices it relabelled.

    Unlike the undirected algorithm, the cleanup phase is *not* run here:
    in a digraph the landmark set certifying that an ``L_out`` entry
    ``(r', ·)`` became superfluous is the one reached by the *backward*
    sweep (the ``r' -> r`` prefix), and symmetrically for ``L_in`` — the
    caller crosses the two sweeps' results.
    """
    graph = index.graph
    labels = index._out if forward else index._in
    sweep_adj = graph.out_neighbors if forward else graph.in_neighbors
    prune_below: Callable[[int, float], bool] = (
        (lambda u, bound: index.query_below_out(r, u, bound))
        if forward
        else (lambda u, bound: index.query_below_in(u, r, bound))
    )
    landmark_set = index.landmarks

    labels[r].clear()
    reached_lan: set[int] = set()
    reached_ver: dict[int, list[int]] = {}
    dist = [INF] * graph.n
    dist[r] = 0.0
    # Cleanup candidate filter (see the undirected module): entry (r2, d2)
    # can only become superfluous if every shortest path crosses r, i.e.
    # d2 == d(r2 -> r) + delta for L_out, d2 == delta + d(r -> r2) for L_in.
    h = index._h
    row_r = h[r]

    if graph.unweighted:
        frontier: deque[int] | list = deque([r])
        pop = frontier.popleft
    else:
        frontier = [(0.0, r)]

    while frontier:
        if graph.unweighted:
            u = pop()
            delta = dist[u]
        else:
            delta, u = heapq.heappop(frontier)
            if delta > dist[u]:
                continue
        if u != r:
            if u in landmark_set:
                reached_lan.add(u)
                continue
            if prune_below(u, delta):
                continue
        if forward:
            for r2, d2 in labels[u].items():
                if d2 == h[r2].get(r, INF) + delta:
                    reached_ver.setdefault(r2, []).append(u)
        else:
            for r2, d2 in labels[u].items():
                if d2 == delta + row_r.get(r2, INF):
                    reached_ver.setdefault(r2, []).append(u)
        labels[u][r] = delta
        for v, w in sweep_adj(u):
            nd = delta + w
            if nd < dist[v]:
                dist[v] = nd
                if graph.unweighted:
                    frontier.append(v)
                else:
                    heapq.heappush(frontier, (nd, v))

    return reached_lan, reached_ver


def _upgrade_cleanup(
    index: DirectedHCLIndex,
    reached_lan: set[int],
    reached_ver: dict[int, list[int]],
    forward: bool,
) -> None:
    """Superfluous-entry removal (Algorithm 1 lines 27-34), one label side.

    ``forward=True`` cleans ``L_out`` entries, certifying survival through
    in-neighbors (a shortest-path predecessor); ``forward=False`` cleans
    ``L_in`` through out-neighbors.
    """
    graph = index.graph
    labels = index._out if forward else index._in
    certify_adj = graph.in_neighbors if forward else graph.out_neighbors
    for r2 in reached_lan:
        candidates = reached_ver.get(r2)
        if not candidates:
            continue
        ordered = sorted((labels[x][r2], x) for x in candidates if r2 in labels[x])
        for rho, u in ordered:
            keep = False
            for w, weight in certify_adj(u):
                dw = labels[w].get(r2)
                if dw is not None and dw + weight == rho:
                    keep = True
                    break
            if not keep:
                del labels[u][r2]


def upgrade_landmark_directed(index: DirectedHCLIndex, r: int) -> None:
    """Directed ``UPGRADE-LMK``: promote ``r`` in a directed index."""
    graph = index.graph
    if not 0 <= r < graph.n:
        raise VertexError(f"vertex {r} out of range [0, {graph.n})")
    if r in index._h:
        raise LandmarkError(f"vertex {r} is already a landmark")

    old_landmarks = index.landmarks
    to_lmk = dict(index._in[r])  # (ri, d(r -> ri)) for ri covering r forward
    from_lmk = dict(index._out[r])  # (ri, d(ri -> r))
    h = index._h
    row_r: dict[int, float] = {r: 0.0}
    h[r] = row_r
    # d(r -> r2): direct when recorded, else through a first landmark.
    for r2 in old_landmarks:
        best = to_lmk.get(r2, INF)
        for rh, d_to in to_lmk.items():
            d = d_to + h[rh].get(r2, INF)
            if d < best:
                best = d
        row_r[r2] = best
    # d(r2 -> r): direct when recorded, else through a last landmark.
    for r2 in old_landmarks:
        best = from_lmk.get(r2, INF)
        for rh, d_from in from_lmk.items():
            d = h[r2].get(rh, INF) + d_from
            if d < best:
                best = d
        h[r2][r] = best

    lan_fwd, ver_out = _upgrade_sweep(index, r, forward=True)
    lan_bwd, ver_in = _upgrade_sweep(index, r, forward=False)
    # Crossed cleanup: an L_out entry (r', .) dies when every shortest
    # r' -> u path crosses r, whose r' -> r prefix is what the *backward*
    # sweep certifies (and symmetrically for L_in).
    _upgrade_cleanup(index, lan_bwd, ver_out, forward=True)
    _upgrade_cleanup(index, lan_fwd, ver_in, forward=False)


# ----------------------------------------------------------------------
# Dynamic: DOWNGRADE-LMK, directed
# ----------------------------------------------------------------------
def _downgrade_one_direction(
    index: DirectedHCLIndex, r: int, remaining: set[int], forward: bool
) -> list[tuple[int, float]]:
    """Erasure sweep (Algorithm 2 phase 1) in one orientation.

    ``forward=True`` sweeps out-arcs from ``r``: it deletes ``(r, ·)``
    entries from ``L_out`` and collects landmarks ``u`` with a landmark-free
    shortest ``r -> u`` path (these cover ``r`` in ``L_in(r)``).
    """
    graph = index.graph
    labels = index._out if forward else index._in
    own_label = index._in[r] if forward else index._out[r]
    sweep_adj = graph.out_neighbors if forward else graph.in_neighbors
    h = index._h
    reached: list[tuple[int, float]] = []
    hole = [False] * graph.n  # vertices losing their (r, .) entry
    hole[r] = True

    dist = [INF] * graph.n
    dist[r] = 0.0
    if graph.unweighted:
        frontier: deque[int] | list = deque([r])
        pop = frontier.popleft
    else:
        frontier = [(0.0, r)]

    while frontier:
        if graph.unweighted:
            u = pop()
            delta = dist[u]
        else:
            delta, u = heapq.heappop(frontier)
            if delta > dist[u]:
                continue
        if u in remaining:
            stored = h[r][u] if forward else h[u][r]
            if stored < delta:
                continue
            reached.append((u, delta))
            own_label[u] = delta
            continue
        if labels[u].pop(r, None) is not None:
            hole[u] = True
        for v, w in sweep_adj(u):
            nd = delta + w
            if nd < dist[v]:
                dist[v] = nd
                if graph.unweighted:
                    frontier.append(v)
                else:
                    heapq.heappush(frontier, (nd, v))
    return reached, hole


def _recover_one_direction(
    index: DirectedHCLIndex,
    r: int,
    remaining: set[int],
    reached: list[tuple[int, float]],
    hole: list[bool],
    forward: bool,
) -> None:
    """Re-cover sweeps (Algorithm 2 phase 2) in one orientation.

    Confined to the hole left by ``r`` in the corresponding label family:
    only vertices that lost their ``(r, ·)`` entry can need a new one (the
    path suffix/prefix from ``r`` would have covered them), and every
    vertex between ``r`` and them lies in the hole too.
    """
    graph = index.graph
    labels = index._out if forward else index._in
    sweep_adj = graph.out_neighbors if forward else graph.in_neighbors
    prune_below = (
        index.query_below_out if forward else
        (lambda l, u, bound: index.query_below_in(u, l, bound))
    )

    for l, rho in reached:
        sweep_dist: dict[int, float] = {l: 0.0, r: rho}
        if graph.unweighted:
            frontier: deque[int] | list = deque([r])
            pop = frontier.popleft
        else:
            frontier = [(rho, r)]
        while frontier:
            if graph.unweighted:
                u = pop()
                delta = sweep_dist[u]
            else:
                delta, u = heapq.heappop(frontier)
                if delta > sweep_dist.get(u, INF):
                    continue
            if u != r:
                if not hole[u]:
                    continue
                dl = labels[u].get(l)
                if dl is not None and dl < delta:
                    continue
                if prune_below(l, u, delta):
                    continue
            labels[u][l] = delta
            for v, w in sweep_adj(u):
                nd = delta + w
                if hole[v] and nd < sweep_dist.get(v, INF):
                    sweep_dist[v] = nd
                    if graph.unweighted:
                        frontier.append(v)
                    else:
                        heapq.heappush(frontier, (nd, v))


def downgrade_landmark_directed(index: DirectedHCLIndex, r: int) -> None:
    """Directed ``DOWNGRADE-LMK``: demote ``r`` in a directed index."""
    if r not in index._h:
        raise LandmarkError(f"vertex {r} is not a landmark")
    remaining = index.landmarks
    remaining.discard(r)

    index._in[r].clear()
    index._out[r].clear()
    # Forward sweep fixes L_out and finds landmarks covering r from behind
    # (entries for L_in(r)); backward sweep is the mirror image.
    reached_fwd, hole_out = _downgrade_one_direction(index, r, remaining, forward=True)
    reached_bwd, hole_in = _downgrade_one_direction(index, r, remaining, forward=False)

    del index._h[r]
    for row in index._h.values():
        row.pop(r, None)

    # Landmarks covering r forward (shortest l -> r path; from the backward
    # sweep) re-cover L_out through r; mirror for L_in.
    _recover_one_direction(index, r, remaining, reached_bwd, hole_out, forward=True)
    _recover_one_direction(index, r, remaining, reached_fwd, hole_in, forward=False)


def _relabel_landmark_directed(index: DirectedHCLIndex, r: int) -> None:
    """Recompute landmark ``r``'s highway row/column and both label sides."""
    graph = index.graph
    landmarks = index.landmarks
    blocked = landmarks - {r}
    dist_f, clear_f = flagged_single_source(
        _DirectionView(graph, forward=True), r, blocked
    )
    dist_b, clear_b = flagged_single_source(
        _DirectionView(graph, forward=False), r, blocked
    )
    h = index._h
    for r2 in landmarks:
        h[r][r2] = dist_f[r2]
        h[r2][r] = dist_b[r2]
    for v in range(graph.n):
        if v in landmarks:
            continue
        if clear_f[v]:
            index._out[v][r] = dist_f[v]
        else:
            index._out[v].pop(r, None)
        if clear_b[v]:
            index._in[v][r] = dist_b[v]
        else:
            index._in[v].pop(r, None)
    index._out[r][r] = 0.0
    index._in[r][r] = 0.0


def _affected_landmarks_directed(
    index: DirectedHCLIndex, u: int, v: int, w: float, inserting: bool
) -> list[int]:
    """Landmarks whose sweeps the arc ``u -> v`` (weight ``w``) may touch.

    Mirrors the undirected test with direction-aware exact distances:
    forward sweeps care about ``d(r -> u) + w`` vs ``d(r -> v)``, backward
    sweeps about ``d(v -> r)`` vs ``w + d(u -> r)`` — both reduce to the
    same tightness condition on the arc, evaluated from the index's own
    exact landmark distances.
    """
    affected = []
    for r in index.landmarks:
        to_u = 0.0 if r == u else index.query_from_landmark(r, u)
        to_v = 0.0 if r == v else index.query_from_landmark(r, v)
        from_u = 0.0 if r == u else index.query_to_landmark(u, r)
        from_v = 0.0 if r == v else index.query_to_landmark(v, r)
        # Guard against inf <= inf: an arc between vertices unreachable
        # from/to r cannot change r's sweeps.
        fwd = to_u + w
        bwd = w + from_v
        if inserting:
            hit = (fwd <= to_v and fwd < INF) or (bwd <= from_u and bwd < INF)
        else:
            hit = (fwd == to_v and fwd < INF) or (bwd == from_u and bwd < INF)
        if hit:
            affected.append(r)
    return affected


def insert_arc_directed(
    index: DirectedHCLIndex, u: int, v: int, w: float = 1.0
) -> int:
    """Insert arc ``u -> v`` and repair the affected landmark rows.

    Returns the number of landmarks relabelled (the fully dynamic
    extension for digraphs — future-work items i + iii combined).
    """
    affected = _affected_landmarks_directed(index, u, v, w, inserting=True)
    index.graph.add_arc(u, v, w)
    for r in affected:
        _relabel_landmark_directed(index, r)
    return len(affected)


def delete_arc_directed(index: DirectedHCLIndex, u: int, v: int) -> int:
    """Delete arc ``u -> v`` and repair the affected landmark rows."""
    weight = None
    for x, arc_w in index.graph.out_neighbors(u):
        if x == v:
            weight = arc_w
            break
    if weight is None:
        raise LandmarkError(f"arc ({u}, {v}) not present")
    affected = _affected_landmarks_directed(index, u, v, weight, inserting=False)
    index.graph.remove_arc(u, v)
    for r in affected:
        _relabel_landmark_directed(index, r)
    return len(affected)


class DirectedDynamicHCL:
    """Facade mirroring :class:`~repro.core.dynhcl.DynamicHCL` for digraphs.

    Examples
    --------
    >>> from repro.graphs import DiGraph
    >>> g = DiGraph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
    ...     g.add_arc(u, v, 1.0)
    >>> dyn = DirectedDynamicHCL.build(g, [1])
    >>> dyn.add_landmark(3)
    >>> dyn.query(0, 2)          # 0 -> 1 -> 2 passes landmark 1
    2.0
    >>> dyn.remove_landmark(1)
    >>> dyn.query(0, 2)          # now forced through 3: 0->1->2->3->0->1->2
    6.0
    """

    def __init__(self, index: DirectedHCLIndex):
        self.index = index

    @classmethod
    def build(cls, graph: DiGraph, landmarks) -> "DirectedDynamicHCL":
        """Directed ``BUILDHCL`` plus the facade."""
        return cls(build_directed_hcl(graph, landmarks))

    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return self.index.landmarks

    def add_landmark(self, v: int) -> None:
        """Promote ``v`` (directed ``UPGRADE-LMK``, both orientations)."""
        upgrade_landmark_directed(self.index, v)

    def remove_landmark(self, v: int) -> None:
        """Demote ``v`` (directed ``DOWNGRADE-LMK``, both orientations)."""
        downgrade_landmark_directed(self.index, v)

    def query(self, s: int, t: int) -> float:
        """Landmark-constrained ``s -> t`` distance."""
        return self.index.query(s, t)

    def distance(self, s: int, t: int) -> float:
        """Exact ``s -> t`` distance."""
        return self.index.distance(s, t)

    def rebuild(self) -> DirectedHCLIndex:
        """Fresh directed ``BUILDHCL`` over the current landmark set."""
        return build_directed_hcl(self.index.graph, sorted(self.landmarks))


__all__.append("DirectedDynamicHCL")
