"""Algorithm 1 — ``UPGRADE-LMK``: promote a vertex to a landmark.

Faithful implementation of the paper's Algorithm 1 for both weighted
(Dijkstra-like) and unweighted (BFS-like) graphs.  The algorithm has three
phases:

1. *Highway enrichment* (lines 1–5): distances from the new landmark ``r``
   to all existing landmarks are obtained **without any graph search** —
   directly from ``L(r)`` for landmarks that cover ``r``, and by one-stop
   composition ``min_{r̂} δ_H(r, r̂) + δ_H(r̂, r')`` otherwise.
2. *Pruned search* (lines 6–26): a Dijkstra/BFS from ``r`` that prunes at
   other landmarks and whenever ``QUERY(r, u) < δ`` (a strictly shorter
   landmark-through path exists).  Every vertex the search settles receives
   entry ``(r, δ)``; landmarks it touches go to ``REACHED-LAN``, and the
   previously-covering landmarks of relabelled vertices populate
   ``REACHED-VER``.
3. *Superfluous-entry cleanup* (lines 27–34): for each reached landmark
   ``r'``, vertices that were covered by ``r'`` and are now also covered by
   ``r`` are examined in nondecreasing distance from ``r'``; an entry
   ``(r', ρ)`` survives iff some neighbor ``w`` still covered by ``r'``
   certifies a shortest path (``ρ = d(r', w) + ω(w, u)``).  Removals
   cascade, restoring minimality and order-invariance (Lemmas 3.2/3.3).

The returned statistics let the experiment harness report search sizes.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass

from ..errors import LandmarkError, VertexError
from ..obs import OBS, SIZE_BOUNDS
from ..tolerance import PRUNE_SCALE, TIE_HI
from .index import HCLIndex

INF = math.inf

__all__ = ["upgrade_landmark", "UpgradeStats"]

# Fault-injection seam (see repro.testing.faults.fail_at_phase): called with
# the name of each completed phase so crash-safety tests can abort the
# algorithm at its internal consistency boundaries.  Always None in
# production.
_PHASE_HOOK = None


def _phase(name: str) -> None:
    if _PHASE_HOOK is not None:
        _PHASE_HOOK(name)


@dataclass(frozen=True)
class UpgradeStats:
    """Work counters for one ``UPGRADE-LMK`` run."""

    new_landmark: int
    settled: int
    entries_added: int
    entries_removed: int
    reached_landmarks: int
    # Vertices the pruned search dequeued but rejected because a strictly
    # shorter landmark-through path exists (the QUERY(r, u) < δ test).
    # Appended with a default so pickled/star-unpacked stats stay valid.
    pruned: int = 0


def upgrade_landmark(
    index: HCLIndex, r: int, remove_superfluous: bool = True, budget=None
) -> UpgradeStats:
    """Add ``r`` to the landmark set of ``index``, updating it in place.

    Parameters
    ----------
    index:
        A canonical HCL index covering its graph. Modified in place.
    r:
        Vertex to promote; must not already be a landmark.
    remove_superfluous:
        Run the cleanup phase (lines 27-34). Disabling it keeps the index
        *correct* (the cover property still holds) but no longer minimal /
        order-invariant; exposed for the ablation study only.
    budget:
        Optional :class:`~repro.budget.Budget` cancellation budget.  The
        algorithm charges one step per settled vertex and checks the
        budget at every settle and phase boundary; on expiry it raises
        :class:`~repro.errors.DeadlineExceeded` mid-flight.  A mutation
        cannot return a partial answer, so always run budgeted upgrades
        inside an :class:`~repro.core.transaction.IndexTransaction` (the
        :class:`~repro.core.dynhcl.DynamicHCL` facade does) — the
        rollback turns the deadline into a clean, retriable cancellation.

    Returns
    -------
    UpgradeStats
        Counters describing the amount of work performed.

    Raises
    ------
    LandmarkError
        If ``r`` is already a landmark.
    """
    graph = index.graph
    highway = index.highway
    labeling = index.labeling
    if not 0 <= r < graph.n:
        raise VertexError(f"vertex {r} out of range [0, {graph.n})")
    if r in highway:
        raise LandmarkError(f"vertex {r} is already a landmark")
    # Hoisted once: the per-settle checkpoint below costs one local-None
    # test when no budget is threaded (bench_obs gates this at <2%).
    charge = budget.charge if budget is not None else None
    if budget is not None:
        budget.raise_if_exceeded("UPGRADE-LMK")

    old_landmarks = highway.landmarks

    # ------------------------------------------------------------------
    # Lines 1-5: enrich the highway with the distances of r. No search.
    # ------------------------------------------------------------------
    label_r = dict(labeling.label(r))  # entries (r', δ) of landmarks covering r
    highway.add_landmark(r)
    for r2, d in label_r.items():
        highway.set_distance(r, r2, d)
    covering = set(label_r)
    row_r = highway.row(r)
    for r2 in old_landmarks - covering:
        # Every shortest r-r2 path crosses some landmark r̂ covering r.
        best = INF
        row_r2 = highway.row(r2)
        for rh in covering:
            d = row_r[rh] + row_r2[rh]
            if d < best:
                best = d
        highway.set_distance(r, r2, best)
    _phase("highway")
    if budget is not None:
        budget.raise_if_exceeded("UPGRADE-LMK (highway phase)")

    # ------------------------------------------------------------------
    # Lines 6-26: pruned search from r.
    # ------------------------------------------------------------------
    labeling.clear_vertex(r)
    reached_lan: set[int] = set()
    reached_ver: dict[int, list[int]] = {}
    new_set = old_landmarks
    new_set.add(r)  # R' = R ∪ {r}; highway.landmarks returned a fresh set

    query_below = index.query_below
    label_of = labeling.label
    add_entry = labeling.add_entry
    neighbors = graph.neighbors

    dist = [INF] * graph.n
    dist[r] = 0.0
    settled = 0
    pruned = 0
    entries_added = 0

    # Candidate filter for the cleanup phase: an entry (r', ρ) of a settled
    # vertex u can only have become superfluous if *all* shortest r' -> u
    # paths pass the new landmark r, which forces ρ = δ_H(r', r) + d(r, u).
    # Entries failing this O(1) test are provably still needed, so they are
    # never enqueued for the (expensive) neighbor-certification pass.
    if graph.unweighted:
        # BFS variant: FIFO queue, discovery-time distances, checks at
        # dequeue time exactly as in the Dijkstra variant.
        queue: deque[int] = deque([r])
        while queue:
            u = queue.popleft()
            delta = dist[u]
            if u != r:
                if u in new_set:
                    reached_lan.add(u)
                    continue
                if query_below(r, u, delta):
                    pruned += 1
                    continue
            settled += 1
            if charge is not None and charge():
                budget.raise_if_exceeded("UPGRADE-LMK (search)")
            for r2, d2 in label_of(u).items():
                x = row_r.get(r2, INF) + delta
                if x * PRUNE_SCALE <= d2 <= x * TIE_HI:
                    reached_ver.setdefault(r2, []).append(u)
            add_entry(u, r, delta)
            entries_added += 1
            nd = delta + 1.0
            for v, _ in neighbors(u):
                if nd < dist[v]:
                    dist[v] = nd
                    queue.append(v)
    else:
        heap: list[tuple[float, int]] = [(0.0, r)]
        while heap:
            delta, u = heapq.heappop(heap)
            if delta > dist[u]:
                continue
            if u != r:
                if u in new_set:
                    reached_lan.add(u)
                    continue
                if query_below(r, u, delta):
                    pruned += 1
                    continue
            settled += 1
            if charge is not None and charge():
                budget.raise_if_exceeded("UPGRADE-LMK (search)")
            for r2, d2 in label_of(u).items():
                x = row_r.get(r2, INF) + delta
                if x * PRUNE_SCALE <= d2 <= x * TIE_HI:
                    reached_ver.setdefault(r2, []).append(u)
            add_entry(u, r, delta)
            entries_added += 1
            for v, w in neighbors(u):
                nd = delta + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

    _phase("search")
    if budget is not None:
        budget.raise_if_exceeded("UPGRADE-LMK (search phase)")

    # ------------------------------------------------------------------
    # Lines 27-34: drop entries made superfluous by r.
    # ------------------------------------------------------------------
    entries_removed = 0
    remove_entry = labeling.remove_entry
    if not remove_superfluous:
        reached_lan = set()
    for r2 in reached_lan:
        if budget is not None:
            budget.raise_if_exceeded("UPGRADE-LMK (cleanup)")
        candidates = reached_ver.get(r2)
        if not candidates:
            continue
        # Process in nondecreasing distance from r2 so removals cascade
        # outward along r2's shortest-path trees (paper lines 28-34).
        ordered = sorted(
            (label_of(x)[r2], x) for x in candidates if r2 in label_of(x)
        )
        for rho, u in ordered:
            keep = False
            for w, weight in neighbors(u):
                dw = label_of(w).get(r2)
                if dw is None:
                    continue
                y = dw + weight
                # Tolerant certificate: the two sides sum the same edges in
                # different orders, so a genuine shortest-path witness may
                # land an ulp off rho (repro.tolerance).
                if y * PRUNE_SCALE <= rho <= y * TIE_HI:
                    keep = True
                    break
            if not keep:
                remove_entry(u, r2)
                entries_removed += 1

    if OBS.enabled:
        # Recorded once per run, never inside the search loops; the only
        # in-loop cost is the `pruned` add on the (already cold) prune
        # branch, from which pruning_tests is derived for free: every
        # dequeued non-landmark other than r took exactly one test.
        reg = OBS.registry
        reg.counter("upgrade.calls").inc()
        reg.counter("upgrade.settled").inc(settled)
        reg.counter("upgrade.pruned").inc(pruned)
        reg.counter("upgrade.pruning_tests").inc(settled + pruned - 1)
        reg.counter("upgrade.label_writes").inc(entries_added)
        reg.counter("upgrade.entries_removed").inc(entries_removed)
        reg.histogram("upgrade.affected_set_size", SIZE_BOUNDS).observe(
            settled
        )
        reg.histogram("upgrade.reached_landmarks", SIZE_BOUNDS).observe(
            len(reached_lan)
        )

    return UpgradeStats(
        new_landmark=r,
        settled=settled,
        entries_added=entries_added,
        entries_removed=entries_removed,
        reached_landmarks=len(reached_lan),
        pruned=pruned,
    )
