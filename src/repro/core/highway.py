"""The highway ``H = (R, δ_H)`` of an HCL index.

The highway stores the landmark set and the *distance decoding function*
``δ_H : R × R → R+`` — exact pairwise landmark distances (paper §2).  It is
kept as a full symmetric matrix in dict-of-dict form: with the landmark-set
sizes the paper uses (tens to a few thousands) the matrix is tiny next to
the labeling, and O(1) access keeps ``QUERY`` fast.
"""

from __future__ import annotations

import math

from ..errors import LandmarkError

INF = math.inf

__all__ = ["Highway"]


class Highway:
    """Landmark set plus exact pairwise landmark distances.

    Distances are symmetric (undirected graphs) and ``δ_H(r, r) = 0``.
    Landmark pairs in different connected components hold ``inf``.

    When a :class:`~repro.core.transaction.IndexTransaction` is active the
    ``_journal`` attribute points at its undo journal and every mutator
    snapshots the distance matrix (first touch only) before changing it,
    so a failed mutation can be rolled back exactly.  Landmark insertion
    and removal touch every row anyway, so the snapshot is the same order
    of work as the mutation it protects.
    """

    __slots__ = ("_dist", "_journal", "_rev")

    def __init__(self):
        self._dist: dict[int, dict[int, float]] = {}
        self._journal = None
        # Revision counter: bumped by every mutator (and by transaction
        # rollback) so compiled read views (repro.core.plan.QueryPlan)
        # and cached exclusion masks can check validity in O(1).
        self._rev = 0

    # ------------------------------------------------------------------
    # Landmark set
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """A fresh set with the current landmarks."""
        return set(self._dist)

    @property
    def size(self) -> int:
        """Number of landmarks ``|R|``."""
        return len(self._dist)

    def __contains__(self, r: int) -> bool:
        return r in self._dist

    def __len__(self) -> int:
        return len(self._dist)

    def add_landmark(self, r: int) -> None:
        """Register ``r`` with unknown (infinite) distances to the others."""
        if r in self._dist:
            raise LandmarkError(f"vertex {r} is already a landmark")
        if self._journal is not None:
            self._journal.record_highway(self)
        row = {r: 0.0}
        for r2, other_row in self._dist.items():
            row[r2] = INF
            other_row[r] = INF
        self._dist[r] = row
        self._rev += 1

    def remove_landmark(self, r: int) -> None:
        """Drop ``r`` and every distance entry that mentions it."""
        if r not in self._dist:
            raise LandmarkError(f"vertex {r} is not a landmark")
        if self._journal is not None:
            self._journal.record_highway(self)
        del self._dist[r]
        for row in self._dist.values():
            row.pop(r, None)
        self._rev += 1

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def set_distance(self, r1: int, r2: int, d: float) -> None:
        """Record ``δ_H(r1, r2) = δ_H(r2, r1) = d``."""
        if r1 not in self._dist or r2 not in self._dist:
            raise LandmarkError(f"({r1}, {r2}) not a landmark pair")
        if self._journal is not None:
            self._journal.record_highway(self)
        self._dist[r1][r2] = d
        self._dist[r2][r1] = d
        self._rev += 1

    def distance(self, r1: int, r2: int) -> float:
        """``δ_H(r1, r2)``; raises for non-landmark arguments."""
        try:
            return self._dist[r1][r2]
        except KeyError:
            raise LandmarkError(f"({r1}, {r2}) not a landmark pair") from None

    def row(self, r: int) -> dict[int, float]:
        """The internal distance row of ``r`` (do not mutate)."""
        return self._dist[r]

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def copy(self) -> "Highway":
        """Deep copy."""
        h = Highway()
        h._dist = {r: dict(row) for r, row in self._dist.items()}
        return h

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Highway):
            return NotImplemented
        return self._dist == other._dist

    def __hash__(self) -> int:  # mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Highway(|R|={len(self._dist)})"
