"""Index quality metrics.

The paper argues HCL's practicality from index *compactness* (space) and
query-relevant structure (how many landmarks cover a vertex, how balanced
coverage is).  These helpers compute that structure for monitoring,
experiment reporting and the advisor's diagnostics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .index import HCLIndex

__all__ = [
    "coverage_histogram",
    "landmark_coverage_counts",
    "uncovered_vertices",
    "IndexQualityReport",
    "quality_report",
]


def coverage_histogram(index: HCLIndex) -> dict[int, int]:
    """``label size -> vertex count`` over non-landmark vertices."""
    landmarks = index.highway.landmarks
    sizes = Counter(
        len(index.labeling.label(v))
        for v in index.graph.vertices()
        if v not in landmarks
    )
    return dict(sizes)


def landmark_coverage_counts(index: HCLIndex) -> dict[int, int]:
    """``landmark -> number of non-landmark vertices it covers``."""
    landmarks = index.highway.landmarks
    counts: dict[int, int] = {r: 0 for r in landmarks}
    for v in index.graph.vertices():
        if v in landmarks:
            continue
        for r in index.labeling.label(v):
            counts[r] += 1
    return counts


def uncovered_vertices(index: HCLIndex) -> list[int]:
    """Non-landmark vertices with empty labels (no landmark in component)."""
    landmarks = index.highway.landmarks
    return [
        v
        for v in index.graph.vertices()
        if v not in landmarks and not index.labeling.label(v)
    ]


@dataclass(frozen=True)
class IndexQualityReport:
    """Aggregated quality snapshot of one index."""

    landmarks: int
    label_entries: int
    average_label_size: float
    max_label_size: int
    uncovered: int
    min_landmark_coverage: int
    max_landmark_coverage: int
    bytes_estimate: int

    @property
    def coverage_balance(self) -> float:
        """min/max coverage ratio in [0, 1]; 1 means perfectly balanced."""
        if self.max_landmark_coverage == 0:
            return 1.0
        return self.min_landmark_coverage / self.max_landmark_coverage


def quality_report(index: HCLIndex) -> IndexQualityReport:
    """Compute an :class:`IndexQualityReport` in one pass over the labels."""
    counts = landmark_coverage_counts(index)
    stats = index.stats()
    # 12 bytes per label entry (u32 landmark + f64 distance) + 8 per
    # highway cell: the binary serialization's footprint.
    bytes_estimate = 12 * stats.label_entries + 8 * stats.highway_cells
    return IndexQualityReport(
        landmarks=stats.landmarks,
        label_entries=stats.label_entries,
        average_label_size=stats.average_label_size,
        max_label_size=stats.max_label_size,
        uncovered=len(uncovered_vertices(index)),
        min_landmark_coverage=min(counts.values(), default=0),
        max_landmark_coverage=max(counts.values(), default=0),
        bytes_estimate=bytes_estimate,
    )
