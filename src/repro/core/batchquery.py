"""Batched query serving over a frozen HCL index.

The per-pair ``QUERY``/``distance`` routines of :class:`HCLIndex` are the
right shape for online single queries, but bulk traffic (the paper issues
``q = 10^7`` queries per scenario; BatchHL makes the same observation for
labeling indexes generally) leaves three kinds of shared work on the table:

* **Deduplication** — real workloads are skewed; the batch answers each
  distinct pair once and fans the value back out.  Reversed duplicates
  share the cached per-endpoint rows but keep their own orientation:
  ``QUERY``'s float association follows argument order when the endpoint
  labels tie in size, so collapsing ``(t, s)`` onto ``(s, t)`` could drift
  from the per-pair loop by one ulp on float-weighted graphs.
* **Per-endpoint landmark rows** — ``QUERY(s, t)`` is a double loop over
  ``L(s) × L(t)``.  For an endpoint ``v`` that recurs across the batch, the
  inner minimum ``g_v[r] = min_{(r_i, d_i) ∈ L(v)} d_i + δ_H(r_i, r)`` is
  computed once per landmark, turning every later pair with endpoint ``v``
  into a single scan of the *other* label.  This is the batch's shared
  upper-bound cache.
* **One snapshot, one mask** — exact queries refine the constrained bound
  with a bounded bidirectional search; the batch runs every search against
  one immutable :class:`~repro.graphs.csr.CSRGraph` snapshot and one
  prebuilt landmark-exclusion mask instead of rebuilding O(n) state per
  pair.

All three transformations are value-exact (not just approximately equal):
the float operations performed for any pair are associated exactly as in
the serial routines, so ``query_batch`` agrees bitwise with a per-pair
loop.  Large batches can additionally fan chunks of distinct pairs out over
a ``multiprocessing`` pool; small batches fall back to the serial path
because pool setup would dominate.
"""

from __future__ import annotations

import math
import multiprocessing
from typing import Iterable, Sequence

from ..budget import Budget
from ..errors import (
    DeadlineExceeded,
    PlanIntegrityError,
    RequestError,
    VertexError,
)
from ..graphs.csr import CSRGraph
from ..graphs.traversal import bounded_bidirectional_distance_masked
from .index import HCLIndex
from .plan import QueryPlan
from .planvec import default_backend

INF = math.inf

__all__ = ["query_batch"]

#: Build a landmark row for an endpoint once it recurs this often among the
#: batch's distinct pairs (the row costs ``|L(v)| · |R|`` operations and
#: saves roughly ``|L(s)| · |L(t)| - |L(t)|`` per reuse; measured on Zipf
#: workloads the break-even sits around 8 occurrences).
ROW_THRESHOLD = 8

#: Distinct-pair count below which the pool is never engaged.
MIN_PARALLEL = 512

#: Distinct-pair count from which ``plan="auto"`` compiles a
#: :class:`~repro.core.plan.QueryPlan` for the batch when the index does
#: not already hold a valid one (one compile amortizes over this many
#: answers comfortably; smaller batches only use a plan that exists).
PLAN_MIN_BATCH = 256


class _BatchSolver:
    """Shared-state evaluator for one batch over a frozen index snapshot.

    Operates on the index *components* (highway, labeling, CSR snapshot)
    rather than the index object so the same class runs unchanged inside
    pool workers, where the adjacency-list graph is never shipped.
    """

    def __init__(self, highway, labeling, csr, row_threshold=ROW_THRESHOLD):
        self._highway = highway
        self._labeling = labeling
        self._csr = csr
        self._row_threshold = row_threshold
        self._landmarks = sorted(highway.landmarks)
        self._rows: dict[int, dict[int, float]] = {}
        self._freq: dict[int, int] = {}
        self._mask: list[bool] | None = None

    # ------------------------------------------------------------------
    # Shared structures
    # ------------------------------------------------------------------
    def note_endpoints(self, keys: Iterable[tuple[int, int]]) -> None:
        """Record endpoint multiplicities to steer lazy row construction."""
        freq = self._freq
        for s, t in keys:
            freq[s] = freq.get(s, 0) + 1
            freq[t] = freq.get(t, 0) + 1

    def _row(self, v: int) -> dict[int, float]:
        """``g_v : r -> min_i d_i + δ_H(r_i, r)`` over ``L(v)``, memoized."""
        row = self._rows.get(v)
        if row is None:
            label = self._labeling.row_items(v)
            hrow = self._highway.row
            row = {}
            for r in self._landmarks:
                best = INF
                for ri, di in label:
                    d = di + hrow(ri).get(r, INF)
                    if d < best:
                        best = d
                row[r] = best
            self._rows[v] = row
        return row

    def _exclusion_mask(self) -> list[bool]:
        if self._mask is None:
            mask = [False] * self._csr.n
            for r in self._landmarks:
                mask[r] = True
            self._mask = mask
        return self._mask

    # ------------------------------------------------------------------
    # Per-pair evaluation (value-exact mirrors of HCLIndex)
    # ------------------------------------------------------------------
    def constrained(self, s: int, t: int) -> float:
        """``QUERY(s, t)`` — bitwise equal to :meth:`HCLIndex.query`.

        The serial routine scans the *smaller* label in its outer loop
        (ties keep the first argument), associating every candidate as
        ``(d_i + δ) + d_j`` with ``d_i`` drawn from that outer label.  The
        memoized row collapses the outer loop, so it is only valid for the
        endpoint the serial path would scan first; it is built and used
        exclusively for that endpoint (falling back to the double loop
        otherwise), keeping the association identical whichever endpoint
        is hot.  Within that constraint the row path is exact: float
        addition is monotone, so ``min_j (min_i (d_i + δ)) + d_j`` equals
        the double-loop minimum ``min_{i,j} (d_i + δ) + d_j`` bitwise.
        """
        ls = self._labeling.row_items(s)
        lt = self._labeling.row_items(t)
        if not ls or not lt:
            return INF
        if len(ls) > len(lt):
            outer_v, outer, inner = t, lt, ls
        else:
            outer_v, outer, inner = s, ls, lt
        if outer_v in self._rows or self._freq.get(outer_v, 0) >= self._row_threshold:
            g = self._row(outer_v)
            best = INF
            for rj, dj in inner:
                d = g.get(rj, INF) + dj
                if d < best:
                    best = d
            return best
        row = self._highway.row
        best = INF
        for ri, di in outer:
            hrow = row(ri)
            for rj, dj in inner:
                d = di + hrow.get(rj, INF) + dj
                if d < best:
                    best = d
        return best

    def _from_landmark(self, r: int, u: int) -> float:
        """Mirror of :meth:`HCLIndex.query_from_landmark`."""
        hrow = self._highway.row(r)
        best = INF
        for rj, dj in self._labeling.row_items(u):
            d = hrow.get(rj, INF) + dj
            if d < best:
                best = d
        return best

    def exact(
        self,
        s: int,
        t: int,
        budget: Budget | None = None,
        strict: bool = False,
    ) -> float:
        """Exact distance — value-equal to :meth:`HCLIndex.distance`.

        Same branch structure; the refinement search runs on the shared CSR
        snapshot with the shared exclusion mask.  Budget semantics mirror
        :meth:`HCLIndex.distance`: the constrained bound is always
        computed, and only the refinement degrades.
        """
        if s == t:
            return 0.0
        highway = self._highway
        s_is_lmk = s in highway
        t_is_lmk = t in highway
        if s_is_lmk and t_is_lmk:
            return highway.distance(s, t)
        if s_is_lmk:
            return self._from_landmark(s, t)
        if t_is_lmk:
            return self._from_landmark(t, s)
        ub = self.constrained(s, t)
        if budget is None:
            return bounded_bidirectional_distance_masked(
                self._csr, s, t, ub, self._exclusion_mask()
            )
        if budget.check():
            if strict:
                raise DeadlineExceeded(
                    f"batch distance({s}, {t}) exceeded its budget before "
                    f"refinement ({budget.reason})"
                )
            return budget.degrade(ub)
        best = bounded_bidirectional_distance_masked(
            self._csr, s, t, ub, self._exclusion_mask(), budget
        )
        if budget.exceeded:
            if strict:
                raise DeadlineExceeded(
                    f"batch distance({s}, {t}) exceeded its budget "
                    f"mid-refinement ({budget.reason})"
                )
            return budget.degrade(best)
        return best

    def solve(
        self,
        keys: Sequence[tuple[int, int]],
        exact: bool,
        budget: Budget | None = None,
        strict: bool = False,
    ) -> list[float]:
        """Answer the given distinct pairs in order."""
        self.note_endpoints(keys)
        if budget is None:
            evaluate = self.exact if exact else self.constrained
            return [evaluate(s, t) for s, t in keys]
        if exact:
            return [self.exact(s, t, budget, strict) for s, t in keys]
        # Constrained answers are the anytime floor themselves: each one is
        # still computed exactly, but the label work is charged so a shared
        # step budget spanning mixed traffic stays meaningful.
        out = []
        for s, t in keys:
            ls = self._labeling.row_items(s)
            lt = self._labeling.row_items(t)
            if ls and lt:
                budget.charge(min(len(ls), len(lt)))
            out.append(self.constrained(s, t))
        return out


class _PlanBatchSolver:
    """Plan-backed twin of :class:`_BatchSolver` (bitwise-equal answers).

    Serves every pair from a compiled
    :class:`~repro.core.plan.QueryPlan`: the constrained double loop runs
    over flat slot-interned rows with dense ``δ_H`` loads, the memoized
    per-endpoint rows live on the plan (seeded with the batch's endpoint
    multiplicities), and exact refinements run in the plan's reusable
    :class:`~repro.core.plan.SearchWorkspace` over its landmark-free
    compiled adjacency.  In-process the adjacency derives from the live
    graph; in pool workers from the shipped CSR snapshot — identical
    neighbor content and order either way, so identical answers.

    Budget semantics mirror :class:`_BatchSolver` exactly: exact pairs
    charge refinement steps only (not label work), constrained batches
    charge the outer-loop label scan per pair.

    ``backend="vector"`` routes the constrained bounds through the
    plan's :class:`~repro.core.planvec.VectorBackend` — one min-plus
    reduction over the whole batch instead of a per-pair double loop.
    The bounds are bitwise-equal to the flat kernel's, so the answers
    (and, for budgeted batches, the charge sequence) are unchanged; when
    numpy is absent the solver silently serves the flat path.
    """

    def __init__(self, plan: QueryPlan, graph=None, backend: str = "flat"):
        self._plan = plan
        if graph is not None:
            plan.attach_graph(graph)
        self._vec = plan.vector_backend() if backend == "vector" else None

    def constrained(self, s: int, t: int) -> float:
        return self._plan.query(s, t)

    def exact(
        self,
        s: int,
        t: int,
        budget: Budget | None = None,
        strict: bool = False,
        ub: float | None = None,
    ) -> float:
        plan = self._plan
        if budget is None:
            return plan.distance(s, t, ub=ub)
        if s == t:
            return 0.0
        mask = plan.mask
        s_is_lmk = mask[s]
        t_is_lmk = mask[t]
        if s_is_lmk and t_is_lmk:
            slot_of = plan.slot_of
            return plan._hwrows[slot_of[s]][slot_of[t]]
        if s_is_lmk:
            return plan.query_from_landmark(s, t)
        if t_is_lmk:
            return plan.query_from_landmark(t, s)
        # Like _BatchSolver.exact, the batch twin does not charge label
        # work against the budget — only refinement steps.
        if ub is None:
            ub = plan.query(s, t)
        if budget.check():
            if strict:
                raise DeadlineExceeded(
                    f"batch distance({s}, {t}) exceeded its budget before "
                    f"refinement ({budget.reason})"
                )
            return budget.degrade(ub)
        best = bounded_bidirectional_distance_masked(
            plan._graph, s, t, ub, mask, budget
        )
        if budget.exceeded:
            if strict:
                raise DeadlineExceeded(
                    f"batch distance({s}, {t}) exceeded its budget "
                    f"mid-refinement ({budget.reason})"
                )
            return budget.degrade(best)
        return best

    def solve(
        self,
        keys: Sequence[tuple[int, int]],
        exact: bool,
        budget: Budget | None = None,
        strict: bool = False,
    ) -> list[float]:
        """Answer the given distinct pairs in order."""
        plan = self._plan
        vec = self._vec
        if vec is not None:
            return self._solve_vectorized(keys, exact, budget, strict)
        plan.note_endpoints(keys)
        if budget is None:
            evaluate = self.exact if exact else self.constrained
            return [evaluate(s, t) for s, t in keys]
        if exact:
            return [self.exact(s, t, budget, strict) for s, t in keys]
        rows = plan._rows
        out = []
        for s, t in keys:
            rs = rows[s]
            rt = rows[t]
            if rs and rt:
                budget.charge(min(len(rs), len(rt)))
            out.append(plan.query(s, t))
        return out

    def _solve_vectorized(
        self,
        keys: Sequence[tuple[int, int]],
        exact: bool,
        budget: Budget | None,
        strict: bool,
    ) -> list[float]:
        """The vectorized twin of :meth:`solve` (bitwise-equal answers).

        Constrained bounds come from one batched min-plus reduction; the
        budget charge sequence replays the flat loop's exactly (same
        pairs, same order, same amounts), and exact pairs hand their
        precomputed bound to :meth:`exact` so refinement control flow —
        including ``DegradedResult`` semantics — is untouched.
        """
        plan = self._plan
        vec = self._vec
        bounds = vec.query_many(list(keys))
        if exact:
            if budget is None:
                return [
                    self.exact(s, t, ub=ub)
                    for (s, t), ub in zip(keys, bounds)
                ]
            return [
                self.exact(s, t, budget, strict, ub=ub)
                for (s, t), ub in zip(keys, bounds)
            ]
        if budget is None:
            return bounds
        rows = plan._rows
        for s, t in keys:
            rs = rows[s]
            rt = rows[t]
            if rs and rt:
                budget.charge(min(len(rs), len(rt)))
        return bounds


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------
_POOL_SOLVER: _BatchSolver | _PlanBatchSolver | None = None
_POOL_EXACT = False

#: Parent-side transport tally: how many pool dispatches shipped the plan
#: as a shared-memory ref versus pickled canonical arrays.  Tests assert
#: ``pickle == 0`` for plan-backed fan-out when shared memory works.
TRANSPORT_COUNTS = {"shm": 0, "pickle": 0}

#: Worker-side attachment memo keyed by ``(segment name, plan version)``.
#: Without it every pool dispatch re-attached and re-boxed the canonical
#: arrays even when the plan had not changed; with it a worker resolves a
#: repeat ref to the already-built plan in O(1).  Capacity one: a worker
#: serves one plan at a time, and dropping the old entry detaches its
#: mapping.  The parent pre-seeds its own copy before forking, so
#: fork-started children inherit the built plan and perform zero attach
#: work at all.
_ATTACH_CACHE: dict[tuple[str, int], tuple] = {}


def _seed_attach_cache(ref, plan: QueryPlan) -> None:
    """Parent-side: pre-populate the memo fork children will inherit."""
    _ATTACH_CACHE.clear()
    _ATTACH_CACHE[(ref.name, ref.plan_version)] = (None, plan)


def _attached_plan_solver(ref, csr, backend: str) -> "_PlanBatchSolver":
    """Resolve a :class:`~repro.core.shm.SharedPlanRef` to a solver.

    Memoized per worker process: a cache hit (same segment, same plan
    version) reuses the plan built on first attach; a miss attaches the
    segment and rebuilds, evicting the previous plan's entry.
    """
    key = (ref.name, ref.plan_version)
    entry = _ATTACH_CACHE.get(key)
    if entry is None:
        attachment = ref.attach()
        plan = QueryPlan(*attachment.arrays())
        _ATTACH_CACHE.clear()
        entry = _ATTACH_CACHE[key] = (attachment, plan)
    return _PlanBatchSolver(entry[1], csr, backend)


#: Worker-side: the exception the pool initializer swallowed, if any.  A
#: ``multiprocessing.Pool`` initializer that *raises* kills the worker,
#: which the pool silently respawns — and the respawn raises again,
#: looping forever without ever failing the batch.  The initializer
#: therefore stores attach failures here and the first chunk call raises
#: them, which propagates cleanly through ``pool.map`` to the parent.
_POOL_INIT_ERROR: Exception | None = None


def _init_query_pool(
    highway,
    labeling,
    csr,
    row_threshold,
    exact,
    plan=None,
    plan_ref=None,
    backend="flat",
) -> None:
    global _POOL_SOLVER, _POOL_EXACT, _POOL_INIT_ERROR
    _POOL_INIT_ERROR = None
    _POOL_SOLVER = None
    if plan_ref is not None:
        # Zero-copy transport: the plan's canonical arrays live in a
        # named shared-memory segment; only the tiny ref was pickled.
        # Attach-time CRC verification happens inside ``ref.attach()``;
        # a corrupt or vanished segment must not raise *here* (see
        # ``_POOL_INIT_ERROR``).
        try:
            _POOL_SOLVER = _attached_plan_solver(plan_ref, csr, backend)
        except (PlanIntegrityError, FileNotFoundError, OSError) as exc:
            _POOL_INIT_ERROR = exc
    elif plan is not None:
        # The plan arrives rebuilt from its canonical arrays; the CSR
        # snapshot (when present) backs its refinement adjacency.
        _POOL_SOLVER = _PlanBatchSolver(plan, csr, backend)
    else:
        _POOL_SOLVER = _BatchSolver(highway, labeling, csr, row_threshold)
    _POOL_EXACT = exact


def _pool_solve_chunk(keys: list[tuple[int, int]]) -> list[float]:
    if _POOL_SOLVER is None:
        raise _POOL_INIT_ERROR or RuntimeError("pool initializer did not run")
    return _POOL_SOLVER.solve(keys, _POOL_EXACT)


def _pool_context():
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def query_batch(
    index: HCLIndex,
    pairs: Iterable[tuple[int, int]],
    workers: int | None = None,
    exact: bool = False,
    min_parallel: int = MIN_PARALLEL,
    row_threshold: int = ROW_THRESHOLD,
    budget: Budget | None = None,
    strict: bool = False,
    plan: QueryPlan | str = "auto",
    backend: str = "auto",
) -> list[float]:
    """Answer many ``(s, t)`` queries against a frozen index at once.

    Parameters
    ----------
    index:
        The index to serve from.  It must not be mutated during the call.
    pairs:
        The query pairs; duplicate pairs are answered once.  Reversed
        duplicates share the batch's per-endpoint row cache but are
        evaluated per orientation — ``QUERY``'s float association follows
        argument order when the endpoint labels tie in size, so a merged
        answer could differ from the per-pair loop by one ulp.
    workers:
        Pool size for fanning distinct pairs out over processes.  ``None``
        or ``<= 1`` keeps everything in-process; the pool is also skipped
        below ``min_parallel`` distinct pairs, where setup would dominate.
    exact:
        ``False`` (default) answers the paper's landmark-constrained
        ``QUERY``; ``True`` answers exact distances (constrained bound +
        bounded bidirectional refinement).
    budget:
        Optional :class:`~repro.budget.Budget` shared by the whole batch.
        Once it expires, every remaining exact pair skips (or aborts) its
        refinement search and returns its constrained bound as a flagged
        :class:`~repro.budget.DegradedResult` — the batch always returns
        one sound answer per pair instead of stalling.  Budgeted batches
        stay in-process (a live budget cannot span pool workers), so
        ``workers`` is ignored when ``budget`` is given.
    strict:
        With ``budget``: raise :class:`~repro.errors.DeadlineExceeded` at
        the first degradation instead of returning flagged bounds.
    plan:
        Compiled serving plan policy.  ``"auto"`` (default) serves from
        the index's valid :class:`~repro.core.plan.QueryPlan` when one
        exists, compiling one for batches of at least
        :data:`PLAN_MIN_BATCH` distinct pairs (``plan_mode="off"`` on the
        index disables this); ``"off"`` forces the dict path;
        ``"epoch"`` pins the head epoch of the index's MVCC
        :class:`~repro.core.epoch.PlanRegistry` for the whole batch — the
        answers form one consistent snapshot even if mutations commit
        mid-batch, and the pin is released when the batch returns
        (``"auto"`` routes here on its own when ``plan_mode="epoch"``);
        passing a :class:`~repro.core.plan.QueryPlan` serves from exactly
        that plan (the caller vouches it reflects ``index``).  Every mode
        returns bitwise-identical answers.
    backend:
        Constrained-kernel implementation for plan-backed batches.
        ``"auto"`` (default) picks ``"vector"`` — the numpy min-plus
        backend of :mod:`repro.core.planvec` — whenever numpy is
        importable and ``"flat"`` (the interpreted kernel) otherwise;
        either may be forced by name, and ``REPRO_PLAN_BACKEND``
        overrides ``"auto"`` process-wide.  The choice never changes an
        answer (bitwise-equal kernels); dict-path batches ignore it.

    Returns
    -------
    list[float]
        One value per input pair, in input order, bitwise equal to calling
        ``index.query`` / ``index.distance`` per pair.  Unreachable pairs
        yield ``inf`` exactly as in the serial routines.
    """
    if backend == "auto":
        backend = default_backend()
    elif backend not in ("vector", "flat"):
        raise RequestError(
            f"backend must be 'auto', 'vector' or 'flat', got {backend!r}"
        )
    pair_list = list(pairs)
    if not pair_list:
        return []
    n = index.graph.n
    for s, t in pair_list:
        if not 0 <= s < n or not 0 <= t < n:
            raise VertexError(f"query pair ({s}, {t}) out of range [0, {n})")

    # Shared upper-bound cache, part one: collapse to distinct *ordered*
    # pairs so every answer is computed exactly once.  Orientation is kept
    # (not normalized to ``s <= t``) so each answer reproduces the serial
    # routine's float association for its own argument order; reversed
    # duplicates still share the memoized per-endpoint rows.
    keys = [(s, t) for s, t in pair_list]
    order: dict[tuple[int, int], int] = {}
    for key in keys:
        if key not in order:
            order[key] = len(order)
    distinct = list(order)

    epoch = None
    if isinstance(plan, QueryPlan):
        plan_obj: QueryPlan | None = plan
    elif plan == "epoch" or (plan == "auto" and index.plan_mode == "epoch"):
        # Pin the head epoch for the whole batch; released in the finally
        # below, at which point a superseded epoch can retire.
        epoch = index.epoch_registry().acquire()
        plan_obj = epoch.plan
    elif plan == "auto":
        mode = index.plan_mode
        plan_obj = index.plan() if mode != "off" else None
        if plan_obj is None and mode != "off" and (
            mode == "eager" or len(distinct) >= PLAN_MIN_BATCH
        ):
            plan_obj = index.compile_plan()
    elif plan == "off":
        plan_obj = None
    else:
        raise RequestError(
            f"plan must be 'auto', 'off', 'epoch' or a QueryPlan, got {plan!r}"
        )

    try:
        use_pool = (
            budget is None
            and workers is not None
            and workers > 1
            and len(distinct) >= min_parallel
        )
        # The CSR snapshot only backs the exact-distance refinement
        # searches; constrained batches never touch the graph, and an
        # in-process plan refines on its own compiled adjacency, so the
        # O(n + m) walk (and its per-worker pickle) is skipped whenever
        # nothing needs it.
        need_csr = exact and (use_pool or plan_obj is None)
        csr = CSRGraph(index.graph) if need_csr else None
        if not use_pool:
            if plan_obj is not None:
                solver: _BatchSolver | _PlanBatchSolver = _PlanBatchSolver(
                    plan_obj, index.graph, backend
                )
            else:
                solver = _BatchSolver(
                    index.highway, index.labeling, csr, row_threshold
                )
            values = solver.solve(distinct, exact, budget, strict)
        else:
            pool_size = min(workers, len(distinct))
            chunksize = max(1, len(distinct) // (pool_size * 4))
            chunks = [
                distinct[i : i + chunksize]
                for i in range(0, len(distinct), chunksize)
            ]
            if plan_obj is not None:
                # The plan replaces the dict structures wholesale.
                # Preferred transport: its canonical arrays in a named
                # shared-memory segment, with only the tiny ref pickled
                # (fork children skip even the attach — the parent seeds
                # the memo they inherit).  Pickling the arrays remains
                # the fallback when shared memory is unavailable.
                shared = plan_obj.shared_buffers()
                if shared is not None:
                    TRANSPORT_COUNTS["shm"] += 1
                    _seed_attach_cache(shared.ref, plan_obj)
                    initargs = (
                        None, None, csr, row_threshold, exact,
                        None, shared.ref, backend,
                    )
                else:
                    TRANSPORT_COUNTS["pickle"] += 1
                    initargs = (
                        None, None, csr, row_threshold, exact,
                        plan_obj, None, backend,
                    )
            else:
                initargs = (
                    index.highway,
                    index.labeling,
                    csr,
                    row_threshold,
                    exact,
                    None,
                    None,
                    backend,
                )
            ctx = _pool_context()
            try:
                with ctx.Pool(
                    pool_size,
                    initializer=_init_query_pool,
                    initargs=initargs,
                ) as pool:
                    values = [
                        v for chunk in pool.map(_pool_solve_chunk, chunks)
                        for v in chunk
                    ]
            except PlanIntegrityError as exc:
                # A worker's attach-time CRC check caught segment
                # corruption.  Quarantine the name parent-side (the
                # owner republishes on its next shared_buffers call)
                # and complete the batch over the pickle transport —
                # the canonical arrays live in heap memory, unaffected.
                if plan_obj is None:
                    raise
                from .shm import quarantine as _quarantine_segment

                if exc.segment:
                    _quarantine_segment(exc.segment)
                TRANSPORT_COUNTS["pickle"] += 1
                initargs = (
                    None, None, csr, row_threshold, exact,
                    plan_obj, None, backend,
                )
                with ctx.Pool(
                    pool_size,
                    initializer=_init_query_pool,
                    initargs=initargs,
                ) as pool:
                    values = [
                        v for chunk in pool.map(_pool_solve_chunk, chunks)
                        for v in chunk
                    ]

        return [values[order[key]] for key in keys]
    finally:
        if epoch is not None:
            epoch.release()
