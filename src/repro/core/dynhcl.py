"""DYN-HCL — the dynamic framework tying the two update algorithms together.

:class:`DynamicHCL` owns an :class:`~repro.core.index.HCLIndex` and exposes
landmark insertion/removal (delegating to ``UPGRADE-LMK`` /
``DOWNGRADE-LMK``), replacement, update-sequence application with per-update
timing, and queries.  It is the object the paper's experiments drive: the
``apply_sequence`` bookkeeping produces exactly the ``T_FDYN`` /
``CMT_FDYN`` measurements of Tables 2 and 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import LandmarkError, TransactionError
from ..graphs.graph import Graph
from .batch import BatchResult
from .batch import apply_batch as _apply_batch
from .build import build_hcl
from .downgrade import DowngradeStats, downgrade_landmark
from .index import HCLIndex
from .transaction import IndexTransaction
from .upgrade import UpgradeStats, upgrade_landmark

__all__ = ["DynamicHCL", "LandmarkUpdate", "UpdateRecord"]


@dataclass(frozen=True)
class LandmarkUpdate:
    """One reconfiguration step.

    ``kind`` is ``"add"``, ``"remove"`` or ``"batch"``; for single
    operations ``vertex`` is the landmark, for a batch it is the netted
    operation count (the batch's own lists live in its
    :class:`~repro.core.batch.BatchResult` record).
    """

    kind: str
    vertex: int

    def __post_init__(self):
        if self.kind not in ("add", "remove", "batch"):
            raise LandmarkError(f"unknown update kind {self.kind!r}")


@dataclass(frozen=True)
class UpdateRecord:
    """Timing + work counters for one applied update."""

    update: LandmarkUpdate
    seconds: float
    stats: UpgradeStats | DowngradeStats | BatchResult


@dataclass
class UpdateLog:
    """Accumulated per-update records of a :class:`DynamicHCL` session."""

    records: list[UpdateRecord] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def total_seconds(self) -> float:
        return sum(rec.seconds for rec in self.records)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def max_seconds(self) -> float:
        """Worst single update (tail latency matters for online serving)."""
        return max((rec.seconds for rec in self.records), default=0.0)

    def percentile_seconds(self, q: float) -> float:
        """The ``q``-quantile (0..1) of per-update times, nearest-rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.records:
            return 0.0
        ordered = sorted(rec.seconds for rec in self.records)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    # Aggregate work counters: the paper's cost model measures updates by
    # affected-set size and pruning-test count, which are machine
    # independent where the ``seconds`` fields are not.  ``settled`` only
    # exists on UpgradeStats and ``swept`` only on DowngradeStats (a
    # BatchResult carries both), hence the getattr defaults.

    @property
    def settled(self) -> int:
        """Total ``UPGRADE-LMK`` affected-set size (vertices settled)."""
        return sum(getattr(rec.stats, "settled", 0) for rec in self.records)

    @property
    def swept(self) -> int:
        """Total ``DOWNGRADE-LMK`` sweep size (vertices swept)."""
        return sum(getattr(rec.stats, "swept", 0) for rec in self.records)

    @property
    def pruned(self) -> int:
        """Total pruning-test rejections across all updates."""
        return sum(getattr(rec.stats, "pruned", 0) for rec in self.records)

    @property
    def mean_work(self) -> float:
        """Mean vertices processed per update (settled + swept + pruned)."""
        if not self.records:
            return 0.0
        return (self.settled + self.swept + self.pruned) / self.count


class DynamicHCL:
    """An HCL index kept current under landmark reconfigurations.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(5)
    >>> for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
    ...     g.add_edge(u, v, 1.0)
    >>> dyn = DynamicHCL.build(g, [2])
    >>> _ = dyn.add_landmark(4)
    >>> sorted(dyn.landmarks)
    [2, 4]
    >>> _ = dyn.remove_landmark(2)
    >>> sorted(dyn.landmarks)
    [4]
    """

    def __init__(self, index: HCLIndex):
        self.index = index
        self.log = UpdateLog()
        # Monotonic state-change counter: bumped on every committed
        # mutation *and* on every rollback to an earlier state, so cache
        # layers can invalidate on any possible answer change (the log
        # length alone moves backwards under batch rollback).
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter of state changes (mutations and rollbacks)."""
        return self._version

    def bump_version(self) -> None:
        """Invalidate caches after an out-of-band index mutation.

        The landmark operations bump the counter themselves; this is for
        components that rewrite index rows directly — the
        :class:`~repro.core.auditor.IndexAuditor`'s repairs — so cached
        answers computed against the corrupt state are discarded.
        """
        self._version += 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, landmarks: Sequence[int]) -> "DynamicHCL":
        """Build the initial index with ``BUILDHCL`` and wrap it."""
        return cls(build_hcl(graph, landmarks))

    def enable_plan_epochs(self, recompile: str = "sync"):
        """Serve queries from MVCC plan epochs; returns the registry.

        Switches the index to ``plan_mode="epoch"``: queries read the
        head :class:`~repro.core.epoch.PlanEpoch` with no per-query
        revalidation, and every transactional :meth:`add_landmark` /
        :meth:`remove_landmark` commit recompiles (incrementally where
        possible) and swaps the next epoch in.  ``recompile`` picks the
        registry's recompilation mode (``"sync"``, ``"thread"`` or
        ``"deferred"``); see :class:`repro.core.epoch.PlanRegistry`.
        """
        registry = self.index.epoch_registry(recompile=recompile)
        self.index.plan_mode = "epoch"
        return registry

    # ------------------------------------------------------------------
    # Landmark reconfiguration
    # ------------------------------------------------------------------
    @property
    def landmarks(self) -> set[int]:
        """Current landmark set."""
        return self.index.landmarks

    def add_landmark(
        self, v: int, transactional: bool = True, budget=None
    ) -> UpgradeStats:
        """Promote ``v`` via ``UPGRADE-LMK``; records timing in the log.

        With ``transactional`` (the default) the update runs inside an
        :class:`~repro.core.transaction.IndexTransaction`: any exception
        rolls the index back to its pre-call state before propagating
        (non-library exceptions arrive wrapped in
        :class:`~repro.errors.TransactionError`).  A ``budget``
        (:class:`~repro.budget.Budget`) cancels the update mid-flight with
        :class:`~repro.errors.DeadlineExceeded`; combined with the default
        transaction the index is left exactly as before the call.
        """
        start = time.perf_counter()
        if transactional:
            with IndexTransaction(self.index):
                stats = upgrade_landmark(self.index, v, budget=budget)
        else:
            stats = upgrade_landmark(self.index, v, budget=budget)
        elapsed = time.perf_counter() - start
        self.log.records.append(
            UpdateRecord(LandmarkUpdate("add", v), elapsed, stats)
        )
        self._version += 1
        return stats

    def remove_landmark(
        self, v: int, transactional: bool = True, budget=None
    ) -> DowngradeStats:
        """Demote ``v`` via ``DOWNGRADE-LMK``; records timing in the log.

        Transactional and ``budget`` semantics as in :meth:`add_landmark`.
        """
        start = time.perf_counter()
        if transactional:
            with IndexTransaction(self.index):
                stats = downgrade_landmark(self.index, v, budget=budget)
        else:
            stats = downgrade_landmark(self.index, v, budget=budget)
        elapsed = time.perf_counter() - start
        self.log.records.append(
            UpdateRecord(LandmarkUpdate("remove", v), elapsed, stats)
        )
        self._version += 1
        return stats

    def apply_batch(
        self,
        adds: Iterable[int] = (),
        removes: Iterable[int] = (),
        edge_updates: Iterable = (),
        rebuild_factor: float = 0.75,
        budget=None,
        transactional: bool = True,
    ) -> BatchResult:
        """Apply landmark and edge-weight changes as one merged batch.

        Delegates to :func:`repro.core.batch.apply_batch`: one merged
        repair sweep over the union of the per-operation affected sets,
        one :class:`~repro.core.transaction.IndexTransaction` (whole-batch
        rollback), one epoch-registry commit.  The batch lands in the
        update log as a single ``"batch"`` record whose
        :class:`~repro.core.batch.BatchResult` carries the merged
        ``settled``/``swept``/``pruned`` counters, so
        :class:`UpdateLog` aggregation compares batched and sequential
        cost models directly.  Transactional and ``budget`` semantics as
        in :meth:`add_landmark`, now covering edge weights too.
        """
        start = time.perf_counter()
        result = _apply_batch(
            self.index,
            adds=adds,
            removes=removes,
            edge_updates=edge_updates,
            rebuild_factor=rebuild_factor,
            budget=budget,
            transactional=transactional,
        )
        elapsed = time.perf_counter() - start
        self.log.records.append(
            UpdateRecord(LandmarkUpdate("batch", result.ops), elapsed, result)
        )
        self._version += 1
        return result

    def truncate_log(self, count: int) -> None:
        """Drop update records past ``count`` (after a batch rollback).

        Bumps the version counter so cache layers discard answers computed
        against the now-rolled-back states.
        """
        if not 0 <= count <= self.log.count:
            raise TransactionError(
                f"cannot truncate log of {self.log.count} records to {count}"
            )
        del self.log.records[count:]
        self._version += 1

    def replace_landmark(self, old: int, new: int) -> None:
        """Swap one landmark for another (downgrade + upgrade)."""
        self.remove_landmark(old)
        self.add_landmark(new)

    def apply(self, update: LandmarkUpdate) -> UpdateRecord:
        """Apply a single :class:`LandmarkUpdate` and return its record."""
        if update.kind == "add":
            self.add_landmark(update.vertex)
        else:
            self.remove_landmark(update.vertex)
        return self.log.records[-1]

    def apply_sequence(self, updates: Iterable[LandmarkUpdate]) -> UpdateLog:
        """Apply updates in order; returns the log restricted to them."""
        before = self.log.count
        for update in updates:
            self.apply(update)
        return UpdateLog(self.log.records[before:])

    # ------------------------------------------------------------------
    # Queries (delegation)
    # ------------------------------------------------------------------
    def query(self, s: int, t: int, budget=None) -> float:
        """Landmark-constrained distance (``QUERY``)."""
        return self.index.query(s, t, budget)

    def distance(self, s: int, t: int, budget=None, strict: bool = False) -> float:
        """Exact distance (optionally budgeted; see :meth:`HCLIndex.distance`)."""
        return self.index.distance(s, t, budget=budget, strict=strict)

    def rebuild(self) -> HCLIndex:
        """Fresh ``BUILDHCL`` over the current landmark set (baseline)."""
        return build_hcl(self.index.graph, sorted(self.landmarks))
