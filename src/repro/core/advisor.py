"""Workload-driven landmark advice (beyond the paper: a library feature).

The paper motivates landmark reconfiguration with *evolving query
patterns* (§1) but leaves the policy of **which** vertex to promote or
demote to the operator.  This module closes that loop: given a sample of
recent queries, it scores reconfiguration candidates so that
``UPGRADE-LMK`` / ``DOWNGRADE-LMK`` can be pointed at the most valuable
vertices.

* :func:`suggest_addition` ranks non-landmarks by how often they lie on
  shortest paths of the sampled queries (computed from a handful of
  shortest-path trees) — promoting such a vertex tightens the
  landmark-constrained upper bound exactly where queries concentrate.
* :func:`suggest_removal` ranks current landmarks by how rarely they are
  the argmin of the sampled ``QUERY`` evaluations — demoting an unused
  landmark shrinks labels with minimal loss.

Both are heuristics; they never affect correctness (any landmark set is
valid), only index economy.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..errors import LandmarkError
from ..graphs.traversal import single_source_with_parents
from .index import HCLIndex

__all__ = ["suggest_addition", "suggest_removal", "score_landmark_usage"]


def suggest_addition(
    index: HCLIndex,
    queries: Sequence[tuple[int, int]],
    top: int = 5,
    max_trees: int = 24,
) -> list[tuple[int, int]]:
    """Rank non-landmark vertices by on-shortest-path frequency.

    Grows one shortest-path tree per distinct query source (capped at
    ``max_trees``) and counts, for every vertex, how many sampled targets
    route through it.  Returns up to ``top`` ``(vertex, score)`` pairs in
    decreasing score order.
    """
    if not queries:
        raise LandmarkError("cannot advise on an empty query sample")
    graph = index.graph
    landmarks = index.highway.landmarks
    score: Counter[int] = Counter()

    by_source: dict[int, list[int]] = {}
    for s, t in queries:
        by_source.setdefault(s, []).append(t)
    sources = list(by_source)[:max_trees]

    for s in sources:
        _, parent = single_source_with_parents(graph, s)
        for t in by_source[s]:
            v = t
            while v != -1 and v != s:
                if v not in landmarks:
                    score[v] += 1
                v = parent[v]
    ranked = [
        (v, c) for v, c in score.most_common() if not index.is_landmark(v)
    ]
    return ranked[:top]


def score_landmark_usage(
    index: HCLIndex, queries: Sequence[tuple[int, int]]
) -> dict[int, int]:
    """How often each landmark participates in a ``QUERY`` optimum.

    Replays the sampled queries through the index and credits the
    landmark pair achieving the minimum (both members).  Landmarks that
    never appear get an explicit zero.
    """
    usage: dict[int, int] = {r: 0 for r in index.highway.landmarks}
    labeling = index.labeling
    row = index.highway.row
    for s, t in queries:
        ls = labeling.label(s)
        lt = labeling.label(t)
        best = float("inf")
        best_pair = None
        for ri, di in ls.items():
            hrow = row(ri)
            for rj, dj in lt.items():
                d = di + hrow.get(rj, float("inf")) + dj
                if d < best:
                    best = d
                    best_pair = (ri, rj)
        if best_pair is not None:
            usage[best_pair[0]] += 1
            if best_pair[1] != best_pair[0]:
                usage[best_pair[1]] += 1
    return usage


def suggest_removal(
    index: HCLIndex, queries: Sequence[tuple[int, int]], top: int = 5
) -> list[tuple[int, int]]:
    """Rank landmarks by (low) usage: the cheapest candidates to demote.

    Returns up to ``top`` ``(landmark, usage)`` pairs, least-used first.
    """
    if not index.highway.size:
        raise LandmarkError("the index has no landmarks to remove")
    usage = score_landmark_usage(index, queries)
    ranked = sorted(usage.items(), key=lambda item: (item[1], item[0]))
    return ranked[:top]
