"""Validation of the HCL invariants the paper's theorems establish.

Three layers of checking, from cheapest to strongest:

* :func:`check_highway_exact` — ``δ_H`` equals true pairwise landmark
  distances (property (i) of Theorems 3.1/3.5).
* :func:`check_cover_property` — for (sampled or all) vertex pairs and every
  landmark ``r``, the ``r``-constrained distance is recoverable from
  ``δ_H`` + labels (property (ii)); compares against brute-force
  ``d(s, r) + d(r, t)``.
* :func:`assert_canonical` — *structural equality* with a from-scratch
  ``BUILDHCL``.  Because the canonical index is the unique minimal
  order-invariant labeling (Lemmas 3.2/3.3/3.6/3.7), this single check
  subsumes cover, minimality and order-invariance; it is the workhorse of
  the dynamic-algorithm test suite.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import CoverPropertyError
from ..graphs.graph import Graph
from ..graphs.traversal import single_source_distances
from .build import build_hcl
from .index import HCLIndex

INF = math.inf

__all__ = [
    "check_highway_exact",
    "check_cover_property",
    "check_minimality",
    "assert_canonical",
    "canonical_index",
    "brute_force_landmark_constrained",
    "CoverViolation",
    "HighwayViolation",
    "sample_vertex_pairs",
    "find_cover_violations",
    "find_highway_violations",
]


@dataclass(frozen=True)
class CoverViolation:
    """One failed cover-property decode: pair, landmark, both values."""

    s: int
    t: int
    landmark: int
    got: float
    expected: float

    def __str__(self) -> str:
        return (
            f"{self.landmark}-constrained distance for ({self.s}, {self.t}): "
            f"index gives {self.got}, brute force gives {self.expected}"
        )


@dataclass(frozen=True)
class HighwayViolation:
    """One highway cell that disagrees with the true landmark distance."""

    r1: int
    r2: int
    stored: float
    expected: float

    def __str__(self) -> str:
        return (
            f"δ_H({self.r1}, {self.r2}) = {self.stored} "
            f"but d({self.r1}, {self.r2}) = {self.expected}"
        )


def sample_vertex_pairs(
    index: HCLIndex,
    sample: int = 50,
    seed: int = 0,
    rng: random.Random | None = None,
) -> list[tuple[int, int]]:
    """Sample non-landmark vertex pairs for a cover-property probe.

    The single sampling path shared by :func:`check_cover_property`, the
    service's crash-recovery probe and the background
    :class:`~repro.core.auditor.IndexAuditor` — all three grade the index
    on pairs drawn the same way, so their verdicts are comparable.  Pass
    ``rng`` to continue an existing stream (the auditor does, so each
    tick draws fresh pairs deterministically); ``seed`` otherwise.
    """
    non_landmarks = [v for v in index.graph.vertices() if not index.is_landmark(v)]
    if len(non_landmarks) < 2:
        return []
    if rng is None:
        rng = random.Random(seed)
    all_pairs = list(itertools.combinations(non_landmarks, 2))
    if len(all_pairs) > sample:
        return rng.sample(all_pairs, sample)
    return all_pairs


def canonical_index(graph: Graph, landmarks: Iterable[int]) -> HCLIndex:
    """The unique minimal order-invariant index for ``(graph, landmarks)``."""
    return build_hcl(graph, sorted(landmarks))


def check_highway_exact(index: HCLIndex) -> None:
    """Raise :class:`CoverPropertyError` unless ``δ_H`` is exact."""
    violations = find_highway_violations(index, max_violations=1)
    if violations:
        raise CoverPropertyError(str(violations[0]))


def find_highway_violations(
    index: HCLIndex,
    landmarks: Iterable[int] | None = None,
    max_violations: int | None = None,
) -> list[HighwayViolation]:
    """Compare ``δ_H`` rows against ground-truth single-source distances.

    ``landmarks`` restricts which rows are recomputed (the auditor checks
    a few per tick); each restricted row is still compared against *all*
    landmarks.  Returns the disagreements instead of raising, capped at
    ``max_violations`` when given.
    """
    graph = index.graph
    lmks = sorted(index.landmarks)
    rows = lmks if landmarks is None else sorted(set(landmarks))
    violations: list[HighwayViolation] = []
    for r in rows:
        dist = single_source_distances(graph, r)
        for r2 in lmks:
            stored = index.highway.distance(r, r2)
            if stored != dist[r2]:
                violations.append(HighwayViolation(r, r2, stored, dist[r2]))
                if max_violations is not None and len(violations) >= max_violations:
                    return violations
    return violations


def brute_force_landmark_constrained(
    graph: Graph, landmarks: Iterable[int], s: int, t: int
) -> float:
    """``min_r d(s, r) + d(r, t)`` by plain single-source searches."""
    best = INF
    for r in landmarks:
        dist = single_source_distances(graph, r)
        d = dist[s] + dist[t]
        if d < best:
            best = d
    return best


def check_cover_property(
    index: HCLIndex,
    pairs: Sequence[tuple[int, int]] | None = None,
    sample: int = 50,
    seed: int = 0,
) -> None:
    """Verify property (ii): per-landmark constrained distances from labels.

    For each checked pair ``(s, t)`` and each landmark ``r``, the distance
    decoded from the index — ``min_i (d_i + δ_H(r_i, r))`` over ``L(s)``
    plus ``min_j (δ_H(r, r_j) + d_j)`` over ``L(t)`` — must equal the
    brute-force ``d(s, r) + d(r, t)``.  (The paper's §2 formula with
    ``r_i = r`` or ``r_j = r`` is the special case where ``r`` itself
    covers an endpoint.)
    """
    violations = find_cover_violations(
        index, pairs=pairs, sample=sample, seed=seed, max_violations=1
    )
    if violations:
        raise CoverPropertyError(str(violations[0]))


def find_cover_violations(
    index: HCLIndex,
    pairs: Sequence[tuple[int, int]] | None = None,
    sample: int = 50,
    seed: int = 0,
    landmarks: Iterable[int] | None = None,
    max_violations: int | None = None,
) -> list[CoverViolation]:
    """The checks of :func:`check_cover_property`, returned instead of raised.

    Runs the same per-pair, per-landmark decode against ground-truth
    single-source distances, but collects every disagreement (up to
    ``max_violations``) as structured :class:`CoverViolation` records —
    the form the background auditor and the recovery probe consume.
    ``landmarks`` restricts which constrained distances are graded (and
    therefore which ground-truth searches run), bounding a tick's cost.
    """
    graph = index.graph
    lmks = sorted(index.landmarks)
    if landmarks is not None:
        lmks = sorted(set(landmarks) & set(lmks))
    if not lmks:
        return []
    dist_from = {r: single_source_distances(graph, r) for r in lmks}

    if pairs is None:
        pairs = sample_vertex_pairs(index, sample=sample, seed=seed)

    violations: list[CoverViolation] = []
    labeling = index.labeling
    highway = index.highway
    for s, t in pairs:
        ls = labeling.label(s)
        lt = labeling.label(t)
        for r in lmks:
            expected = dist_from[r][s] + dist_from[r][t]
            # Decode d(s, r) from L(s) (first landmark on a shortest s-r
            # path covers s) and d(r, t) from L(t), composing through δ_H;
            # the r_i = r / r_j = r cases of the paper's formula fall out
            # as δ_H(r, r) = 0.
            to_r = min(
                (di + highway.distance(ri, r) for ri, di in ls.items()),
                default=INF,
            )
            from_r = min(
                (highway.distance(r, rj) + dj for rj, dj in lt.items()),
                default=INF,
            )
            got = to_r + from_r
            if got != expected:
                violations.append(CoverViolation(s, t, r, got, expected))
                if max_violations is not None and len(violations) >= max_violations:
                    return violations
    return violations


def check_minimality(index: HCLIndex) -> None:
    """Verify no label entry can be dropped without breaking coverage.

    Uses the canonical characterization: entry ``(r, d) ∈ L(v)`` is needed
    iff some shortest ``r → v`` path avoids the other landmarks internally —
    i.e. the index must equal the canonical rebuild entry-for-entry.
    """
    assert_canonical(index)


def assert_canonical(index: HCLIndex) -> None:
    """Raise unless ``index`` equals the from-scratch canonical index.

    This is the strongest invariant check: it certifies the highway cover
    property, exactness of ``δ_H``, minimality *and* order-invariance in one
    comparison (the canonical index is the unique structure with all four).
    """
    fresh = canonical_index(index.graph, index.landmarks)
    if index.highway != fresh.highway:
        mine = {
            (a, b): index.highway.distance(a, b)
            for a in index.landmarks
            for b in index.landmarks
        }
        theirs = {
            (a, b): fresh.highway.distance(a, b)
            for a in fresh.landmarks
            for b in fresh.landmarks
        }
        diff = {k: (mine.get(k), theirs.get(k)) for k in set(mine) | set(theirs)
                if mine.get(k) != theirs.get(k)}
        raise CoverPropertyError(f"highway differs from canonical: {diff}")
    if index.labeling != fresh.labeling:
        diffs = []
        for v in index.graph.vertices():
            a = index.labeling.label(v)
            b = fresh.labeling.label(v)
            if a != b:
                diffs.append((v, dict(a), dict(b)))
            if len(diffs) >= 5:
                break
        raise CoverPropertyError(
            f"labeling differs from canonical at (vertex, got, want): {diffs}"
        )
