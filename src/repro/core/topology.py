"""Fully dynamic setting: topology updates alongside landmark updates.

Paper future-work item (iii): combine DYN-HCL with maintenance under graph
changes (in the spirit of Farhan & Wang 2023).  This module provides a
correct, localized topology-maintenance layer:

* An edge change can only affect landmark ``r``'s highway row and label
  entries if the edge lies on (insertion: creates) a shortest path from
  ``r``.  Because ``QUERY(r, x)`` is *exact* for a landmark ``r``, the
  affected test costs two O(|L|) lookups per landmark — no graph search.
* Only the affected landmarks re-run their (single-sweep) labelling pass;
  unaffected landmarks keep rows and entries untouched.

The result is again the canonical index, so the same structural-equality
testing applies.  :class:`FullyDynamicHCL` packages topology and landmark
dynamics behind one facade.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.traversal import flagged_single_source
from .dynhcl import DynamicHCL
from .index import HCLIndex

__all__ = ["TopologyStats", "insert_edge", "delete_edge", "set_edge_weight", "FullyDynamicHCL"]


@dataclass(frozen=True)
class TopologyStats:
    """Work counters for one topology update."""

    affected_landmarks: int
    total_landmarks: int


def _relabel_landmark(index: HCLIndex, r: int) -> None:
    """Recompute landmark ``r``'s highway row and label entries in place."""
    graph = index.graph
    landmarks = index.highway.landmarks
    dist, clear = flagged_single_source(graph, r, landmarks - {r})
    for r2 in landmarks:
        index.highway.set_distance(r, r2, dist[r2])
    labeling = index.labeling
    for v in range(graph.n):
        if v in landmarks:
            continue
        if clear[v]:
            labeling.add_entry(v, r, dist[v])
        else:
            labeling.remove_entry(v, r)
    labeling.add_entry(r, r, 0.0)


def _affected_landmarks(
    index: HCLIndex, u: int, v: int, w: float, inserting: bool
) -> list[int]:
    """Landmarks whose shortest-path structure the edge change may touch.

    Uses exact landmark distances from the index itself: inserting ``(u,
    v, w)`` matters to ``r`` iff it creates a path no longer than an
    existing shortest one (``d(r,u) + w <= d(r,v)`` or symmetrically);
    deleting matters iff the edge lies on some shortest path from ``r``
    (same test with equality, distances measured before the change).
    """
    inf = float("inf")
    affected = []
    for r in index.highway.landmarks:
        du = index.query_from_landmark(r, u) if r != u else 0.0
        dv = index.query_from_landmark(r, v) if r != v else 0.0
        # Guard against inf <= inf: an edge between vertices unreachable
        # from r cannot change r's shortest paths.
        a, b = du + w, dv + w
        if inserting:
            hit = (a <= dv and a < inf) or (b <= du and b < inf)
        else:
            hit = (a == dv and a < inf) or (b == du and b < inf)
        if hit:
            affected.append(r)
    return affected


def insert_edge(index: HCLIndex, u: int, v: int, w: float = 1.0) -> TopologyStats:
    """Insert edge ``{u, v}`` and repair the index (affected rows only)."""
    affected = _affected_landmarks(index, u, v, w, inserting=True)
    index.graph.add_edge(u, v, w)
    for r in affected:
        _relabel_landmark(index, r)
    return TopologyStats(len(affected), index.highway.size)


def delete_edge(index: HCLIndex, u: int, v: int) -> TopologyStats:
    """Delete edge ``{u, v}`` and repair the index (affected rows only)."""
    w = index.graph.edge_weight(u, v)
    affected = _affected_landmarks(index, u, v, w, inserting=False)
    index.graph.remove_edge(u, v)
    for r in affected:
        _relabel_landmark(index, r)
    return TopologyStats(len(affected), index.highway.size)


def set_edge_weight(index: HCLIndex, u: int, v: int, w: float) -> TopologyStats:
    """Change the weight of edge ``{u, v}`` and repair the index."""
    old = index.graph.edge_weight(u, v)
    if old == w:
        return TopologyStats(0, index.highway.size)
    # A weight change is a delete (old weight) plus an insert (new weight);
    # the union of both affected sets needs repair.
    before = set(_affected_landmarks(index, u, v, old, inserting=False))
    index.graph.set_weight(u, v, w)
    after = set(_affected_landmarks(index, u, v, w, inserting=True))
    # ``after`` is computed on the new graph, where query_from_landmark may
    # already be stale for landmarks in ``before``; include both sets.
    affected = before | after
    for r in affected:
        _relabel_landmark(index, r)
    return TopologyStats(len(affected), index.highway.size)


class FullyDynamicHCL(DynamicHCL):
    """DYN-HCL plus topology updates: the fully dynamic setting.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for a, b in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(a, b, 1.0)
    >>> dyn = FullyDynamicHCL.build(g, [1])
    >>> _ = dyn.insert_edge(0, 3, 1.0)
    >>> dyn.distance(0, 3)
    1.0
    >>> _ = dyn.add_landmark(3)
    >>> sorted(dyn.landmarks)
    [1, 3]
    """

    def insert_edge(self, u: int, v: int, w: float = 1.0) -> TopologyStats:
        """Insert an edge, repairing only the affected landmark rows."""
        return insert_edge(self.index, u, v, w)

    def delete_edge(self, u: int, v: int) -> TopologyStats:
        """Delete an edge, repairing only the affected landmark rows."""
        return delete_edge(self.index, u, v)

    def set_edge_weight(self, u: int, v: int, w: float) -> TopologyStats:
        """Reweight an edge, repairing only the affected landmark rows."""
        return set_edge_weight(self.index, u, v, w)

    def add_vertex(self) -> int:
        """Append an isolated vertex (labels grow with it)."""
        vid = self.index.graph.add_vertex()
        self.index.labeling.add_vertex()
        return vid
