"""Persistence for HCL indexes.

An HCL index is expensive to build and cheap to store — persisting it is
how a deployment avoids ever paying ``BUILDHCL`` twice.  Two formats:

* **JSON** (`save_index_json` / `load_index_json`): human-inspectable,
  schema-versioned, good for small indexes and debugging.
* **Binary** (`save_index_binary` / `load_index_binary`): length-prefixed
  little-endian records (``struct``-packed), roughly 4-6x smaller and much
  faster to parse; the format every loader validates with a magic header.

Both formats capture the landmark set, the ``δ_H`` matrix and all label
entries.  The graph itself is *not* serialized (store it as DIMACS via
:mod:`repro.graphs.io`); loading takes the graph as an argument and
validates vertex counts, mirroring how the paper's artifacts ship graphs
and indexes separately.
"""

from __future__ import annotations

import json
import math
import struct
from pathlib import Path
from typing import BinaryIO, TextIO

from ..errors import ParseError, VertexError
from ..graphs.graph import Graph
from .highway import Highway
from .index import HCLIndex
from .labeling import Labeling

__all__ = [
    "save_index_json",
    "load_index_json",
    "save_index_binary",
    "load_index_binary",
]

_JSON_SCHEMA = "dyn-hcl-index/1"
_BINARY_MAGIC = b"DHCL\x01"
_INF_SENTINEL = -1.0  # encodes infinity in the binary distance fields


def _open(target, mode):
    if isinstance(target, (str, Path)):
        return open(target, mode), True
    return target, False


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def save_index_json(index: HCLIndex, target: str | Path | TextIO) -> None:
    """Write ``index`` as schema-versioned JSON."""
    landmarks = sorted(index.landmarks)
    payload = {
        "schema": _JSON_SCHEMA,
        "n": index.graph.n,
        "landmarks": landmarks,
        "highway": [
            [
                None if math.isinf(index.highway.distance(a, b)) else
                index.highway.distance(a, b)
                for b in landmarks
            ]
            for a in landmarks
        ],
        "labels": [
            sorted(index.labeling.label(v).items())
            for v in range(index.graph.n)
        ],
    }
    fh, should_close = _open(target, "w")
    try:
        json.dump(payload, fh)
    finally:
        if should_close:
            fh.close()


def load_index_json(graph: Graph, source: str | Path | TextIO) -> HCLIndex:
    """Load a JSON index and bind it to ``graph``."""
    fh, should_close = _open(source, "r")
    try:
        payload = json.load(fh)
    finally:
        if should_close:
            fh.close()
    if payload.get("schema") != _JSON_SCHEMA:
        raise ParseError(f"unknown index schema {payload.get('schema')!r}")
    if payload["n"] != graph.n:
        raise VertexError(
            f"index was built for {payload['n']} vertices, graph has {graph.n}"
        )
    landmarks = payload["landmarks"]
    highway = Highway()
    for r in landmarks:
        highway.add_landmark(r)
    for i, a in enumerate(landmarks):
        for j, b in enumerate(landmarks):
            if j < i:
                continue
            value = payload["highway"][i][j]
            highway.set_distance(a, b, math.inf if value is None else value)
    labeling = Labeling(graph.n)
    for v, entries in enumerate(payload["labels"]):
        for r, d in entries:
            labeling.add_entry(v, r, d)
    return HCLIndex(graph, highway, labeling)


# ----------------------------------------------------------------------
# Binary
# ----------------------------------------------------------------------
def save_index_binary(index: HCLIndex, target: str | Path | BinaryIO) -> None:
    """Write ``index`` in the compact ``DHCL`` binary format."""
    landmarks = sorted(index.landmarks)
    fh, should_close = _open(target, "wb")
    try:
        fh.write(_BINARY_MAGIC)
        fh.write(struct.pack("<II", index.graph.n, len(landmarks)))
        fh.write(struct.pack(f"<{len(landmarks)}I", *landmarks))
        for i, a in enumerate(landmarks):
            for b in landmarks[i + 1 :]:
                d = index.highway.distance(a, b)
                fh.write(struct.pack("<d", _INF_SENTINEL if math.isinf(d) else d))
        for v in range(index.graph.n):
            label = index.labeling.label(v)
            fh.write(struct.pack("<I", len(label)))
            for r, d in sorted(label.items()):
                fh.write(struct.pack("<Id", r, d))
    finally:
        if should_close:
            fh.close()


def load_index_binary(graph: Graph, source: str | Path | BinaryIO) -> HCLIndex:
    """Load a ``DHCL`` binary index and bind it to ``graph``."""
    fh, should_close = _open(source, "rb")
    try:
        if fh.read(len(_BINARY_MAGIC)) != _BINARY_MAGIC:
            raise ParseError("not a DHCL index file (bad magic)")
        n, k = struct.unpack("<II", fh.read(8))
        if n != graph.n:
            raise VertexError(
                f"index was built for {n} vertices, graph has {graph.n}"
            )
        landmarks = list(struct.unpack(f"<{k}I", fh.read(4 * k))) if k else []
        highway = Highway()
        for r in landmarks:
            highway.add_landmark(r)
        for i, a in enumerate(landmarks):
            for b in landmarks[i + 1 :]:
                (d,) = struct.unpack("<d", fh.read(8))
                highway.set_distance(a, b, math.inf if d == _INF_SENTINEL else d)
        labeling = Labeling(n)
        for v in range(n):
            (count,) = struct.unpack("<I", fh.read(4))
            for _ in range(count):
                r, d = struct.unpack("<Id", fh.read(12))
                labeling.add_entry(v, r, d)
        return HCLIndex(graph, highway, labeling)
    finally:
        if should_close:
            fh.close()
