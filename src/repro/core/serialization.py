"""Persistence for HCL indexes.

An HCL index is expensive to build and cheap to store — persisting it is
how a deployment avoids ever paying ``BUILDHCL`` twice.  Two formats:

* **JSON** (`save_index_json` / `load_index_json`): human-inspectable,
  schema-versioned, good for small indexes and debugging.
* **Binary** (`save_index_binary` / `load_index_binary`): length-prefixed
  little-endian records (``struct``-packed), roughly 4-6x smaller and much
  faster to parse; the format every loader validates with a magic header.

The binary format doubles as the *checkpoint* format of the crash-safety
layer, so it is written durably and defensively (format v2, magic
``DHCL\\x02``):

* the header carries a CRC32 of the payload and the payload length, so a
  bit-flipped or truncated checkpoint is rejected with a typed
  :class:`~repro.errors.CheckpointError` instead of producing a garbage
  index;
* the header records the write-ahead-log sequence number the checkpoint
  includes (``wal_seq``), which tells recovery where replay must start;
* path targets are written atomically — to a temporary file in the same
  directory, fsync'd, then ``os.replace``'d over the target — so a crash
  mid-checkpoint leaves the previous checkpoint intact, never a torn one.

Readers still accept the legacy v1 format (``DHCL\\x01``, no checksum).

Both formats capture the landmark set, the ``δ_H`` matrix and all label
entries.  The graph itself is *not* serialized (store it as DIMACS via
:mod:`repro.graphs.io`); loading takes the graph as an argument and
validates vertex counts, mirroring how the paper's artifacts ship graphs
and indexes separately.
"""

from __future__ import annotations

import io
import json
import math
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import BinaryIO, TextIO

from ..errors import CheckpointError, ParseError, VertexError
from ..graphs.graph import Graph
from .highway import Highway
from .index import HCLIndex
from .labeling import Labeling

__all__ = [
    "save_index_json",
    "load_index_json",
    "save_index_binary",
    "load_index_binary",
    "save_checkpoint",
    "load_checkpoint",
]

_JSON_SCHEMA = "dyn-hcl-index/1"
_BINARY_MAGIC_V1 = b"DHCL\x01"
_BINARY_MAGIC = b"DHCL\x02"
_V2_HEADER = struct.Struct("<QIQ")  # wal_seq, payload crc32, payload length
_INF_SENTINEL = -1.0  # encodes infinity in the binary distance fields


def _open(target, mode):
    if isinstance(target, (str, Path)):
        return open(target, mode), True
    return target, False


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def save_index_json(index: HCLIndex, target: str | Path | TextIO) -> None:
    """Write ``index`` as schema-versioned JSON."""
    landmarks = sorted(index.landmarks)
    payload = {
        "schema": _JSON_SCHEMA,
        "n": index.graph.n,
        "landmarks": landmarks,
        "highway": [
            [
                None if math.isinf(index.highway.distance(a, b)) else
                index.highway.distance(a, b)
                for b in landmarks
            ]
            for a in landmarks
        ],
        "labels": [
            sorted(index.labeling.label(v).items())
            for v in range(index.graph.n)
        ],
    }
    fh, should_close = _open(target, "w")
    try:
        json.dump(payload, fh)
    finally:
        if should_close:
            fh.close()


def load_index_json(graph: Graph, source: str | Path | TextIO) -> HCLIndex:
    """Load a JSON index and bind it to ``graph``."""
    fh, should_close = _open(source, "r")
    try:
        payload = json.load(fh)
    finally:
        if should_close:
            fh.close()
    if payload.get("schema") != _JSON_SCHEMA:
        raise ParseError(f"unknown index schema {payload.get('schema')!r}")
    if payload["n"] != graph.n:
        raise VertexError(
            f"index was built for {payload['n']} vertices, graph has {graph.n}"
        )
    landmarks = payload["landmarks"]
    highway = Highway()
    for r in landmarks:
        highway.add_landmark(r)
    for i, a in enumerate(landmarks):
        for j, b in enumerate(landmarks):
            if j < i:
                continue
            value = payload["highway"][i][j]
            highway.set_distance(a, b, math.inf if value is None else value)
    labeling = Labeling(graph.n)
    for v, entries in enumerate(payload["labels"]):
        for r, d in entries:
            labeling.add_entry(v, r, d)
    return HCLIndex(graph, highway, labeling)


# ----------------------------------------------------------------------
# Binary / checkpoints
# ----------------------------------------------------------------------
def _pack_payload(index: HCLIndex) -> bytes:
    """The deterministic index body shared by format v1 and v2."""
    landmarks = sorted(index.landmarks)
    out = io.BytesIO()
    out.write(struct.pack("<II", index.graph.n, len(landmarks)))
    out.write(struct.pack(f"<{len(landmarks)}I", *landmarks))
    for i, a in enumerate(landmarks):
        for b in landmarks[i + 1 :]:
            d = index.highway.distance(a, b)
            out.write(struct.pack("<d", _INF_SENTINEL if math.isinf(d) else d))
    for v in range(index.graph.n):
        label = index.labeling.label(v)
        out.write(struct.pack("<I", len(label)))
        for r, d in sorted(label.items()):
            out.write(struct.pack("<Id", r, d))
    return out.getvalue()


def _parse_payload(graph: Graph, fh, strict_eof: bool) -> HCLIndex:
    """Parse the index body; ``strict_eof`` rejects trailing bytes."""
    n, k = struct.unpack("<II", fh.read(8))
    if n != graph.n:
        raise VertexError(
            f"index was built for {n} vertices, graph has {graph.n}"
        )
    landmarks = list(struct.unpack(f"<{k}I", fh.read(4 * k))) if k else []
    highway = Highway()
    for r in landmarks:
        highway.add_landmark(r)
    for i, a in enumerate(landmarks):
        for b in landmarks[i + 1 :]:
            (d,) = struct.unpack("<d", fh.read(8))
            highway.set_distance(a, b, math.inf if d == _INF_SENTINEL else d)
    labeling = Labeling(n)
    for v in range(n):
        (count,) = struct.unpack("<I", fh.read(4))
        for _ in range(count):
            r, d = struct.unpack("<Id", fh.read(12))
            labeling.add_entry(v, r, d)
    if strict_eof and fh.read(1):
        raise CheckpointError("checkpoint payload has trailing bytes")
    return HCLIndex(graph, highway, labeling)


def save_index_binary(
    index: HCLIndex, target: str | Path | BinaryIO, wal_seq: int = 0
) -> None:
    """Write ``index`` as a ``DHCL`` v2 checkpoint.

    The header records ``wal_seq`` — the last write-ahead-log sequence
    number whose effect the checkpoint includes (0 without a WAL) — plus a
    CRC32 and length of the payload.  Path targets are replaced
    *atomically*: the bytes go to a temporary file in the target's
    directory, are fsync'd, and ``os.replace`` publishes them, so readers
    never observe a torn checkpoint.
    """
    payload = _pack_payload(index)
    header = _BINARY_MAGIC + _V2_HEADER.pack(
        wal_seq, zlib.crc32(payload), len(payload)
    )
    if isinstance(target, (str, Path)):
        path = Path(target)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent or Path("."), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    else:
        target.write(header)
        target.write(payload)


#: Alias making the checkpoint role explicit at call sites.
save_checkpoint = save_index_binary


def load_checkpoint(
    graph: Graph, source: str | Path | BinaryIO
) -> tuple[HCLIndex, int]:
    """Load a ``DHCL`` checkpoint; returns ``(index, wal_seq)``.

    Accepts both the checksummed v2 format and the legacy v1 format
    (which reports ``wal_seq = 0``).  Any corruption — bad magic, short
    header, payload shorter than declared, CRC mismatch, trailing bytes,
    malformed records — raises :class:`~repro.errors.CheckpointError`;
    a checkpoint for a different graph raises
    :class:`~repro.errors.VertexError`.
    """
    fh, should_close = _open(source, "rb")
    try:
        magic = fh.read(len(_BINARY_MAGIC))
        try:
            if magic == _BINARY_MAGIC_V1:
                return _parse_payload(graph, fh, strict_eof=False), 0
            if magic != _BINARY_MAGIC:
                raise CheckpointError("not a DHCL index file (bad magic)")
            header = fh.read(_V2_HEADER.size)
            if len(header) < _V2_HEADER.size:
                raise CheckpointError("checkpoint header truncated")
            wal_seq, crc, length = _V2_HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length:
                raise CheckpointError(
                    f"checkpoint payload truncated "
                    f"({len(payload)} of {length} bytes)"
                )
            if zlib.crc32(payload) != crc:
                raise CheckpointError("checkpoint payload failed CRC check")
            if fh.read(1):
                raise CheckpointError(
                    "checkpoint has bytes past the declared payload"
                )
            return _parse_payload(graph, io.BytesIO(payload), True), wal_seq
        except struct.error as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    finally:
        if should_close:
            fh.close()


def load_index_binary(graph: Graph, source: str | Path | BinaryIO) -> HCLIndex:
    """Load a ``DHCL`` binary index (v1 or v2) and bind it to ``graph``."""
    return load_checkpoint(graph, source)[0]
