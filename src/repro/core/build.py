"""``BUILDHCL`` — static construction of a highway cover labeling.

Reference construction from Farhan et al. (EDBT 2019), extended to weighted
graphs as in Coudert et al. (ATMOS 2024).  This is the full-recomputation
baseline the paper's Table 2 compares DYN-HCL against.

The construction runs one full Dijkstra (BFS when unweighted) per landmark
``r`` while propagating a "some shortest path avoids the other landmarks"
flag along the shortest-path DAG (see
:func:`repro.graphs.traversal.flagged_single_source`).  The pass yields both
the exact highway row ``δ_H(r, ·)`` and precisely the canonical label
entries: ``(r, d(r, v)) ∈ L(v)`` iff a shortest ``r → v`` path has no other
landmark internally.  The result is therefore minimal and order-invariant by
construction — landmark processing order cannot influence it — which is the
property Lemmas 3.2/3.3/3.6/3.7 preserve dynamically.

Total cost: ``O(|R| (m + n log n))``, matching the complexity the paper
states for BUILDHCL.

Because every per-landmark pass reads the graph and writes only its own
highway row and label entries, the construction is embarrassingly parallel
(the observation Customizable Hub Labeling exploits for per-hub label
construction).  :func:`build_hcl_parallel` fans the passes out over a
``multiprocessing`` pool against one immutable
:class:`~repro.graphs.csr.CSRGraph` snapshot and merges the partial results
in a fixed order, so its output is structurally identical to — and
serializes byte-identically with — the serial :func:`build_hcl`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, Sequence

from ..errors import LandmarkError, VertexError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..graphs.traversal import flagged_single_source
from .highway import Highway
from .index import HCLIndex
from .labeling import Labeling

__all__ = ["build_hcl", "build_hcl_parallel", "validate_landmarks"]


def validate_landmarks(graph: Graph, landmarks: Iterable[int]) -> list[int]:
    """Check landmark ids are in-range and distinct; return them as a list."""
    out: list[int] = []
    seen: set[int] = set()
    for r in landmarks:
        if not 0 <= r < graph.n:
            raise VertexError(f"landmark {r} out of range [0, {graph.n})")
        if r in seen:
            raise LandmarkError(f"duplicate landmark {r}")
        seen.add(r)
        out.append(r)
    return out


def _landmark_pass(graph, r, lmk_list, lmk_set):
    """One pruned-SSSP pass for landmark ``r``.

    Returns ``(hrow, entries)``: the highway distances of ``r`` to every
    landmark (in ``lmk_list`` order) and the canonical label entries
    ``(v, d(r, v))`` contributed by ``r``.  Both are flat picklable
    structures — this is the unit of work the parallel build ships to its
    pool workers, and the serial build runs the very same function so the
    two paths cannot drift apart.
    """
    dist, clear = flagged_single_source(graph, r, lmk_set - {r})
    hrow = [dist[r2] for r2 in lmk_list]
    entries = [
        (v, dist[v]) for v in range(graph.n) if clear[v] and v not in lmk_set
    ]
    return hrow, entries


def _merge_pass(highway, labeling, lmk_list, r, hrow, entries) -> None:
    """Fold one landmark's partial result into the index under construction.

    Each unordered landmark pair ``{a, b}`` is filled exactly once, from the
    smaller id's pass (``set_distance`` is symmetric), so the merge is
    independent of which worker computed which pass.
    """
    for j, r2 in enumerate(lmk_list):
        if r2 >= r:
            highway.set_distance(r, r2, hrow[j])
    labeling.merge_entries(r, entries)
    labeling.add_entry(r, r, 0.0)


def build_hcl(graph: Graph, landmarks: Sequence[int]) -> HCLIndex:
    """Build the canonical HCL index of ``graph`` over ``landmarks``.

    Parameters
    ----------
    graph:
        The graph to cover. Weighted graphs use Dijkstra sweeps; graphs
        flagged ``unweighted`` use BFS sweeps, as in the paper's setup.
    landmarks:
        The landmark set ``R`` (distinct vertex ids; may be empty).

    Returns
    -------
    HCLIndex
        Index satisfying the highway cover property, minimality and
        order-invariance.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> index = build_hcl(g, [1])
    >>> index.query(0, 3)
    3.0
    """
    lmk_list = validate_landmarks(graph, landmarks)
    highway = Highway()
    labeling = Labeling(graph.n)
    for r in lmk_list:
        highway.add_landmark(r)

    lmk_set = set(lmk_list)
    for r in lmk_list:
        hrow, entries = _landmark_pass(graph, r, lmk_list, lmk_set)
        _merge_pass(highway, labeling, lmk_list, r, hrow, entries)
    return HCLIndex(graph, highway, labeling)


# ----------------------------------------------------------------------
# Parallel build
# ----------------------------------------------------------------------
# Pool workers inherit the snapshot through the initializer: it is pickled
# once per worker process, not once per landmark task.
_POOL_STATE: tuple[CSRGraph, tuple[int, ...], set[int]] | None = None


def _init_build_pool(csr: CSRGraph, lmk_list: tuple[int, ...]) -> None:
    global _POOL_STATE
    _POOL_STATE = (csr, lmk_list, set(lmk_list))


def _pool_landmark_pass(i: int):
    csr, lmk_list, lmk_set = _POOL_STATE
    return _landmark_pass(csr, lmk_list[i], lmk_list, lmk_set)


def _pool_context():
    """Prefer ``fork`` (cheap snapshot sharing); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def build_hcl_parallel(
    graph: Graph,
    landmarks: Sequence[int],
    workers: int | None = None,
) -> HCLIndex:
    """``BUILDHCL`` with the per-landmark passes fanned out over processes.

    Snapshots ``graph`` once as an immutable picklable
    :class:`~repro.graphs.csr.CSRGraph`, runs
    :func:`~repro.graphs.traversal.flagged_single_source` for chunks of
    landmarks in a ``multiprocessing`` pool, and merges the partial highway
    rows / label entries in landmark-list order.  The merge order is fixed
    and every unordered landmark pair is filled from the smaller id's pass,
    so the result is structurally identical to :func:`build_hcl` — the
    canonical index is a function of ``(G, R)`` alone — and serializes
    byte-identically regardless of ``workers``.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``workers <= 1`` (or
        fewer than two landmarks) short-circuits to the serial path — the
        pool fork/pickle overhead only pays off when there are passes to
        overlap.
    """
    lmk_list = validate_landmarks(graph, landmarks)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(lmk_list) < 2:
        return build_hcl(graph, lmk_list)

    csr = CSRGraph(graph)
    lmk_tuple = tuple(lmk_list)
    pool_size = min(workers, len(lmk_list))
    # Deterministic chunked assignment: a few chunks per worker balances
    # skewed pass times without drowning in task overhead.
    chunksize = max(1, len(lmk_list) // (pool_size * 4))
    ctx = _pool_context()
    with ctx.Pool(
        pool_size, initializer=_init_build_pool, initargs=(csr, lmk_tuple)
    ) as pool:
        partials = pool.map(
            _pool_landmark_pass, range(len(lmk_list)), chunksize=chunksize
        )

    highway = Highway()
    labeling = Labeling(graph.n)
    for r in lmk_list:
        highway.add_landmark(r)
    # ``pool.map`` returns results in task order, so the merge below runs in
    # landmark-list order no matter how the pool scheduled the passes.
    for r, (hrow, entries) in zip(lmk_list, partials):
        _merge_pass(highway, labeling, lmk_list, r, hrow, entries)
    return HCLIndex(graph, highway, labeling)
