"""``BUILDHCL`` — static construction of a highway cover labeling.

Reference construction from Farhan et al. (EDBT 2019), extended to weighted
graphs as in Coudert et al. (ATMOS 2024).  This is the full-recomputation
baseline the paper's Table 2 compares DYN-HCL against.

The construction runs one full Dijkstra (BFS when unweighted) per landmark
``r`` while propagating a "some shortest path avoids the other landmarks"
flag along the shortest-path DAG (see
:func:`repro.graphs.traversal.flagged_single_source`).  The pass yields both
the exact highway row ``δ_H(r, ·)`` and precisely the canonical label
entries: ``(r, d(r, v)) ∈ L(v)`` iff a shortest ``r → v`` path has no other
landmark internally.  The result is therefore minimal and order-invariant by
construction — landmark processing order cannot influence it — which is the
property Lemmas 3.2/3.3/3.6/3.7 preserve dynamically.

Total cost: ``O(|R| (m + n log n))``, matching the complexity the paper
states for BUILDHCL.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import LandmarkError, VertexError
from ..graphs.graph import Graph
from ..graphs.traversal import flagged_single_source
from .highway import Highway
from .index import HCLIndex
from .labeling import Labeling

__all__ = ["build_hcl", "validate_landmarks"]


def validate_landmarks(graph: Graph, landmarks: Iterable[int]) -> list[int]:
    """Check landmark ids are in-range and distinct; return them as a list."""
    out: list[int] = []
    seen: set[int] = set()
    for r in landmarks:
        if not 0 <= r < graph.n:
            raise VertexError(f"landmark {r} out of range [0, {graph.n})")
        if r in seen:
            raise LandmarkError(f"duplicate landmark {r}")
        seen.add(r)
        out.append(r)
    return out


def build_hcl(graph: Graph, landmarks: Sequence[int]) -> HCLIndex:
    """Build the canonical HCL index of ``graph`` over ``landmarks``.

    Parameters
    ----------
    graph:
        The graph to cover. Weighted graphs use Dijkstra sweeps; graphs
        flagged ``unweighted`` use BFS sweeps, as in the paper's setup.
    landmarks:
        The landmark set ``R`` (distinct vertex ids; may be empty).

    Returns
    -------
    HCLIndex
        Index satisfying the highway cover property, minimality and
        order-invariance.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> index = build_hcl(g, [1])
    >>> index.query(0, 3)
    3.0
    """
    lmk_list = validate_landmarks(graph, landmarks)
    highway = Highway()
    labeling = Labeling(graph.n)
    for r in lmk_list:
        highway.add_landmark(r)

    lmk_set = set(lmk_list)
    for r in lmk_list:
        blocked = lmk_set - {r}
        dist, clear = flagged_single_source(graph, r, blocked)
        for r2 in lmk_list:
            if r2 >= r:  # fill each unordered pair once (set_distance is symmetric)
                highway.set_distance(r, r2, dist[r2])
        add_entry = labeling.add_entry
        for v in range(graph.n):
            if clear[v] and v not in lmk_set:
                add_entry(v, r, dist[v])
        labeling.add_entry(r, r, 0.0)
    return HCLIndex(graph, highway, labeling)
