"""``BUILDHCL`` — static construction of a highway cover labeling.

Reference construction from Farhan et al. (EDBT 2019), extended to weighted
graphs as in Coudert et al. (ATMOS 2024).  This is the full-recomputation
baseline the paper's Table 2 compares DYN-HCL against.

The construction runs one full Dijkstra (BFS when unweighted) per landmark
``r`` while propagating a "some shortest path avoids the other landmarks"
flag along the shortest-path DAG (see
:func:`repro.graphs.traversal.flagged_single_source`).  The pass yields both
the exact highway row ``δ_H(r, ·)`` and precisely the canonical label
entries: ``(r, d(r, v)) ∈ L(v)`` iff a shortest ``r → v`` path has no other
landmark internally.  The result is therefore minimal and order-invariant by
construction — landmark processing order cannot influence it — which is the
property Lemmas 3.2/3.3/3.6/3.7 preserve dynamically.

Total cost: ``O(|R| (m + n log n))``, matching the complexity the paper
states for BUILDHCL.

Because every per-landmark pass reads the graph and writes only its own
highway row and label entries, the construction is embarrassingly parallel
(the observation Customizable Hub Labeling exploits for per-hub label
construction).  :func:`build_hcl_parallel` fans the passes out over a
``multiprocessing`` pool against one immutable
:class:`~repro.graphs.csr.CSRGraph` snapshot and merges the partial results
in a fixed order, so its output is structurally identical to — and
serializes byte-identically with — the serial :func:`build_hcl`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterable, Sequence

from ..errors import LandmarkError, VertexError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph
from ..graphs.traversal import flagged_single_source
from ..obs import OBS
from ..retry import BackoffPolicy
from .highway import Highway
from .index import HCLIndex
from .labeling import Labeling

__all__ = ["build_hcl", "build_hcl_parallel", "validate_landmarks"]


def validate_landmarks(graph: Graph, landmarks: Iterable[int]) -> list[int]:
    """Check landmark ids are in-range and distinct; return them as a list."""
    out: list[int] = []
    seen: set[int] = set()
    for r in landmarks:
        if not 0 <= r < graph.n:
            raise VertexError(f"landmark {r} out of range [0, {graph.n})")
        if r in seen:
            raise LandmarkError(f"duplicate landmark {r}")
        seen.add(r)
        out.append(r)
    return out


def _landmark_pass(graph, r, lmk_list, lmk_set):
    """One pruned-SSSP pass for landmark ``r``.

    Returns ``(hrow, entries)``: the highway distances of ``r`` to every
    landmark (in ``lmk_list`` order) and the canonical label entries
    ``(v, d(r, v))`` contributed by ``r``.  Both are flat picklable
    structures — this is the unit of work the parallel build ships to its
    pool workers, and the serial build runs the very same function so the
    two paths cannot drift apart.
    """
    dist, clear = flagged_single_source(graph, r, lmk_set - {r})
    hrow = [dist[r2] for r2 in lmk_list]
    entries = [
        (v, dist[v]) for v in range(graph.n) if clear[v] and v not in lmk_set
    ]
    return hrow, entries


def _merge_pass(highway, labeling, lmk_list, r, hrow, entries) -> None:
    """Fold one landmark's partial result into the index under construction.

    Each unordered landmark pair ``{a, b}`` is filled exactly once, from the
    smaller id's pass (``set_distance`` is symmetric), so the merge is
    independent of which worker computed which pass.
    """
    for j, r2 in enumerate(lmk_list):
        if r2 >= r:
            highway.set_distance(r, r2, hrow[j])
    labeling.merge_entries(r, entries)
    labeling.add_entry(r, r, 0.0)


def build_hcl(graph: Graph, landmarks: Sequence[int]) -> HCLIndex:
    """Build the canonical HCL index of ``graph`` over ``landmarks``.

    Parameters
    ----------
    graph:
        The graph to cover. Weighted graphs use Dijkstra sweeps; graphs
        flagged ``unweighted`` use BFS sweeps, as in the paper's setup.
    landmarks:
        The landmark set ``R`` (distinct vertex ids; may be empty).

    Returns
    -------
    HCLIndex
        Index satisfying the highway cover property, minimality and
        order-invariance.

    Examples
    --------
    >>> from repro.graphs import Graph
    >>> g = Graph(4)
    >>> for u, v in [(0, 1), (1, 2), (2, 3)]:
    ...     g.add_edge(u, v, 1.0)
    >>> index = build_hcl(g, [1])
    >>> index.query(0, 3)
    3.0
    """
    lmk_list = validate_landmarks(graph, landmarks)
    highway = Highway()
    labeling = Labeling(graph.n)
    for r in lmk_list:
        highway.add_landmark(r)

    lmk_set = set(lmk_list)
    with OBS.span("build_hcl"):
        for r in lmk_list:
            hrow, entries = _landmark_pass(graph, r, lmk_list, lmk_set)
            _merge_pass(highway, labeling, lmk_list, r, hrow, entries)
    if OBS.enabled:
        reg = OBS.registry
        reg.counter("build.calls").inc()
        reg.counter("build.landmark_passes").inc(len(lmk_list))
        reg.counter("build.label_writes").inc(labeling.total_entries())
    return HCLIndex(graph, highway, labeling)


# ----------------------------------------------------------------------
# Parallel build
# ----------------------------------------------------------------------
# Pool workers inherit the snapshot through the initializer: it is pickled
# once per worker process, not once per landmark task.
_POOL_STATE: tuple[CSRGraph, tuple[int, ...], set[int]] | None = None
_POOL_FAULT: tuple[object, int] | None = None

# Fault-injection seam (see repro.testing.faults.inject_worker_fault): an
# object whose ``fire(task_index, attempt)`` decides whether this worker
# task dies.  Shipped to workers through the pool initializer so it works
# under both fork and spawn start methods.  Always None in production.
_WORKER_FAULT = None


def _init_build_pool(
    csr: CSRGraph,
    lmk_list: tuple[int, ...],
    fault=None,
    attempt: int = 0,
) -> None:
    global _POOL_STATE, _POOL_FAULT
    _POOL_STATE = (csr, lmk_list, set(lmk_list))
    _POOL_FAULT = (fault, attempt)


def _pool_landmark_pass(i: int):
    csr, lmk_list, lmk_set = _POOL_STATE
    if _POOL_FAULT is not None:
        fault, attempt = _POOL_FAULT
        if fault is not None:
            fault.fire(i, attempt)
    return _landmark_pass(csr, lmk_list[i], lmk_list, lmk_set)


def _pool_context():
    """Prefer ``fork`` (cheap snapshot sharing); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _pool_attempt(
    csr: CSRGraph,
    lmk_tuple: tuple[int, ...],
    indices: list[int],
    pool_size: int,
    attempt: int,
    partials: list,
) -> list[int]:
    """Run one pool attempt over ``indices``; returns the failed subset.

    Each landmark is its own future, so one poisoned task costs one retry
    unit, not a whole chunk.  A worker that *dies* (``BrokenProcessPool``)
    fails every task still in flight; a worker that *raises* fails only its
    own task.  Both land in the returned retry list — the caller decides
    whether to re-pool or fall back to serial execution.
    """
    failed: list[int] = []
    with ProcessPoolExecutor(
        max_workers=min(pool_size, len(indices)),
        mp_context=_pool_context(),
        initializer=_init_build_pool,
        initargs=(csr, lmk_tuple, _WORKER_FAULT, attempt),
    ) as pool:
        futures = {pool.submit(_pool_landmark_pass, i): i for i in indices}
        for future in as_completed(futures):
            i = futures[future]
            try:
                partials[i] = future.result()
            except Exception:
                failed.append(i)
    return sorted(failed)


#: Default retry pacing for :func:`build_hcl_parallel`: a short jittered
#: ladder, so a pool retrying around a transiently sick machine (OOM
#: killer, fork pressure) does not re-fork into the same fault
#: back-to-back.  The shared :class:`~repro.retry.BackoffPolicy` is the
#: same ladder the circuit breaker and the sharded serving tier use.
_BUILD_BACKOFF = BackoffPolicy(base_delay=0.05, max_delay=1.0, jitter=0.1)


def build_hcl_parallel(
    graph: Graph,
    landmarks: Sequence[int],
    workers: int | None = None,
    max_retries: int = 2,
    backoff: BackoffPolicy | None = None,
) -> HCLIndex:
    """``BUILDHCL`` with the per-landmark passes fanned out over processes.

    Snapshots ``graph`` once as an immutable picklable
    :class:`~repro.graphs.csr.CSRGraph`, runs
    :func:`~repro.graphs.traversal.flagged_single_source` per landmark in a
    process pool, and merges the partial highway rows / label entries in
    landmark-list order.  The merge order is fixed and every unordered
    landmark pair is filled from the smaller id's pass, so the result is
    structurally identical to :func:`build_hcl` — the canonical index is a
    function of ``(G, R)`` alone — and serializes byte-identically
    regardless of ``workers``.

    The build survives worker failure: a pass that raises or whose worker
    process dies (``BrokenProcessPool``) is retried in a fresh pool up to
    ``max_retries`` times, and any passes still failing after that run
    *serially in the coordinator process*.  Because every pass is a pure
    function of ``(snapshot, landmark)`` and the merge order never changes,
    retried and fallback passes produce exactly the bytes the healthy run
    would have — resilience costs determinism nothing.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``workers <= 1`` (or
        fewer than two landmarks) short-circuits to the serial path — the
        pool fork/pickle overhead only pays off when there are passes to
        overlap.
    max_retries:
        Pool attempts after the first before the serial fallback.
    """
    lmk_list = validate_landmarks(graph, landmarks)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(lmk_list) < 2:
        return build_hcl(graph, lmk_list)

    csr = CSRGraph(graph)
    lmk_tuple = tuple(lmk_list)
    pool_size = min(workers, len(lmk_list))
    partials: list = [None] * len(lmk_list)
    pending = list(range(len(lmk_list)))
    pacing = backoff if backoff is not None else _BUILD_BACKOFF
    attempts = 1 + max(0, max_retries)
    for attempt in range(attempts):
        if attempt:
            pacing.pause(attempt - 1)
        pending = _pool_attempt(
            csr, lmk_tuple, pending, pool_size, attempt, partials
        )
        if not pending:
            break
    if pending:
        # Serial fallback: the coordinator computes the stragglers itself.
        lmk_set = set(lmk_tuple)
        lmk_seq = list(lmk_tuple)
        for i in pending:
            partials[i] = _landmark_pass(csr, lmk_tuple[i], lmk_seq, lmk_set)

    highway = Highway()
    labeling = Labeling(graph.n)
    for r in lmk_list:
        highway.add_landmark(r)
    # Futures may complete in any order, but ``partials`` is indexed by
    # landmark-list position, so the merge below runs in landmark-list
    # order no matter how (or where) each pass was computed.
    for r, (hrow, entries) in zip(lmk_list, partials):
        _merge_pass(highway, labeling, lmk_list, r, hrow, entries)
    return HCLIndex(graph, highway, labeling)
