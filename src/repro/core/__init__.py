"""HCL core: the paper's contribution plus the static HCL substrate."""

from .auditor import AuditFinding, AuditTickReport, IndexAuditor
from .batch import BatchResult, EdgeUpdate, apply_batch, batch_reconfigure
from .batchquery import query_batch
from .cache import CachedQueryEngine, CacheStats
from .build import build_hcl, build_hcl_parallel
from .directed import (
    DirectedDynamicHCL,
    DirectedHCLIndex,
    build_directed_hcl,
    downgrade_landmark_directed,
    upgrade_landmark_directed,
)
from .downgrade import DowngradeStats, downgrade_landmark
from .dynhcl import DynamicHCL, LandmarkUpdate, UpdateRecord
from .epoch import PlanEpoch, PlanRegistry
from .highway import Highway
from .index import HCLIndex, IndexStats
from .invariants import (
    CoverViolation,
    HighwayViolation,
    assert_canonical,
    canonical_index,
    check_cover_property,
    check_highway_exact,
    check_minimality,
    find_cover_violations,
    find_highway_violations,
    sample_vertex_pairs,
)
from .labeling import Labeling
from .metrics import (
    IndexQualityReport,
    coverage_histogram,
    landmark_coverage_counts,
    quality_report,
    uncovered_vertices,
)
from .multicategory import MultiCategoryHCL
from .plan import QueryPlan, SearchWorkspace
from .planvec import VectorBackend, default_backend, numpy_available
from .shm import SharedPlanBuffers, SharedPlanRef, shm_available
from .paths import (
    highway_path,
    label_path,
    landmark_constrained_path,
    shortest_path,
)
from .serialization import (
    load_checkpoint,
    load_index_binary,
    load_index_json,
    save_checkpoint,
    save_index_binary,
    save_index_json,
)
from .transaction import IndexTransaction, UndoJournal
from .wal import WalRecord, WalScan, WriteAheadLog, scan_wal
from .selection import (
    select_by_approx_betweenness,
    select_by_degree,
    select_landmarks,
    select_random,
)
from .topology import (
    FullyDynamicHCL,
    TopologyStats,
    delete_edge,
    insert_edge,
    set_edge_weight,
)
from .upgrade import UpgradeStats, upgrade_landmark

__all__ = [
    "Highway",
    "Labeling",
    "HCLIndex",
    "IndexStats",
    "QueryPlan",
    "SearchWorkspace",
    "VectorBackend",
    "default_backend",
    "numpy_available",
    "SharedPlanBuffers",
    "SharedPlanRef",
    "shm_available",
    "PlanEpoch",
    "PlanRegistry",
    "build_hcl",
    "build_hcl_parallel",
    "query_batch",
    "upgrade_landmark",
    "UpgradeStats",
    "downgrade_landmark",
    "DowngradeStats",
    "DynamicHCL",
    "LandmarkUpdate",
    "UpdateRecord",
    "select_by_degree",
    "select_by_approx_betweenness",
    "select_random",
    "select_landmarks",
    "assert_canonical",
    "canonical_index",
    "check_cover_property",
    "check_highway_exact",
    "check_minimality",
    "find_cover_violations",
    "find_highway_violations",
    "sample_vertex_pairs",
    "CoverViolation",
    "HighwayViolation",
    "IndexAuditor",
    "AuditFinding",
    "AuditTickReport",
    "apply_batch",
    "batch_reconfigure",
    "BatchResult",
    "EdgeUpdate",
    "CachedQueryEngine",
    "CacheStats",
    "save_index_json",
    "load_index_json",
    "save_index_binary",
    "load_index_binary",
    "save_checkpoint",
    "load_checkpoint",
    "IndexTransaction",
    "UndoJournal",
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "scan_wal",
    "IndexQualityReport",
    "coverage_histogram",
    "landmark_coverage_counts",
    "quality_report",
    "uncovered_vertices",
    "MultiCategoryHCL",
    "DirectedHCLIndex",
    "DirectedDynamicHCL",
    "build_directed_hcl",
    "upgrade_landmark_directed",
    "downgrade_landmark_directed",
    "label_path",
    "highway_path",
    "landmark_constrained_path",
    "shortest_path",
    "FullyDynamicHCL",
    "TopologyStats",
    "insert_edge",
    "delete_edge",
    "set_edge_weight",
]
