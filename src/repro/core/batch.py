"""Batch-dynamic maintenance (paper future-work items ii and iii).

Processes a set of landmark insertions, landmark deletions *and*
edge-weight updates together instead of one at a time.  Beyond the
batch-level optimizations of the original processor — cancellation,
insertions-first ordering, and the rebuild cutoff — :func:`apply_batch`
is built in the spirit of the batch-dynamic indexing work the paper cites
(BatchHL+, D'Andrea et al.): one *merged* repair pass over the union of
the per-operation affected sets, instead of σ independent repairs.

1. **Cancellation.**  A vertex both inserted and deleted within the batch
   nets out to a no-op; repeated weight updates of one edge keep only the
   last; a weight update writing the current weight is dropped.
2. **Ordering.**  Insertions run before deletions: every landmark added
   first strengthens the ``QUERY``-based pruning of the subsequent
   erasure/re-cover sweeps, shrinking their search spaces.
3. **Merged downgrade.**  All deletions share one repair: the per-landmark
   erasure sweeps prune at the *final* landmark set (never re-covering a
   landmark that a later operation would erase again), accumulate one
   union ``hole[]`` of vertices that lost coverage, and then each
   still-covering landmark runs a *single multi-seed* re-cover sweep over
   that union — the per-vertex union of reached sets — rather than one
   sweep per ``(landmark, deletion)`` pair.
4. **Edge-weight repair.**  After the landmark operations the affected
   landmarks of all weight changes are detected with exact index queries
   (no graph search; see :mod:`repro.core.topology`), the weights are
   applied under the transaction's undo journal, and each affected
   landmark re-runs its labelling pass exactly once — however many batch
   edges touched it.
5. **Rebuild cutoff.**  When the surviving landmark batch is large
   relative to the final landmark-set size, a single ``BUILDHCL``
   (``|R|`` sweeps) beats ``σ`` dynamic updates; the processor switches
   strategy under the same cost model as before
   (``σ > rebuild_factor · |R_final|``), now adopting the rebuilt index
   *through the journaled mutators* so rollback, plans and epochs keep
   working.

The whole batch executes inside one
:class:`~repro.core.transaction.IndexTransaction` — an exception (or an
expired :class:`~repro.budget.Budget`) anywhere rolls back every label,
highway *and edge-weight* write of the batch.  Because every path
produces the canonical index (order-invariance), batched, sequential and
rebuilt application are interchangeable in output — the differential
tests assert exactly that.
"""

from __future__ import annotations

import heapq
import math
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from ..errors import EdgeError, LandmarkError, VertexError, WeightError
from ..graphs.traversal import flagged_single_source
from ..obs import OBS, SIZE_BOUNDS
from ..tolerance import PRUNE_SCALE
from .build import build_hcl
from .index import HCLIndex
from .transaction import IndexTransaction
from .upgrade import upgrade_landmark

INF = math.inf

__all__ = ["apply_batch", "batch_reconfigure", "BatchResult", "EdgeUpdate"]

# Fault-injection seam (see repro.testing.faults.fail_at_phase): called with
# the name of each completed batch phase ("upgrades", "sweep", "recover",
# "edges", "adopt") so crash-safety tests can abort the batch at its
# internal consistency boundaries.  Always None in production.
_PHASE_HOOK = None


def _phase(name: str) -> None:
    if _PHASE_HOOK is not None:
        _PHASE_HOOK(name)


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge-weight change: set ``{u, v}`` to absolute weight ``weight``."""

    u: int
    v: int
    weight: float


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch application, with the paper's work counters.

    ``settled``/``swept``/``pruned`` follow the per-update statistics of
    ``UPGRADE-LMK``/``DOWNGRADE-LMK`` (vertices processed by the merged
    sweeps; for edge repairs, vertices settled by the re-run labelling
    passes land in ``swept``), so an :class:`~repro.core.dynhcl.UpdateLog`
    aggregates a batch record exactly like a sequence of single updates
    and Table-2-style experiments can compare the two cost models.
    """

    strategy: str  # "dynamic" or "rebuild"
    applied_adds: int
    applied_removes: int
    cancelled: int
    applied_edges: int = 0
    settled: int = 0
    swept: int = 0
    pruned: int = 0
    entries_added: int = 0
    entries_removed: int = 0
    recover_searches: int = 0
    edge_affected: int = 0
    # The netted operations actually applied — what a WAL ``BATCH`` record
    # persists, and what sequential replay must apply to reach this state.
    adds: tuple[int, ...] = ()
    removes: tuple[int, ...] = ()
    edge_updates: tuple[tuple[int, int, float], ...] = ()

    @property
    def ops(self) -> int:
        """Number of netted operations the batch applied."""
        return self.applied_adds + self.applied_removes + self.applied_edges

    @property
    def mean_work(self) -> float:
        """Mean vertices processed per applied operation."""
        ops = self.ops
        if not ops:
            return 0.0
        return (self.settled + self.swept + self.pruned) / ops


def _net_batch(
    index: HCLIndex, add: Iterable[int], remove: Iterable[int]
) -> tuple[list[int], list[int], int]:
    """Validate and cancel opposing operations; returns (adds, removes)."""
    add_set = set(add)
    remove_set = set(remove)
    for v in add_set:
        if not 0 <= v < index.graph.n:
            raise LandmarkError(f"vertex {v} out of range")
    for v in remove_set:
        if not 0 <= v < index.graph.n:
            raise LandmarkError(f"vertex {v} out of range")

    both = add_set & remove_set
    cancelled = 0
    landmarks = index.landmarks
    adds: list[int] = []
    removes: list[int] = []
    for v in both:
        # add+remove of the same vertex leaves its current state unchanged.
        cancelled += 1
    for v in sorted(add_set - both):
        if v in landmarks:
            raise LandmarkError(f"vertex {v} is already a landmark")
        adds.append(v)
    for v in sorted(remove_set - both):
        if v not in landmarks:
            raise LandmarkError(f"vertex {v} is not a landmark")
        removes.append(v)
    return adds, removes, cancelled


def _net_edges(
    index: HCLIndex, edge_updates: Iterable
) -> tuple[list[tuple[int, int, float]], int]:
    """Validate and net edge-weight updates (last write per edge wins).

    Returns the surviving ``(u, v, new_weight)`` triples in sorted edge
    order plus the number of updates that netted out (superseded by a
    later update of the same edge, or writing the current weight).
    """
    graph = index.graph
    n = graph.n
    seen: dict[tuple[int, int], float] = {}
    total = 0
    for upd in edge_updates:
        if isinstance(upd, EdgeUpdate):
            u, v, w = upd.u, upd.v, upd.weight
        else:
            u, v, w = upd
        total += 1
        if not (0 <= u < n and 0 <= v < n):
            raise VertexError(f"edge update ({u}, {v}) out of range [0, {n})")
        if u == v:
            raise EdgeError(f"edge update on self-loop ({u}, {u})")
        if not (
            isinstance(w, (int, float)) and math.isfinite(w) and w > 0
        ):
            raise WeightError(
                f"edge weight must be a positive finite number, got {w!r}"
            )
        if graph.unweighted and w != 1:
            raise WeightError(
                "unweighted graphs only accept unit edge weights"
            )
        if not graph.has_edge(u, v):
            raise EdgeError(f"edge ({u}, {v}) not present")
        seen[(u, v) if u < v else (v, u)] = float(w)
    edges = [
        (u, v, w)
        for (u, v), w in sorted(seen.items())
        if graph.edge_weight(u, v) != w
    ]
    return edges, total - len(edges)


def apply_batch(
    index: HCLIndex,
    adds: Iterable[int] = (),
    removes: Iterable[int] = (),
    edge_updates: Iterable = (),
    rebuild_factor: float = 0.75,
    budget=None,
    transactional: bool = True,
) -> BatchResult:
    """Apply landmark and edge-weight changes to ``index`` as one batch.

    Parameters
    ----------
    index:
        Canonical HCL index; updated in place.  Its ``highway`` /
        ``labeling`` objects are always mutated (never replaced), so
        compiled plans, epochs and open transactions stay attached.
    adds / removes:
        Vertices to promote / demote.  A vertex in both nets to a no-op.
    edge_updates:
        :class:`EdgeUpdate` instances or ``(u, v, new_weight)`` triples
        setting absolute weights of *existing* edges.  Repeated updates of
        one edge keep the last; updates writing the current weight are
        dropped.
    rebuild_factor:
        Switch to a full rebuild when ``σ > rebuild_factor · |R_final|``
        (``σ`` counts surviving landmark operations); tune 0 to force
        rebuilds, ``inf`` to force dynamic processing.
    budget:
        Optional :class:`~repro.budget.Budget`.  The merged sweeps charge
        one step per processed vertex and check the budget at every settle
        and phase boundary; expiry raises
        :class:`~repro.errors.DeadlineExceeded` and (under the default
        transaction) rolls the *whole batch* back — labels, highway and
        edge weights — leaving the index exactly as before the call.
    transactional:
        Run inside one :class:`~repro.core.transaction.IndexTransaction`
        (the default).  The batch then commits atomically: one undo scope,
        one epoch-registry notification carrying the merged affected set.

    Returns
    -------
    BatchResult
        Strategy, netted operation counts and merged work counters.
    """
    add_list, remove_list, cancelled = _net_batch(index, adds, removes)
    edge_list, cancelled_edges = _net_edges(index, edge_updates)
    cancelled += cancelled_edges
    sigma = len(add_list) + len(remove_list)
    if not sigma and not edge_list:
        return BatchResult("dynamic", 0, 0, cancelled)
    final_size = len(index.landmarks) + len(add_list) - len(remove_list)
    rebuild = bool(sigma) and sigma > rebuild_factor * max(final_size, 1)

    if transactional:
        with IndexTransaction(index):
            result = _apply(
                index, add_list, remove_list, edge_list, cancelled, rebuild,
                budget,
            )
    else:
        result = _apply(
            index, add_list, remove_list, edge_list, cancelled, rebuild,
            budget,
        )
    if OBS.enabled:
        reg = OBS.registry
        reg.counter("batch.applies").inc()
        if rebuild:
            reg.counter("batch.rebuilds").inc()
        reg.counter("batch.ops").inc(result.ops)
        reg.histogram("batch.sigma", SIZE_BOUNDS).observe(sigma)
        reg.histogram("batch.work", SIZE_BOUNDS).observe(
            result.settled + result.swept + result.pruned
        )
    return result


def _apply(
    index, add_list, remove_list, edge_list, cancelled, rebuild, budget
) -> BatchResult:
    if budget is not None:
        budget.raise_if_exceeded("APPLY-BATCH")
    if rebuild:
        return _apply_rebuild(
            index, add_list, remove_list, edge_list, cancelled, budget
        )

    settled = pruned = entries_added = entries_removed = 0
    # Insertions first: each new landmark sharpens the pruning available to
    # the merged deletion sweeps and the edge repairs.
    for v in add_list:
        st = upgrade_landmark(index, v, budget=budget)
        settled += st.settled
        pruned += st.pruned
        entries_added += st.entries_added
        entries_removed += st.entries_removed
    _phase("upgrades")

    swept, recover_searches, d_pruned, d_added, d_removed = _merged_downgrade(
        index, remove_list, budget
    )
    pruned += d_pruned
    entries_added += d_added
    entries_removed += d_removed

    applied_edges, edge_affected, e_swept, e_added, e_removed = _apply_edges(
        index, edge_list, budget
    )
    swept += e_swept
    entries_added += e_added
    entries_removed += e_removed

    return BatchResult(
        "dynamic",
        len(add_list),
        len(remove_list),
        cancelled,
        applied_edges=applied_edges,
        settled=settled,
        swept=swept,
        pruned=pruned,
        entries_added=entries_added,
        entries_removed=entries_removed,
        recover_searches=recover_searches,
        edge_affected=edge_affected,
        adds=tuple(add_list),
        removes=tuple(remove_list),
        edge_updates=tuple(edge_list),
    )


# ----------------------------------------------------------------------
# Rebuild strategy: BUILDHCL + journaled adoption
# ----------------------------------------------------------------------
def _apply_rebuild(
    index, add_list, remove_list, edge_list, cancelled, budget
) -> BatchResult:
    """Full rebuild over the final state, adopted through the mutators.

    The original processor replaced ``index.highway`` / ``index.labeling``
    wholesale, which silently detached undo journals, compiled plans and
    epoch registries from the live objects.  Adoption writes the rebuilt
    rows *into* the existing objects through their journaled mutators, so
    the batch stays roll-back-able and the commit carries an exact
    affected set.
    """
    graph = index.graph
    applied_edges = _set_edge_weights(index, edge_list)
    final = (index.landmarks | set(add_list)) - set(remove_list)
    fresh = build_hcl(graph, sorted(final))
    if budget is not None:
        budget.raise_if_exceeded("APPLY-BATCH (rebuild)")

    labeling = index.labeling
    highway = index.highway
    charge = budget.charge if budget is not None else None
    rows_changed = 0
    fresh_labels = fresh.labeling._labels
    for v in range(labeling.n):
        if labeling._labels[v] != fresh_labels[v]:
            labeling.clear_vertex(v)
            if fresh_labels[v]:
                labeling.merge_entries_for_vertex(v, fresh_labels[v])
            rows_changed += 1
            if charge is not None and charge():
                budget.raise_if_exceeded("APPLY-BATCH (adopt)")
    current = highway.landmarks
    for r in sorted(current - final):
        highway.remove_landmark(r)
    for r in sorted(final - current):
        highway.add_landmark(r)
    for r in sorted(final):
        row = fresh.highway.row(r)
        for r2, d in row.items():
            if r2 >= r:
                highway.set_distance(r, r2, d)
    _phase("adopt")
    return BatchResult(
        "rebuild",
        len(add_list),
        len(remove_list),
        cancelled,
        applied_edges=applied_edges,
        swept=rows_changed,
        adds=tuple(add_list),
        removes=tuple(remove_list),
        edge_updates=tuple(edge_list),
    )


# ----------------------------------------------------------------------
# Merged DOWNGRADE-LMK over all deletions
# ----------------------------------------------------------------------
def _merged_downgrade(index, remove_list, budget):
    """All deletions as one repair: shared hole, multi-seed re-covers.

    Phase A runs one erasure sweep per demoted landmark (exactly
    Algorithm 2 lines 1–22), but pruning at the *final* landmark set —
    another landmark demoted in the same batch is treated as the plain
    vertex it is about to become, so no coverage is ever granted to it
    just to be erased again.  The sweeps share one ``hole[]`` (the union
    of the per-deletion holes — the merged affected set).

    Phase B then runs **one** re-cover sweep per still-covering landmark
    ``l``, seeded simultaneously at every demoted landmark ``r_i`` that
    ``l`` covers with priority ``ρ_i = d(l, r_i)`` — a multi-source
    Dijkstra confined to the union hole.  This is the per-vertex union of
    reached sets: a vertex reachable through several holes is processed
    once at its best distance instead of once per deletion.  Soundness of
    the confinement follows from the single-deletion argument applied to
    the *last* demoted landmark on a new shortest path: its suffix is a
    landmark-free shortest path in the pre-batch index, so every vertex on
    it lost coverage and lies in the union hole.
    """
    if not remove_list:
        return 0, 0, 0, 0, 0
    graph = index.graph
    highway = index.highway
    labeling = index.labeling
    charge = budget.charge if budget is not None else None

    remaining = highway.landmarks
    for r in remove_list:
        remaining.discard(r)  # R' = R \ removes: the final landmark set

    label_of = labeling.label
    add_entry = labeling.add_entry
    remove_entry = labeling.remove_entry
    neighbors = graph.neighbors

    hole = [False] * graph.n
    # l -> [(r, rho)] seeds of l's single multi-source re-cover sweep.
    seeds: dict[int, list[tuple[int, float]]] = {}
    swept = 0
    entries_removed = 0
    entries_added = 0

    for r in remove_list:
        labeling.clear_vertex(r)
        hole[r] = True
        row_r = highway.row(r)
        dist = [INF] * graph.n
        dist[r] = 0.0
        if graph.unweighted:
            queue: deque[int] = deque([r])
            while queue:
                u = queue.popleft()
                delta = dist[u]
                if u in remaining:
                    # Tolerant optimality test: an ulp-level undercut of
                    # delta is a float-summation artifact, not a shorter
                    # path, so u still covers r (repro.tolerance).
                    if row_r.get(u, INF) < delta * PRUNE_SCALE:
                        continue
                    seeds.setdefault(u, []).append((r, delta))
                    add_entry(r, u, delta)
                    entries_added += 1
                    continue
                swept += 1
                if charge is not None and charge():
                    budget.raise_if_exceeded("APPLY-BATCH (sweep)")
                if remove_entry(u, r):
                    entries_removed += 1
                    hole[u] = True
                nd = delta + 1.0
                for v, _ in neighbors(u):
                    if nd < dist[v]:
                        dist[v] = nd
                        queue.append(v)
        else:
            heap: list[tuple[float, int]] = [(0.0, r)]
            while heap:
                delta, u = heapq.heappop(heap)
                if delta > dist[u]:
                    continue
                if u in remaining:
                    if row_r.get(u, INF) < delta * PRUNE_SCALE:
                        continue
                    seeds.setdefault(u, []).append((r, delta))
                    add_entry(r, u, delta)
                    entries_added += 1
                    continue
                swept += 1
                if charge is not None and charge():
                    budget.raise_if_exceeded("APPLY-BATCH (sweep)")
                if remove_entry(u, r):
                    entries_removed += 1
                    hole[u] = True
                for v, w in neighbors(u):
                    nd = delta + w
                    if nd < dist[v]:
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
        highway.remove_landmark(r)
    _phase("sweep")
    if budget is not None:
        budget.raise_if_exceeded("APPLY-BATCH (sweep phase)")

    # All re-covers as ONE multi-landmark, multi-seed sweep in globally
    # ascending distance order.  The order is correctness-critical, not a
    # tie-break: ``query_below`` can only prune a non-canonical candidate
    # ``(l, u, δ)`` once the witnessing entry ``(x, u, d(x, u))`` of an
    # intermediate landmark ``x`` is back in the index — and that witness,
    # being a strict sub-path, always sits at ``d(x, u) < δ``.  Popping
    # one global heap by distance therefore restores every witness before
    # any event that needs it (the single-deletion algorithm gets the
    # same guarantee implicitly, by running re-covers in the erasure
    # sweep's ascending ``ρ`` discovery order).  Canonical entries are
    # never wrongly pruned in any order (nothing in the index undercuts a
    # true distance), so ascending order makes the outcome exactly the
    # canonical final index.  A heap serves the unweighted variant too:
    # seeds start at differing priorities, so the plain-FIFO BFS of the
    # single-deletion sweep would not dequeue in nondecreasing order.
    query_below = index.query_below
    pruned = 0
    recover_searches = 0
    unit = graph.unweighted
    heap: list[tuple[float, int, int]] = []
    sweep_dist: dict[int, dict[int, float]] = {}
    seed_sets: dict[int, set[int]] = {}
    for l, pairs in seeds.items():
        recover_searches += len(pairs)
        dist_l: dict[int, float] = {l: 0.0}
        for r, rho in pairs:
            if rho < dist_l.get(r, INF):
                dist_l[r] = rho
            heap.append((rho, l, r))
        sweep_dist[l] = dist_l
        seed_sets[l] = {r for r, _ in pairs}
    heapq.heapify(heap)
    while heap:
        delta, l, u = heapq.heappop(heap)
        dist_l = sweep_dist[l]
        if delta > dist_l.get(u, INF):
            continue
        if u not in seed_sets[l]:
            if not hole[u]:
                continue
            # Cheap pre-test: an existing closer l-entry already proves
            # QUERY(l, u) < delta (tolerance-aware, matching query_below).
            dl = label_of(u).get(l)
            if dl is not None and dl < delta * PRUNE_SCALE:
                pruned += 1
                continue
            if query_below(l, u, delta):
                pruned += 1
                continue
        if charge is not None and charge():
            budget.raise_if_exceeded("APPLY-BATCH (re-cover)")
        add_entry(u, l, delta)
        entries_added += 1
        for v, w in neighbors(u):
            nd = delta + 1.0 if unit else delta + w
            if hole[v] and nd < dist_l.get(v, INF):
                dist_l[v] = nd
                heapq.heappush(heap, (nd, l, v))
    _phase("recover")
    return swept, recover_searches, pruned, entries_added, entries_removed


# ----------------------------------------------------------------------
# Edge-weight updates: merged affected set, one re-pass per landmark
# ----------------------------------------------------------------------
def _set_edge_weights(index, edge_list) -> int:
    """Apply the netted weights, journaling each overwritten value."""
    graph = index.graph
    journal = index.labeling._journal
    for u, v, w in edge_list:
        old = graph.set_weight(u, v, w)
        if journal is not None:
            journal.record_edge_weight(graph, u, v, old)
    return len(edge_list)


def _apply_edges(index, edge_list, budget):
    """Detect, apply and repair all edge-weight changes in one pass.

    Detection runs on the *pre-update* index, whose landmark queries are
    exact: landmark ``r`` is affected by a change of edge ``{u, v}`` iff
    the edge lies on some shortest path from ``r`` at the old weight
    (delete test) or creates a path no longer than an existing shortest
    one at the new weight (insert test) — the
    :mod:`repro.core.topology` tests, unioned over the batch.  A decrease
    that only manifests through several batch edges is still caught: the
    first updated edge on any new shortest path satisfies the insert test
    against old distances.  Each affected landmark then re-runs its
    labelling pass exactly once on the final graph.
    """
    if not edge_list:
        return 0, 0, 0, 0, 0
    graph = index.graph
    highway = index.highway
    labeling = index.labeling
    landmarks = highway.landmarks
    qfl = index.query_from_landmark

    affected: set[int] = set()
    for u, v, w_new in edge_list:
        w_old = graph.edge_weight(u, v)
        for r in landmarks:
            if r in affected:
                continue
            du = qfl(r, u) if r != u else 0.0
            dv = qfl(r, v) if r != v else 0.0
            a_old, b_old = du + w_old, dv + w_old
            a_new, b_new = du + w_new, dv + w_new
            # Guard against inf <= inf: an edge between vertices
            # unreachable from r cannot change r's shortest paths.
            if (
                (a_old == dv and a_old < INF)
                or (b_old == du and b_old < INF)
                or (a_new <= dv and a_new < INF)
                or (b_new <= du and b_new < INF)
            ):
                affected.add(r)

    applied = _set_edge_weights(index, edge_list)

    lmk_list = sorted(landmarks)
    other = set(lmk_list)
    covers = labeling.covers
    entry = labeling.entry
    add_entry = labeling.add_entry
    remove_entry = labeling.remove_entry
    charge = budget.charge if budget is not None else None
    swept = 0
    entries_added = 0
    entries_removed = 0
    for r in sorted(affected):
        if budget is not None:
            budget.raise_if_exceeded("APPLY-BATCH (edge re-pass)")
        dist, clear = flagged_single_source(graph, r, other - {r})
        row_r = highway.row(r)
        for r2 in lmk_list:
            if row_r.get(r2) != dist[r2]:
                highway.set_distance(r, r2, dist[r2])
        for v in range(graph.n):
            if dist[v] < INF:
                swept += 1
                if charge is not None and charge():
                    budget.raise_if_exceeded("APPLY-BATCH (edge re-pass)")
            if v in other:
                continue
            if clear[v]:
                if entry(v, r) != dist[v]:
                    add_entry(v, r, dist[v])
                    entries_added += 1
            elif covers(r, v):
                remove_entry(v, r)
                entries_removed += 1
    _phase("edges")
    return applied, len(affected), swept, entries_added, entries_removed


# ----------------------------------------------------------------------
# Deprecated entry point
# ----------------------------------------------------------------------
def batch_reconfigure(
    index: HCLIndex,
    add: Iterable[int] = (),
    remove: Iterable[int] = (),
    rebuild_factor: float = 0.75,
) -> BatchResult:
    """Apply a batch of landmark changes to ``index`` in place.

    .. deprecated::
        Use :func:`apply_batch` (or
        :meth:`repro.core.dynhcl.DynamicHCL.apply_batch` /
        :meth:`repro.service.HCLService.submit_batch_reconfigure` for
        logged, durable batches).  This wrapper delegates to
        :func:`apply_batch`, so — unlike the original raw entry point —
        the batch now runs inside one
        :class:`~repro.core.transaction.IndexTransaction`: an exception
        mid-batch rolls every change back instead of leaving a
        half-applied index.
    """
    warnings.warn(
        "batch_reconfigure is deprecated; use apply_batch (transactional, "
        "edge-aware, one WAL record / epoch swap per batch)",
        DeprecationWarning,
        stacklevel=2,
    )
    return apply_batch(
        index, adds=add, removes=remove, rebuild_factor=rebuild_factor
    )
