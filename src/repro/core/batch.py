"""Batch landmark reconfiguration (paper future-work item ii).

Processes a set of landmark insertions and deletions together instead of
one at a time.  Three batch-level optimizations over naive sequential
replay, in the spirit of the batch-dynamic indexing work the paper cites
(BatchHL+, D'Andrea et al.):

1. **Cancellation.**  A vertex both inserted and deleted within the batch
   nets out to a no-op (or to a single operation when it flips the current
   state); cancelled pairs cost nothing.
2. **Ordering.**  Insertions run before deletions: every landmark added
   first strengthens the ``QUERY``-based pruning of the subsequent
   ``DOWNGRADE-LMK`` re-cover sweeps, shrinking their search spaces.
3. **Rebuild cutoff.**  When the surviving batch is large relative to the
   final landmark-set size, a single ``BUILDHCL`` (``|R|`` sweeps) beats
   ``σ`` dynamic updates (≈1 + |REACHED| sweeps each); the batch processor
   switches strategy under a simple cost model.

Because every path produces the canonical index (order-invariance), all
strategies are interchangeable in output — the tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import LandmarkError
from .build import build_hcl
from .downgrade import downgrade_landmark
from .index import HCLIndex
from .upgrade import upgrade_landmark

__all__ = ["batch_reconfigure", "BatchResult"]


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch application."""

    strategy: str  # "dynamic" or "rebuild"
    applied_adds: int
    applied_removes: int
    cancelled: int


def _net_batch(
    index: HCLIndex, add: Iterable[int], remove: Iterable[int]
) -> tuple[list[int], list[int], int]:
    """Validate and cancel opposing operations; returns (adds, removes)."""
    add_set = set(add)
    remove_set = set(remove)
    for v in add_set:
        if not 0 <= v < index.graph.n:
            raise LandmarkError(f"vertex {v} out of range")
    for v in remove_set:
        if not 0 <= v < index.graph.n:
            raise LandmarkError(f"vertex {v} out of range")

    both = add_set & remove_set
    cancelled = 0
    landmarks = index.landmarks
    adds: list[int] = []
    removes: list[int] = []
    for v in both:
        # add+remove of the same vertex leaves its current state unchanged.
        cancelled += 1
    for v in sorted(add_set - both):
        if v in landmarks:
            raise LandmarkError(f"vertex {v} is already a landmark")
        adds.append(v)
    for v in sorted(remove_set - both):
        if v not in landmarks:
            raise LandmarkError(f"vertex {v} is not a landmark")
        removes.append(v)
    return adds, removes, cancelled


def batch_reconfigure(
    index: HCLIndex,
    add: Iterable[int] = (),
    remove: Iterable[int] = (),
    rebuild_factor: float = 0.75,
) -> BatchResult:
    """Apply a batch of landmark changes to ``index`` in place.

    Parameters
    ----------
    index:
        Canonical HCL index; updated in place (its ``highway``/``labeling``
        objects are mutated or replaced, the graph is shared).
    add / remove:
        Vertices to promote / demote.  A vertex in both nets to a no-op.
    rebuild_factor:
        Switch to a full rebuild when
        ``σ > rebuild_factor * |R_final|``; tune 0 to force rebuilds,
        ``inf`` to force dynamic processing.

    Returns
    -------
    BatchResult
        Which strategy ran and how many operations it performed.
    """
    adds, removes, cancelled = _net_batch(index, add, remove)
    sigma = len(adds) + len(removes)
    final_size = len(index.landmarks) + len(adds) - len(removes)

    if sigma and sigma > rebuild_factor * max(final_size, 1):
        final = (index.landmarks | set(adds)) - set(removes)
        fresh = build_hcl(index.graph, sorted(final))
        index.highway = fresh.highway
        index.labeling = fresh.labeling
        return BatchResult("rebuild", len(adds), len(removes), cancelled)

    # Insertions first: each new landmark sharpens the pruning available to
    # the deletions' re-cover sweeps.
    for v in adds:
        upgrade_landmark(index, v)
    for v in removes:
        downgrade_landmark(index, v)
    return BatchResult("dynamic", len(adds), len(removes), cancelled)
