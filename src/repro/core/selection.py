"""Landmark selection policies.

The paper adopts the standard policies of the HCL literature (§4): highest
degree for unweighted graphs and approximate betweenness for weighted ones,
plus uniform random selection for stress tests.  Approximate betweenness
follows the usual pivot-sampling scheme: grow shortest-path trees from a
sample of pivots and score vertices by how often they appear as internal
vertices of the sampled trees' root-to-leaf paths (counted via subtree
accumulation).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..errors import DatasetError
from ..graphs.graph import Graph
from ..graphs.traversal import single_source_with_parents

__all__ = [
    "select_by_degree",
    "select_by_approx_betweenness",
    "select_random",
    "select_landmarks",
]


def _check_k(graph: Graph, k: int) -> None:
    if k < 0:
        raise DatasetError(f"cannot select {k} landmarks")
    if k > graph.n:
        raise DatasetError(f"cannot select {k} landmarks from {graph.n} vertices")


def select_by_degree(graph: Graph, k: int) -> list[int]:
    """The ``k`` highest-degree vertices (ties by smaller id).

    The paper's policy of choice for unweighted (complex-network) graphs.
    """
    _check_k(graph, k)
    order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    return order[:k]


def select_by_approx_betweenness(
    graph: Graph, k: int, pivots: int = 16, seed: int | None = None
) -> list[int]:
    """Approximate-betweenness top-``k`` via pivot sampling.

    Runs ``pivots`` single-source shortest-path trees from random roots and
    accumulates, for every vertex, the number of tree descendants it has —
    the classic dependency-style score.  The paper's policy of choice for
    weighted (road) graphs.
    """
    _check_k(graph, k)
    if pivots <= 0:
        raise DatasetError(f"need at least one pivot, got {pivots}")
    rng = random.Random(seed)
    n = graph.n
    score = [0.0] * n
    roots = [rng.randrange(n) for _ in range(min(pivots, n))]
    for root in roots:
        dist, parent = single_source_with_parents(graph, root)
        # Accumulate subtree sizes bottom-up: process vertices by
        # decreasing distance so children are counted before parents.
        order = sorted(
            (v for v in range(n) if dist[v] != float("inf")),
            key=lambda v: dist[v],
            reverse=True,
        )
        subtree = [1.0] * n
        for v in order:
            p = parent[v]
            if p != -1:
                subtree[p] += subtree[v]
        for v in order:
            if v != root:
                # Internal-vertex contribution: descendants routed through v.
                score[v] += subtree[v] - 1.0
    ranked = sorted(range(n), key=lambda v: (-score[v], -graph.degree(v), v))
    return ranked[:k]


def select_random(graph: Graph, k: int, seed: int | None = None) -> list[int]:
    """``k`` distinct uniform-random vertices."""
    _check_k(graph, k)
    rng = random.Random(seed)
    return rng.sample(range(graph.n), k)


def select_landmarks(
    graph: Graph, k: int, policy: str = "auto", seed: int | None = None
) -> list[int]:
    """Dispatch on policy name.

    ``auto`` reproduces the paper's setup: degree for unweighted graphs,
    approximate betweenness for weighted ones.
    """
    if policy == "auto":
        policy = "degree" if graph.unweighted else "betweenness"
    if policy == "degree":
        return select_by_degree(graph, k)
    if policy == "betweenness":
        return select_by_approx_betweenness(graph, k, seed=seed)
    if policy == "random":
        return select_random(graph, k, seed=seed)
    raise DatasetError(f"unknown landmark selection policy {policy!r}")


def selection_policies() -> Sequence[str]:
    """Names accepted by :func:`select_landmarks`."""
    return ("auto", "degree", "betweenness", "random")


__all__.append("selection_policies")
